//! # intensio-net
//!
//! The cluster transport layer: every TCP connection the cluster makes
//! — `REPLICATE` streams, heartbeats, `--peers` telemetry polls, client
//! protocol connections from the shell, the load generator, and tests —
//! goes through a [`NetConn`] instead of a bare `TcpStream`. That one
//! chokepoint buys three things the raw socket cannot give:
//!
//! * **Deterministic link faults** ([`faults`]): a seeded spec such as
//!   `net.partition=a<->b`, `net.oneway=a->b`, `net.delay:50=a->b`,
//!   `net.dup=a->b`, `net.torn_write=a->b`, or `net.reset=a->b` severs,
//!   skews, duplicates, or tears exactly one direction of one link at
//!   runtime (`FAULT SET` / `--net-faults`), without touching any other
//!   traffic. Partitions *blackhole* rather than error on write — the
//!   nasty half-open behavior real partitions produce — and a severed
//!   read leaves buffered bytes in the socket, so healing a link floods
//!   the receiver with the delayed frames, exactly like a real switch
//!   coming back.
//! * **Timeouts everywhere** ([`connect_timeout`], [`DialConfig`]): no
//!   cluster connect may block forever; the shutdown self-connect uses
//!   the fault-*exempt* [`connect_raw`] so severing a node's own links
//!   can never deadlock its shutdown.
//! * **Bounded reconnection** ([`Dialer`]): a reconnecting client with
//!   `intensio_fault::Backoff` jitter and a total retry budget, so
//!   "retry forever" is a policy a caller must opt into, never a
//!   default.
//!
//! Connections carry an identity: a *local label* (the node name, e.g.
//! `--net-name a`) and a *peer* (label when known, address always).
//! Fault specs match either labels or raw addresses; in-process
//! harnesses that run several nodes in one process register
//! address→label aliases ([`faults::register_alias`]) so one shared
//! registry can still tell the nodes apart.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dial;
pub mod faults;

pub use dial::{DialConfig, Dialer};

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How long a read against a severed inbound link sleeps before
/// reporting `TimedOut`. Short enough that heal latency is dominated by
/// the caller's own tick, long enough not to spin.
const SEVERED_READ_TICK: Duration = Duration::from_millis(50);

/// The far end of a connection: its address always, its node label when
/// the handshake (or the dialer) has told us.
#[derive(Debug, Clone)]
pub struct Peer {
    /// Node label (`--net-name`) if known; `None` for an anonymous
    /// inbound connection.
    pub label: Option<String>,
    /// The socket address — the *listening* address for outbound
    /// connections, the ephemeral source address for inbound ones.
    pub addr: String,
}

/// A fault-injectable TCP connection. Reads and writes consult the
/// link-fault registry ([`faults`]) with this connection's identity
/// before touching the socket; with no faults armed the check is one
/// relaxed atomic load.
#[derive(Debug)]
pub struct NetConn {
    stream: TcpStream,
    local: String,
    peer: Peer,
}

impl NetConn {
    /// Wrap an already-established stream (an accepted connection, or a
    /// clone handed across an API boundary).
    pub fn adopt(stream: TcpStream, local_label: &str, peer: Peer) -> NetConn {
        NetConn {
            stream,
            local: local_label.to_string(),
            peer,
        }
    }

    /// The peer identity this connection injects faults against.
    pub fn peer(&self) -> &Peer {
        &self.peer
    }

    /// Name the peer after the fact — the `REPLICATE ... node=<label>`
    /// handshake is how a primary learns which follower an anonymous
    /// inbound stream belongs to, which is what lets `net.dup=a->b`
    /// style specs tear exactly that stream.
    pub fn set_peer_label(&mut self, label: &str) {
        self.peer.label = Some(label.to_string());
    }

    /// Clone the underlying socket, keeping the identity.
    pub fn try_clone(&self) -> std::io::Result<NetConn> {
        Ok(NetConn {
            stream: self.stream.try_clone()?,
            local: self.local.clone(),
            peer: self.peer.clone(),
        })
    }

    /// See [`TcpStream::set_nodelay`].
    pub fn set_nodelay(&self, on: bool) -> std::io::Result<()> {
        self.stream.set_nodelay(on)
    }

    /// See [`TcpStream::set_read_timeout`].
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(dur)
    }

    /// See [`TcpStream::set_write_timeout`].
    pub fn set_write_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_write_timeout(dur)
    }

    /// See [`TcpStream::shutdown`].
    pub fn shutdown(&self, how: std::net::Shutdown) -> std::io::Result<()> {
        self.stream.shutdown(how)
    }

    /// Effects currently armed against traffic *leaving* this node for
    /// the peer.
    fn outbound(&self) -> faults::LinkEffects {
        faults::effects(&self.local, "", self.peer.label.as_deref(), &self.peer.addr)
    }

    /// Effects currently armed against traffic *arriving* from the peer.
    fn inbound(&self) -> faults::LinkEffects {
        faults::effects_inbound(&self.local, "", self.peer.label.as_deref(), &self.peer.addr)
    }
}

impl Read for NetConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let fx = self.inbound();
        if fx.reset {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "net fault: connection reset by injected net.reset",
            ));
        }
        if let Some(d) = fx.delay {
            std::thread::sleep(d);
        }
        if fx.severed {
            // Do NOT consume the socket: a severed link buffers, and a
            // heal delivers everything late — delayed heartbeats and
            // stale frames are the whole point of the drill.
            std::thread::sleep(SEVERED_READ_TICK);
            return Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "net fault: inbound link severed",
            ));
        }
        self.stream.read(buf)
    }
}

impl Write for NetConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let fx = self.outbound();
        if fx.reset {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "net fault: connection reset by injected net.reset",
            ));
        }
        if let Some(d) = fx.delay {
            std::thread::sleep(d);
        }
        if fx.severed {
            // Blackhole: the write "succeeds" but nothing crosses the
            // link. The sender learns nothing — half-open, as in life.
            return Ok(buf.len());
        }
        if fx.torn {
            // Half the bytes cross, then the link dies mid-frame.
            let half = (buf.len() / 2).max(1).min(buf.len());
            let _ = self.stream.write(&buf[..half]);
            let _ = self.stream.flush();
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "net fault: torn write",
            ));
        }
        if fx.dup {
            // The chunk crosses twice. Callers that write whole frames
            // per call (the replication stream does) therefore see
            // exact duplicate frames on the far side.
            self.stream.write_all(buf)?;
            self.stream.write_all(buf)?;
            return Ok(buf.len());
        }
        self.stream.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

/// A listener whose accepted connections are [`NetConn`]s labeled with
/// this node's name. Accepted peers start anonymous (ephemeral source
/// address, no label) until a handshake names them.
#[derive(Debug)]
pub struct NetListener {
    inner: TcpListener,
    label: String,
}

impl NetListener {
    /// Bind `addr` under the node label `local_label` (may be empty for
    /// an unlabeled node — faults then match it only via `*`).
    pub fn bind(local_label: &str, addr: &str) -> std::io::Result<NetListener> {
        Ok(NetListener {
            inner: TcpListener::bind(addr)?,
            label: local_label.to_string(),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Accept one connection.
    pub fn accept(&self) -> std::io::Result<NetConn> {
        let (stream, peer) = self.inner.accept()?;
        Ok(NetConn::adopt(
            stream,
            &self.label,
            Peer {
                label: None,
                addr: peer.to_string(),
            },
        ))
    }
}

/// Resolve `addr` to its first socket address.
fn resolve(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("no socket address for {addr:?}"),
        )
    })
}

/// Connect to `addr` as `local_label`, bounded by `timeout`, consulting
/// the link-fault registry first: a severed link refuses the connect
/// (fast, like a dropped SYN surfacing as a timeout) instead of letting
/// the caller wait out a real timeout.
pub fn connect_timeout(
    local_label: &str,
    addr: &str,
    timeout: Duration,
) -> std::io::Result<NetConn> {
    let fx = faults::effects(local_label, "", None, addr);
    if fx.reset {
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionReset,
            "net fault: connect reset by injected net.reset",
        ));
    }
    if let Some(d) = fx.delay {
        std::thread::sleep(d);
    }
    if fx.severed {
        return Err(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            format!("net fault: link to {addr} severed"),
        ));
    }
    let sock = resolve(addr)?;
    let stream = TcpStream::connect_timeout(&sock, timeout)?;
    Ok(NetConn::adopt(
        stream,
        local_label,
        Peer {
            label: None,
            addr: addr.to_string(),
        },
    ))
}

/// Fault-*exempt* bounded connect, for plumbing that must work even
/// when this node's own links are severed — the one user is the
/// listener's shutdown self-connect, where an injected partition would
/// otherwise deadlock the drain.
pub fn connect_raw(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    TcpStream::connect_timeout(&resolve(addr)?, timeout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::sync::mpsc;

    /// Serialize tests that arm the process-global fault registry.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let guard = GATE.lock().unwrap_or_else(|e| e.into_inner());
        faults::clear();
        faults::clear_aliases();
        guard
    }

    /// An echo server that prefixes each received line with `echo:`.
    fn echo_server(label: &str) -> (String, mpsc::Receiver<()>) {
        let listener = NetListener::bind(label, "127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let (done_tx, done_rx) = mpsc::channel();
        std::thread::spawn(move || {
            while let Ok(conn) = listener.accept() {
                let mut writer = conn.try_clone().unwrap();
                let mut reader = BufReader::new(conn);
                let mut line = String::new();
                while matches!(reader.read_line(&mut line), Ok(n) if n > 0) {
                    let msg = format!("echo:{line}");
                    if writer.write_all(msg.as_bytes()).is_err() {
                        break;
                    }
                    let _ = writer.flush();
                    line.clear();
                }
            }
            let _ = done_tx.send(());
        });
        (addr, done_rx)
    }

    fn roundtrip(conn: &mut NetConn, reader: &mut BufReader<NetConn>, msg: &str) -> String {
        conn.write_all(format!("{msg}\n").as_bytes()).unwrap();
        conn.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn plain_roundtrip_without_faults() {
        let _g = lock();
        let (addr, _done) = echo_server("srv");
        let conn = connect_timeout("cli", &addr, Duration::from_secs(2)).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut conn = conn;
        assert_eq!(roundtrip(&mut conn, &mut reader, "hi"), "echo:hi");
    }

    #[test]
    fn partition_severs_connect_and_heals_on_clear() {
        let _g = lock();
        let (addr, _done) = echo_server("b");
        faults::register_alias(&addr, "b");
        faults::configure("net.partition", "a<->b").unwrap();
        let err = connect_timeout("a", &addr, Duration::from_secs(2)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        // An uninvolved node still gets through.
        assert!(connect_timeout("c", &addr, Duration::from_secs(2)).is_ok());
        faults::clear();
        assert!(connect_timeout("a", &addr, Duration::from_secs(2)).is_ok());
    }

    #[test]
    fn oneway_blackholes_one_direction_only() {
        let _g = lock();
        let (addr, _done) = echo_server("b");
        faults::register_alias(&addr, "b");
        let conn = connect_timeout("a", &addr, Duration::from_secs(2)).unwrap();
        conn.set_read_timeout(Some(Duration::from_millis(100)))
            .unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut conn = conn;
        assert_eq!(roundtrip(&mut conn, &mut reader, "pre"), "echo:pre");
        // Sever a->b: writes blackhole (Ok, nothing echoed back).
        faults::configure("net.oneway", "a->b").unwrap();
        conn.write_all(b"dropped\n").unwrap();
        conn.flush().unwrap();
        let mut line = String::new();
        assert!(reader.read_line(&mut line).is_err(), "nothing should echo");
        // Heal: traffic flows again, the dropped line never arrives.
        faults::clear();
        assert_eq!(roundtrip(&mut conn, &mut reader, "post"), "echo:post");
    }

    #[test]
    fn severed_read_buffers_until_heal() {
        let _g = lock();
        let (addr, _done) = echo_server("b");
        faults::register_alias(&addr, "b");
        let conn = connect_timeout("a", &addr, Duration::from_secs(2)).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut conn = conn;
        // Sever the inbound side only; the echo still lands in the
        // socket buffer and must arrive after the heal.
        faults::configure("net.oneway", "b->a").unwrap();
        conn.write_all(b"late\n").unwrap();
        conn.flush().unwrap();
        let mut line = String::new();
        let err = reader.read_line(&mut line).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::TimedOut);
        faults::clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "echo:late");
    }

    #[test]
    fn dup_duplicates_whole_frames() {
        let _g = lock();
        let (addr, _done) = echo_server("b");
        faults::register_alias(&addr, "b");
        let conn = connect_timeout("a", &addr, Duration::from_secs(2)).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut conn = conn;
        faults::configure("net.dup", "a->b").unwrap();
        conn.write_all(b"twice\n").unwrap();
        conn.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "echo:twice");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "echo:twice", "frame must arrive twice");
    }

    #[test]
    fn torn_write_ships_half_then_fails() {
        let _g = lock();
        let (addr, _done) = echo_server("b");
        faults::register_alias(&addr, "b");
        let mut conn = connect_timeout("a", &addr, Duration::from_secs(2)).unwrap();
        faults::configure("net.torn_write", "a->b*1").unwrap();
        let err = conn.write_all(b"0123456789\n").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionAborted);
        // The *1 budget is spent: the next write goes through whole.
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        conn.write_all(b"whole\n").unwrap();
        conn.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        // The torn half ("01234…") prefixes the healthy frame's line.
        assert!(line.contains("whole"), "got {line:?}");
    }

    #[test]
    fn reset_fails_both_directions() {
        let _g = lock();
        let (addr, _done) = echo_server("b");
        faults::register_alias(&addr, "b");
        let mut conn = connect_timeout("a", &addr, Duration::from_secs(2)).unwrap();
        faults::configure("net.reset", "a<->b").unwrap();
        let err = conn.write_all(b"x\n").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        let mut buf = [0u8; 8];
        let err = conn.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn delay_skews_the_link() {
        let _g = lock();
        let (addr, _done) = echo_server("b");
        faults::register_alias(&addr, "b");
        let conn = connect_timeout("a", &addr, Duration::from_secs(2)).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut conn = conn;
        faults::configure("net.delay:40", "a->b").unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(roundtrip(&mut conn, &mut reader, "slow"), "echo:slow");
        assert!(t0.elapsed() >= Duration::from_millis(40));
    }

    #[test]
    fn connect_raw_ignores_faults() {
        let _g = lock();
        let (addr, _done) = echo_server("b");
        faults::register_alias(&addr, "b");
        faults::configure("net.partition", "*<->b").unwrap();
        assert!(connect_raw(&addr, Duration::from_secs(2)).is_ok());
    }
}
