//! Property tests for the durability contract: **any prefix of a valid
//! WAL recovers to a consistent epoch** — the replayed records are
//! always an exact prefix of what was appended, torn tails are
//! truncated rather than misread, and a corrupted frame never smuggles
//! a wrong record past the checksum.

use intensio_wal::record::Record;
use intensio_wal::recover::{apply_sanitize, recover};
use intensio_wal::segment::{segment_file_name, WAL_SUBDIR};
use intensio_wal::{FsyncPolicy, Wal, WalConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("intensio_walprop_{tag}_{}_{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Build records with epochs `1..=lens.len()`, body sizes from `lens`.
fn make_records(lens: &[usize]) -> Vec<Record> {
    lens.iter()
        .enumerate()
        .map(|(i, len)| {
            let epoch = (i + 1) as u64;
            let script = "q".repeat(*len);
            Record::write(epoch, epoch, &script)
        })
        .collect()
}

/// The core consistency assertion: what `recover` replays must be an
/// exact prefix of `originals`, contiguous from epoch 1.
fn assert_is_prefix(dir: &std::path::Path, originals: &[Record]) -> usize {
    let rec = recover(dir).unwrap();
    assert!(
        rec.records.len() <= originals.len(),
        "recovery invented records"
    );
    for (i, got) in rec.records.iter().enumerate() {
        assert_eq!(
            got, &originals[i],
            "record {i} replayed differently than appended"
        );
    }
    assert_eq!(
        rec.final_epoch(),
        rec.records.len() as u64,
        "epoch must equal the number of accepted records"
    );
    rec.records.len()
}

proptest! {
    /// Cut a single-segment log at every kind of byte boundary: the
    /// recovered state is always the longest whole-record prefix.
    #[test]
    fn any_byte_prefix_recovers_to_a_consistent_epoch(
        lens in prop::collection::vec(0usize..48, 1..10),
        cut_permille in 0u64..=1000,
    ) {
        let originals = make_records(&lens);
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &originals {
            bytes.extend_from_slice(&r.encode());
            boundaries.push(bytes.len());
        }
        let cut = (bytes.len() as u64 * cut_permille / 1000) as usize;

        let dir = tmpdir("prefix");
        let wal_dir = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal_dir).unwrap();
        std::fs::write(wal_dir.join(segment_file_name(1)), &bytes[..cut]).unwrap();

        let n = assert_is_prefix(&dir, &originals);
        // Exactly the records whose frames fit below the cut.
        let expect = boundaries.iter().filter(|b| **b > 0 && **b <= cut).count();
        prop_assert_eq!(n, expect);

        // A cut mid-frame is a torn tail, never corruption.
        let rec = recover(&dir).unwrap();
        prop_assert!(!rec.stats.corrupt);
        prop_assert_eq!(rec.stats.torn_tail, cut != 0 && !boundaries.contains(&cut));

        // Sanitizing then re-recovering is a fixpoint.
        apply_sanitize(&rec).unwrap();
        let again = recover(&dir).unwrap();
        prop_assert!(!again.stats.torn_tail);
        prop_assert_eq!(again.records.len(), n);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Flip any byte anywhere in the log: recovery still replays only
    /// an exact prefix — a damaged frame is rejected by its CRC, never
    /// replayed wrong.
    #[test]
    fn any_corruption_is_rejected_never_misread(
        lens in prop::collection::vec(0usize..32, 1..8),
        flip_permille in 0u64..1000,
        flip_mask in 1u8..=255,
    ) {
        let originals = make_records(&lens);
        let mut bytes = Vec::new();
        for r in &originals {
            bytes.extend_from_slice(&r.encode());
        }
        let flip_at = (bytes.len() as u64 * flip_permille / 1000) as usize;
        bytes[flip_at] ^= flip_mask;

        let dir = tmpdir("flip");
        let wal_dir = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal_dir).unwrap();
        std::fs::write(wal_dir.join(segment_file_name(1)), &bytes).unwrap();

        assert_is_prefix(&dir, &originals);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The same prefix property holds through the real writer with
    /// segment rotation: truncate the final segment anywhere.
    #[test]
    fn rotated_log_prefix_recovers(
        lens in prop::collection::vec(0usize..64, 2..14),
        drop_bytes in 0usize..96,
    ) {
        let originals = make_records(&lens);
        let dir = tmpdir("rotated");
        let cfg = WalConfig {
            segment_bytes: 128,
            fsync: FsyncPolicy::Off,
            checkpoint_every: 1_000_000,
            keep_checkpoints: 2,
        };
        let mut wal = Wal::open(&dir, cfg, 0).unwrap();
        for r in &originals {
            wal.append(r).unwrap();
        }
        drop(wal);

        let segments = intensio_wal::segment::list_segments(&dir).unwrap();
        let (_, last) = segments.last().unwrap();
        let tail = std::fs::read(last).unwrap();
        let keep = tail.len().saturating_sub(drop_bytes);
        std::fs::write(last, &tail[..keep]).unwrap();

        let n = assert_is_prefix(&dir, &originals);
        // Only records in the truncated final segment can be lost.
        let earlier: usize = segments[..segments.len() - 1]
            .iter()
            .map(|(_, p)| {
                let buf = std::fs::read(p).unwrap();
                let mut count = 0usize;
                let mut pos = 0usize;
                while pos < buf.len() {
                    match intensio_wal::record::decode_frame(&buf[pos..]) {
                        intensio_wal::record::FrameOutcome::Complete(_, c) => {
                            count += 1;
                            pos += c;
                        }
                        _ => break,
                    }
                }
                count
            })
            .sum();
        prop_assert!(n >= earlier, "truncating the tail lost earlier segments");

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
