//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`): the
//! checksum guarding every WAL record and checkpoint manifest. Table
//! driven, computed at compile time — no dependencies, no runtime
//! initialization.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"intensio wal record");
        let mut bytes = b"intensio wal record".to_vec();
        for i in 0..bytes.len() {
            bytes[i] ^= 1;
            assert_ne!(crc32(&bytes), base, "flip at byte {i} undetected");
            bytes[i] ^= 1;
        }
    }
}
