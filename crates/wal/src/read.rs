//! Streaming reads of the log: the replication feed.
//!
//! [`LogTail`] walks the on-disk segments and yields the epoch-
//! contiguous chain of records strictly above a starting epoch — the
//! same acceptance rules boot recovery applies (contiguity, torn tails
//! end a segment, duplicate epochs last-wins), but incrementally, one
//! segment in memory at a time, so a replication stream can ship a
//! multi-gigabyte log without materializing it.
//!
//! The chain must *begin* at `from_epoch + 1`. When the oldest record
//! still on disk is newer than that (a checkpoint truncated the log
//! past the requested point), the stream fails immediately with a gap
//! error — the signal a replication source uses to fall back to
//! shipping a full snapshot instead of a log tail.

use crate::record::{decode_frame, FrameOutcome, Record};
use crate::segment::list_segments;
use crate::WalError;
use std::collections::VecDeque;
use std::path::PathBuf;

/// A streaming iterator over the log's records with epoch strictly
/// greater than the `from_epoch` it was opened at. See the module docs
/// for the acceptance rules. Yields every sound record, then `Err`
/// exactly once (and ends) when the chain breaks: an epoch gap, a
/// corrupt frame, or a segment deleted mid-stream.
pub struct LogTail {
    segments: VecDeque<(u64, PathBuf)>,
    /// Bytes of the segment currently being walked.
    buf: Vec<u8>,
    pos: usize,
    in_segment: bool,
    /// Lookahead slot: the next record to yield, held back one step so
    /// a duplicate epoch (an unacked append whose epoch was reused) can
    /// replace it before the caller sees it — recovery's last-wins rule.
    pending: Option<Record>,
    /// An error to report after the lookahead is flushed.
    deferred: Option<WalError>,
    last_epoch: u64,
    done: bool,
}

impl LogTail {
    /// Open a tail over `data_dir`'s log starting after `from_epoch`.
    /// The segment list is snapshotted here; records appended to the
    /// active segment after this call may or may not be observed.
    pub fn open(data_dir: &std::path::Path, from_epoch: u64) -> Result<LogTail, WalError> {
        let segments =
            list_segments(data_dir).map_err(|e| WalError(format!("listing wal segments: {e}")))?;
        Ok(LogTail {
            segments: segments.into(),
            buf: Vec::new(),
            pos: 0,
            in_segment: false,
            pending: None,
            deferred: None,
            last_epoch: from_epoch,
            done: false,
        })
    }

    /// Stop the stream: flush the lookahead first, then report `err`.
    fn stop(&mut self, err: WalError) -> Option<Result<Record, WalError>> {
        self.segments.clear();
        self.in_segment = false;
        match self.pending.take() {
            Some(rec) => {
                self.deferred = Some(err);
                Some(Ok(rec))
            }
            None => {
                self.done = true;
                Some(Err(err))
            }
        }
    }
}

impl Iterator for LogTail {
    type Item = Result<Record, WalError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Some(err) = self.deferred.take() {
            self.done = true;
            return Some(Err(err));
        }
        loop {
            if !self.in_segment || self.pos >= self.buf.len() {
                // Advance to the next segment with bytes to decode.
                let Some((_seq, path)) = self.segments.pop_front() else {
                    // End of log: flush the lookahead.
                    if let Some(rec) = self.pending.take() {
                        return Some(Ok(rec));
                    }
                    self.done = true;
                    return None;
                };
                match std::fs::read(&path) {
                    Ok(bytes) => {
                        self.buf = bytes;
                        self.pos = 0;
                        self.in_segment = true;
                        continue;
                    }
                    Err(e) => {
                        // A segment vanished mid-stream (checkpoint
                        // truncation raced us): the chain is broken.
                        return self
                            .stop(WalError(format!("reading segment {}: {e}", path.display())));
                    }
                }
            }
            match decode_frame(&self.buf[self.pos..]) {
                FrameOutcome::Complete(rec, consumed) => {
                    self.pos += consumed;
                    let duplicates_tail = self
                        .pending
                        .as_ref()
                        .is_some_and(|prev| prev.epoch == rec.epoch);
                    if duplicates_tail {
                        // Last-wins: the earlier append was never
                        // acknowledged and its epoch was reused.
                        self.pending = Some(rec);
                    } else if rec.epoch <= self.last_epoch {
                        continue; // already covered by the caller
                    } else if rec.epoch == self.last_epoch + 1 {
                        self.last_epoch = rec.epoch;
                        if let Some(out) = self.pending.replace(rec) {
                            return Some(Ok(out));
                        }
                    } else {
                        let wanted = self.last_epoch + 1;
                        return self.stop(WalError(format!(
                            "epoch gap in log tail: wanted {wanted}, found {}",
                            rec.epoch
                        )));
                    }
                }
                FrameOutcome::Torn => {
                    // Expected crash shape: this segment ends here, but
                    // a later segment may continue the chain.
                    self.in_segment = false;
                    self.pos = self.buf.len();
                }
                FrameOutcome::Corrupt(why) => {
                    return self.stop(WalError(format!("corrupt frame in log tail: {why}")));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Wal;
    use crate::segment::{segment_file_name, WAL_SUBDIR};
    use crate::{FsyncPolicy, WalConfig};
    use std::path::Path;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("intensio_read_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(segment_bytes: u64) -> WalConfig {
        WalConfig {
            segment_bytes,
            fsync: FsyncPolicy::Off,
            checkpoint_every: 1000,
            keep_checkpoints: 2,
        }
    }

    fn collect(dir: &Path, from: u64) -> (Vec<Record>, Option<WalError>) {
        let mut records = Vec::new();
        let mut err = None;
        for item in LogTail::open(dir, from).unwrap() {
            match item {
                Ok(rec) => records.push(rec),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        (records, err)
    }

    #[test]
    fn streams_across_a_segment_rotation_boundary() {
        let dir = tmpdir("rotation");
        // Tiny segments force several rotations mid-stream.
        let mut wal = Wal::open(&dir, cfg(128), 0).unwrap();
        for i in 1..=20u64 {
            wal.append(&Record::write(i, i, &format!("script {i}")))
                .unwrap();
        }
        assert!(
            crate::segment::list_segments(&dir).unwrap().len() > 2,
            "the stream must cross at least two rotation boundaries"
        );
        let (records, err) = collect(&dir, 0);
        assert!(err.is_none());
        assert_eq!(records.len(), 20);
        assert_eq!(
            records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            (1..=20).collect::<Vec<_>>()
        );
        // A mid-stream start also lands exactly on the chain.
        let (tail, err) = collect(&dir, 13);
        assert!(err.is_none());
        assert_eq!(tail.first().map(|r| r.epoch), Some(14));
        assert_eq!(tail.len(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn start_past_the_end_is_empty_not_an_error() {
        let dir = tmpdir("past_end");
        let mut wal = Wal::open(&dir, cfg(4096), 0).unwrap();
        for i in 1..=3u64 {
            wal.append(&Record::write(i, i, "x")).unwrap();
        }
        let (records, err) = collect(&dir, 3);
        assert!(records.is_empty());
        assert!(err.is_none());
        let (records, err) = collect(&dir, 7);
        assert!(records.is_empty(), "nothing newer than epoch 7 exists");
        assert!(err.is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_log_reports_a_gap_for_old_epochs() {
        let dir = tmpdir("gap");
        let wal_dir = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal_dir).unwrap();
        let mut buf = Vec::new();
        for e in 5..=8u64 {
            buf.extend_from_slice(&Record::write(e, e, "x").encode());
        }
        std::fs::write(wal_dir.join(segment_file_name(3)), &buf).unwrap();
        // The log starts at epoch 5; asking for the tail after epoch 2
        // cannot produce a contiguous chain.
        let (records, err) = collect(&dir, 2);
        assert!(records.is_empty());
        assert!(err.unwrap().to_string().contains("epoch gap"));
        // Asking from epoch 4 works: the chain starts at 5.
        let (records, err) = collect(&dir, 4);
        assert!(err.is_none());
        assert_eq!(records.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_ends_a_segment_but_later_segments_continue() {
        let dir = tmpdir("torn");
        let wal_dir = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal_dir).unwrap();
        let mut seg1 = Vec::new();
        seg1.extend_from_slice(&Record::write(1, 1, "a").encode());
        let torn = Record::write(2, 2, "lost").encode();
        seg1.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(wal_dir.join(segment_file_name(1)), &seg1).unwrap();
        let mut seg2 = Vec::new();
        seg2.extend_from_slice(&Record::write(2, 2, "b").encode());
        seg2.extend_from_slice(&Record::write(3, 3, "c").encode());
        std::fs::write(wal_dir.join(segment_file_name(2)), &seg2).unwrap();

        let (records, err) = collect(&dir, 0);
        assert!(err.is_none());
        assert_eq!(records.len(), 3);
        assert_eq!(records[1].script(), Some("b"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_epoch_last_record_wins_even_at_the_tail() {
        let dir = tmpdir("dup");
        let wal_dir = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal_dir).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(&Record::write(1, 1, "a").encode());
        buf.extend_from_slice(&Record::write(2, 2, "unacked").encode());
        buf.extend_from_slice(&Record::write(2, 2, "acked").encode());
        std::fs::write(wal_dir.join(segment_file_name(1)), &buf).unwrap();
        let (records, err) = collect(&dir, 0);
        assert!(err.is_none());
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].script(), Some("acked"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_flushes_sound_records_then_errors_once() {
        let dir = tmpdir("corrupt");
        let wal_dir = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal_dir).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(&Record::write(1, 1, "a").encode());
        buf.extend_from_slice(&Record::write(2, 2, "b").encode());
        let mut bad = Record::write(3, 3, "c").encode();
        bad[12] ^= 0xFF;
        buf.extend_from_slice(&bad);
        std::fs::write(wal_dir.join(segment_file_name(1)), &buf).unwrap();
        let mut tail = LogTail::open(&dir, 0).unwrap();
        assert_eq!(tail.next().unwrap().unwrap().epoch, 1);
        assert_eq!(tail.next().unwrap().unwrap().epoch, 2);
        assert!(tail.next().unwrap().is_err());
        assert!(tail.next().is_none(), "the stream ends after the error");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn live_writer_appends_are_visible_to_a_fresh_tail() {
        let dir = tmpdir("live");
        let mut wal = Wal::open(&dir, cfg(4096), 0).unwrap();
        wal.append(&Record::write(1, 1, "x")).unwrap();
        let (records, _) = collect(&dir, 0);
        assert_eq!(records.len(), 1);
        wal.append(&Record::write(2, 2, "y")).unwrap();
        let (records, _) = wal.read_from(1).map(collect_tail).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].epoch, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn collect_tail(tail: LogTail) -> (Vec<Record>, Option<WalError>) {
        let mut records = Vec::new();
        let mut err = None;
        for item in tail {
            match item {
                Ok(rec) => records.push(rec),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        (records, err)
    }
}
