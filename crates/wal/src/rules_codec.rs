//! Serializing rule sets for WAL records.
//!
//! A rule-set install is logged as the paper's §5.2.2 *rule relations*
//! (`RULES`, `ATTRVALUEMAP`, `ATTRCATALOG`, `RULEMETA`), rendered as
//! CSV sections inside one record body:
//!
//! ```text
//! %intensio-rules v1
//! %relation RULES
//! RuleNo,Role,Lvalue,Att_no,Uvalue
//! ...
//! %relation ATTRVALUEMAP
//! ...
//! ```
//!
//! The same encoding the paper uses to relocate rules with their
//! database thus also carries them across a crash.

use crate::WalError;
use intensio_rules::encode::{decode, encode, RuleRelations};
use intensio_rules::rule::RuleSet;
use intensio_storage::csv::{from_csv, to_csv};

const HEADER: &str = "%intensio-rules v1";
const SECTION: &str = "%relation ";

/// Encode a rule set as a sectioned-CSV record body.
///
/// Fails when a rule clause has no closed-range representation (the
/// paper's storable clause form); callers should treat that rule set as
/// unloggable and fall back to re-induction on recovery.
pub fn rules_to_bytes(rules: &RuleSet) -> Result<Vec<u8>, WalError> {
    let rels = encode(rules).map_err(|e| WalError(format!("encoding rule set: {e}")))?;
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for (name, rel) in rels.named() {
        out.push_str(SECTION);
        out.push_str(name);
        out.push('\n');
        out.push_str(&to_csv(rel));
    }
    Ok(out.into_bytes())
}

/// Decode a record body written by [`rules_to_bytes`].
pub fn rules_from_bytes(bytes: &[u8]) -> Result<RuleSet, WalError> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| WalError("rule-set record body is not UTF-8".to_string()))?;
    let mut lines = text.lines();
    if lines.next() != Some(HEADER) {
        return Err(WalError("rule-set record missing header".to_string()));
    }
    let mut sections: Vec<(String, String)> = Vec::new();
    for line in lines {
        if let Some(name) = line.strip_prefix(SECTION) {
            sections.push((name.trim().to_string(), String::new()));
        } else {
            let Some((_, body)) = sections.last_mut() else {
                return Err(WalError(
                    "rule-set CSV outside any %relation section".to_string(),
                ));
            };
            body.push_str(line);
            body.push('\n');
        }
    }
    let empty = RuleRelations::empty();
    let mut rels = RuleRelations::empty();
    for (name, body) in &sections {
        let template = empty
            .named()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, rel)| rel.schema().clone())
            .ok_or_else(|| WalError(format!("unknown rule relation {name:?}")))?;
        let parsed = from_csv(name, template, body)
            .map_err(|e| WalError(format!("parsing rule relation {name}: {e}")))?;
        match name.as_str() {
            "RULES" => rels.rules = parsed,
            "ATTRVALUEMAP" => rels.value_map = parsed,
            "ATTRCATALOG" => rels.attr_catalog = parsed,
            "RULEMETA" => rels.meta = parsed,
            _ => unreachable!("matched against named() above"),
        }
    }
    if sections.len() != 4 {
        return Err(WalError(format!(
            "rule-set record has {} sections, expected 4",
            sections.len()
        )));
    }
    decode(&rels).map_err(|e| WalError(format!("decoding rule set: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_rules::rule::{AttrId, Clause, Rule};

    fn sample_rules() -> RuleSet {
        let disp = AttrId::new("CLASS", "Displacement");
        let ty = AttrId::new("CLASS", "Type");
        RuleSet::from_rules([
            Rule::new(
                1,
                vec![Clause::between(disp.clone(), 7250, 30000)],
                Clause::equals(ty.clone(), "SSBN"),
            )
            .with_subtype("SSBN")
            .with_support(4),
            Rule::new(
                2,
                vec![Clause::between(disp, 220, 7000)],
                Clause::equals(ty, "SSN"),
            )
            .with_support(13),
        ])
    }

    #[test]
    fn round_trips() {
        let rules = sample_rules();
        let bytes = rules_to_bytes(&rules).unwrap();
        let back = rules_from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), rules.len());
        assert_eq!(back.get(1).unwrap().support, 4);
        assert_eq!(back.get(1).unwrap().rhs_subtype.as_deref(), Some("SSBN"));
        assert_eq!(back.get(2).unwrap().support, 13);
        assert_eq!(back.get(2).unwrap().lhs, rules.get(2).unwrap().lhs);
    }

    #[test]
    fn empty_rule_set_round_trips() {
        let bytes = rules_to_bytes(&RuleSet::new()).unwrap();
        assert!(rules_from_bytes(&bytes).unwrap().is_empty());
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(rules_from_bytes(b"not a rule set").is_err());
        assert!(rules_from_bytes(&[0xFF, 0xFE]).is_err());
        let valid = rules_to_bytes(&sample_rules()).unwrap();
        let truncated = &valid[..valid.len() / 2];
        assert!(
            rules_from_bytes(truncated).is_err(),
            "a truncated body must not decode"
        );
    }
}
