//! WAL segment files: naming, listing, and the on-disk layout.
//!
//! ```text
//! <data-dir>/
//!   wal/
//!     wal-0000000000000001.log     segment 1 (oldest)
//!     wal-0000000000000002.log     segment 2 (active)
//!   checkpoints/
//!     ckpt-000000000000000c-0001/  checkpoint at epoch 12
//!       MANIFEST
//!       db/       storage::persist directory of the database
//!       rules/    storage::persist directory of the rule relations
//! ```
//!
//! Segments are pure record streams (no per-file header); the sequence
//! number in the file name orders them. The writer rotates to a new
//! segment when the active one grows past the configured size, and a
//! successful checkpoint starts a fresh segment and deletes the ones
//! before it (every record they hold is covered by the checkpoint).

use std::path::{Path, PathBuf};

/// Subdirectory holding the log segments.
pub const WAL_SUBDIR: &str = "wal";
/// Subdirectory holding checkpoints.
pub const CHECKPOINT_SUBDIR: &str = "checkpoints";

/// The file name of segment `seq`.
pub fn segment_file_name(seq: u64) -> String {
    format!("wal-{seq:016x}.log")
}

/// Parse a segment file name back into its sequence number.
pub fn parse_segment_seq(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// The segments under `data_dir/wal`, sorted by sequence number.
/// A missing directory is an empty log, not an error.
pub fn list_segments(data_dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let dir = data_dir.join(WAL_SUBDIR);
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        if let Some(seq) = name.to_str().and_then(parse_segment_seq) {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_sort_textually() {
        assert_eq!(segment_file_name(1), "wal-0000000000000001.log");
        assert_eq!(parse_segment_seq("wal-0000000000000001.log"), Some(1));
        assert_eq!(
            parse_segment_seq(&segment_file_name(u64::MAX)),
            Some(u64::MAX)
        );
        assert_eq!(parse_segment_seq("wal-xyz.log"), None);
        assert_eq!(parse_segment_seq("wal-01.log"), None, "fixed width only");
        assert_eq!(parse_segment_seq("ckpt-0000000000000001"), None);
        // Textual order == numeric order, so `ls` shows replay order.
        assert!(segment_file_name(9) < segment_file_name(10));
    }
}
