//! intensio-wal: crash-safe durability for the intensional knowledge
//! state.
//!
//! The paper's pipeline maintains a *knowledge state* — the database,
//! the type-inference dictionary derived from it, and the induced rule
//! set — that [`intensio-serve`] advances through epoch-versioned
//! snapshots. This crate makes that state survive a crash:
//!
//! - **Log** ([`log::Wal`]): every data mutation and rule-set install
//!   is appended as a length-prefixed, CRC-32-checksummed record (see
//!   [`record`]) carrying the epoch and data version of the snapshot it
//!   created. Records are acknowledged under a configurable
//!   [`FsyncPolicy`]. Segments rotate at a size threshold.
//! - **Checkpoints** ([`checkpoint`]): periodically the full state is
//!   materialized through `storage::persist` into an atomically-renamed
//!   directory whose `MANIFEST` pins the epoch, letting the log be
//!   truncated.
//! - **Recovery** ([`recover`]): boot loads the newest valid
//!   checkpoint, replays the epoch-contiguous record suffix, truncates
//!   a torn tail, and rejects corrupt frames — any prefix of a valid
//!   log recovers to a consistent epoch.
//!
//! The crate is zero-dependency beyond the workspace: framing,
//! checksums, and file handling are all implemented here.

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod crc;

pub mod audit;
pub mod checkpoint;
pub mod log;
pub mod read;
pub mod record;
pub mod recover;
pub mod rules_codec;
pub mod segment;

pub use checkpoint::{CheckpointRef, LoadedCheckpoint};
pub use log::{Wal, WalStats};
pub use read::LogTail;
pub use record::{Record, RecordKind};
pub use recover::{recover, Recovered, RecoveryStats};

use std::fmt;
use std::path::Path;

/// Best-effort fsync of a directory, so renames and new files inside it
/// survive a power cut. Ignored on platforms where directories cannot
/// be opened for reading.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = std::fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Write one file and flush it to stable storage before returning.
pub(crate) fn write_sync(path: &Path, contents: &str) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    std::io::Write::write_all(&mut f, contents.as_bytes())?;
    f.sync_all()
}

/// A durability error: failed append, unreadable checkpoint, corrupt
/// log, or a poisoned writer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalError(pub String);

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wal: {}", self.0)
    }
}

impl std::error::Error for WalError {}

/// When an appended record is forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` before every acknowledgement. Slowest, loses nothing;
    /// the crash-safe default.
    #[default]
    Always,
    /// `fsync` once per `n` appends. A crash can lose up to `n - 1`
    /// acknowledged records — but never corrupt the log.
    Batch(u32),
    /// Never `fsync` explicitly; the OS flushes when it likes. A crash
    /// can lose any acknowledged record still in the page cache.
    Off,
}

impl FsyncPolicy {
    /// Parse `always`, `off`, or `batch:N` (N ≥ 1).
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("always") {
            return Ok(FsyncPolicy::Always);
        }
        if s.eq_ignore_ascii_case("off") {
            return Ok(FsyncPolicy::Off);
        }
        if let Some(n) = s
            .strip_prefix("batch:")
            .or_else(|| s.strip_prefix("BATCH:"))
        {
            let n: u32 = n
                .trim()
                .parse()
                .map_err(|_| format!("bad fsync batch size {n:?}"))?;
            if n == 0 {
                return Err("fsync batch size must be at least 1".to_string());
            }
            return Ok(FsyncPolicy::Batch(n));
        }
        Err(format!(
            "unknown fsync policy {s:?}; expected always, batch:N, or off"
        ))
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Batch(n) => write!(f, "batch:{n}"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// Tuning for the durable write path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Rotate to a new segment once the active one exceeds this size.
    pub segment_bytes: u64,
    /// When appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many appended records.
    pub checkpoint_every: u64,
    /// How many checkpoints to retain after pruning.
    pub keep_checkpoints: usize,
}

impl Default for WalConfig {
    fn default() -> WalConfig {
        WalConfig {
            segment_bytes: 4 * 1024 * 1024,
            fsync: FsyncPolicy::Always,
            checkpoint_every: 256,
            keep_checkpoints: 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse(" off "), Ok(FsyncPolicy::Off));
        assert_eq!(FsyncPolicy::parse("batch:8"), Ok(FsyncPolicy::Batch(8)));
        assert!(FsyncPolicy::parse("batch:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::Batch(8).to_string(), "batch:8");
        assert_eq!(FsyncPolicy::default().to_string(), "always");
    }
}
