//! The WAL record format: length-prefixed, CRC-checksummed frames.
//!
//! ```text
//! frame    = len:u32le  crc:u32le  payload
//! payload  = kind:u8  term:u64le  epoch:u64le  data_version:u64le  body
//! ```
//!
//! `len` is the payload length and `crc` is the CRC-32 of the payload,
//! so a frame is self-validating: a reader that finds fewer bytes than
//! `len` promises has hit a *torn tail* (the expected shape of a crash
//! mid-append), and a reader whose checksum disagrees has hit
//! *corruption*. Both stop replay; the distinction is reported so
//! operators can tell an ordinary crash from bit rot.

use crate::crc::crc32;

/// Frame header: length + checksum.
pub const FRAME_HEADER_BYTES: usize = 8;
/// Payload prefix: kind + term + epoch + data_version.
pub const PAYLOAD_PREFIX_BYTES: usize = 1 + 8 + 8 + 8;
/// Upper bound on one record's payload; anything larger is treated as
/// corruption (a garbage length prefix), not an allocation request.
pub const MAX_PAYLOAD_BYTES: u32 = 64 * 1024 * 1024;

/// What one WAL record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A data mutation: the body is the UTF-8 QUEL script that was
    /// applied. Replay re-runs the script.
    Write,
    /// A rule-set install: the body is the encoded rule relations (see
    /// [`crate::rules_codec`]). Replay re-installs the rules (after the
    /// caller's static-analysis gate).
    Rules,
    /// A term bump: a newly promoted primary fsyncs one of these before
    /// accepting writes. The record consumes an epoch (so it replicates
    /// through the ordinary exactly-once chain) but changes no data;
    /// replay adopts the record's term. The body is empty.
    Term,
}

impl RecordKind {
    fn tag(self) -> u8 {
        match self {
            RecordKind::Write => 1,
            RecordKind::Rules => 2,
            RecordKind::Term => 3,
        }
    }

    fn from_tag(tag: u8) -> Option<RecordKind> {
        match tag {
            1 => Some(RecordKind::Write),
            2 => Some(RecordKind::Rules),
            3 => Some(RecordKind::Term),
            _ => None,
        }
    }

    /// The record kind's display name.
    pub fn name(self) -> &'static str {
        match self {
            RecordKind::Write => "write",
            RecordKind::Rules => "rules",
            RecordKind::Term => "term",
        }
    }
}

/// One durable log entry: the knowledge-state transition it caused
/// (epoch, data version) plus the bytes needed to replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// What the record describes.
    pub kind: RecordKind,
    /// The primary term under which the record was committed. Terms
    /// fence failover: a record from a lower term than the reader's
    /// established term belongs to a deposed primary's lineage.
    pub term: u64,
    /// The epoch the snapshot *created by this record* carries.
    pub epoch: u64,
    /// The data version of that snapshot.
    pub data_version: u64,
    /// Kind-specific payload.
    pub body: Vec<u8>,
}

impl Record {
    /// A data-mutation record carrying the QUEL script that ran
    /// (term 0; see [`Record::with_term`]).
    pub fn write(epoch: u64, data_version: u64, script: &str) -> Record {
        Record {
            kind: RecordKind::Write,
            term: 0,
            epoch,
            data_version,
            body: script.as_bytes().to_vec(),
        }
    }

    /// A rule-set-install record carrying encoded rule relations
    /// (term 0; see [`Record::with_term`]).
    pub fn rules(epoch: u64, data_version: u64, body: Vec<u8>) -> Record {
        Record {
            kind: RecordKind::Rules,
            term: 0,
            epoch,
            data_version,
            body,
        }
    }

    /// A term-bump record: the fencepost a promoted primary fsyncs at
    /// `term` before accepting its first write.
    pub fn term_bump(term: u64, epoch: u64, data_version: u64) -> Record {
        Record {
            kind: RecordKind::Term,
            term,
            epoch,
            data_version,
            body: Vec::new(),
        }
    }

    /// The same record stamped with a primary term.
    pub fn with_term(mut self, term: u64) -> Record {
        self.term = term;
        self
    }

    /// The QUEL script of a [`RecordKind::Write`] record.
    pub fn script(&self) -> Option<&str> {
        match self.kind {
            RecordKind::Write => std::str::from_utf8(&self.body).ok(),
            RecordKind::Rules | RecordKind::Term => None,
        }
    }

    /// Encode the full frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let len = PAYLOAD_PREFIX_BYTES + self.body.len();
        let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + len);
        out.extend_from_slice(&(len as u32).to_le_bytes());
        out.extend_from_slice(&[0, 0, 0, 0]); // crc placeholder
        out.push(self.kind.tag());
        out.extend_from_slice(&self.term.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.data_version.to_le_bytes());
        out.extend_from_slice(&self.body);
        let crc = crc32(&out[FRAME_HEADER_BYTES..]);
        out[4..8].copy_from_slice(&crc.to_le_bytes());
        out
    }
}

/// The outcome of decoding one frame from the front of `buf`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameOutcome {
    /// A valid record, and how many bytes it consumed.
    Complete(Record, usize),
    /// The buffer ends mid-frame: a torn tail (crash mid-append).
    Torn,
    /// The frame is structurally invalid (bad checksum, impossible
    /// length, unknown kind): corruption, with a description.
    Corrupt(String),
}

/// Decode the frame at the front of `buf` (an empty buffer is a clean
/// end of log, reported as [`FrameOutcome::Torn`] with zero bytes —
/// callers distinguish by checking `buf.is_empty()` first).
pub fn decode_frame(buf: &[u8]) -> FrameOutcome {
    if buf.len() < FRAME_HEADER_BYTES {
        return FrameOutcome::Torn;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if len > MAX_PAYLOAD_BYTES {
        return FrameOutcome::Corrupt(format!("frame length {len} exceeds maximum"));
    }
    let len = len as usize;
    if len < PAYLOAD_PREFIX_BYTES {
        return FrameOutcome::Corrupt(format!("frame length {len} below payload prefix"));
    }
    let Some(payload) = buf.get(FRAME_HEADER_BYTES..FRAME_HEADER_BYTES + len) else {
        return FrameOutcome::Torn;
    };
    if crc32(payload) != crc {
        return FrameOutcome::Corrupt("checksum mismatch".to_string());
    }
    let Some(kind) = RecordKind::from_tag(payload[0]) else {
        return FrameOutcome::Corrupt(format!("unknown record kind {}", payload[0]));
    };
    let mut term = [0u8; 8];
    term.copy_from_slice(&payload[1..9]);
    let mut epoch = [0u8; 8];
    epoch.copy_from_slice(&payload[9..17]);
    let mut dv = [0u8; 8];
    dv.copy_from_slice(&payload[17..25]);
    FrameOutcome::Complete(
        Record {
            kind,
            term: u64::from_le_bytes(term),
            epoch: u64::from_le_bytes(epoch),
            data_version: u64::from_le_bytes(dv),
            body: payload[PAYLOAD_PREFIX_BYTES..].to_vec(),
        },
        FRAME_HEADER_BYTES + len,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let rec = Record::write(7, 3, "append to SUBMARINE (Id = \"X\")").with_term(5);
        let frame = rec.encode();
        match decode_frame(&frame) {
            FrameOutcome::Complete(back, consumed) => {
                assert_eq!(back, rec);
                assert_eq!(back.term, 5);
                assert_eq!(consumed, frame.len());
                assert_eq!(back.script(), Some("append to SUBMARINE (Id = \"X\")"));
            }
            other => panic!("expected complete frame, got {other:?}"),
        }
    }

    #[test]
    fn term_bump_round_trips_with_empty_body() {
        let rec = Record::term_bump(4, 11, 6);
        match decode_frame(&rec.encode()) {
            FrameOutcome::Complete(back, _) => {
                assert_eq!(back, rec);
                assert_eq!(back.kind, RecordKind::Term);
                assert_eq!((back.term, back.epoch, back.data_version), (4, 11, 6));
                assert!(back.body.is_empty());
                assert_eq!(back.script(), None);
            }
            other => panic!("expected complete frame, got {other:?}"),
        }
    }

    #[test]
    fn every_strict_prefix_is_torn() {
        let frame = Record::rules(2, 1, vec![1, 2, 3, 4, 5]).encode();
        for cut in 0..frame.len() {
            assert_eq!(
                decode_frame(&frame[..cut]),
                FrameOutcome::Torn,
                "prefix of {cut} bytes must read as torn"
            );
        }
    }

    #[test]
    fn any_flip_is_corrupt_or_torn_never_wrong() {
        let rec = Record::write(9, 4, "delete s where s.Id = \"A\"");
        let frame = rec.encode();
        for i in 0..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            match decode_frame(&bad) {
                FrameOutcome::Complete(back, _) => {
                    panic!("flip at {i} decoded as {back:?}")
                }
                FrameOutcome::Torn | FrameOutcome::Corrupt(_) => {}
            }
        }
    }

    #[test]
    fn impossible_lengths_are_corrupt() {
        let mut frame = Record::write(1, 1, "x").encode();
        frame[0..4].copy_from_slice(&(MAX_PAYLOAD_BYTES + 1).to_le_bytes());
        assert!(matches!(decode_frame(&frame), FrameOutcome::Corrupt(_)));
        frame[0..4].copy_from_slice(&2u32.to_le_bytes());
        assert!(matches!(decode_frame(&frame), FrameOutcome::Corrupt(_)));
    }
}
