//! Read-only audit accessors for offline analysis of a data directory.
//!
//! [`crate::recover`] answers "what state do I boot into?"; the
//! accessors here answer the *auditor's* questions — what is physically
//! on disk, frame by frame and manifest by manifest, without deciding
//! anything. `intensio-check fsck` builds its diagnostics on top of
//! these; nothing in this module writes, truncates, or repairs.

use crate::checkpoint::{parse_manifest, MANIFEST};
use crate::record::{decode_frame, FrameOutcome};
use crate::segment::{CHECKPOINT_SUBDIR, WAL_SUBDIR};
use crate::WalError;
use std::path::{Path, PathBuf};

/// One on-disk checkpoint directory: its path, plus the `(epoch, seq)`
/// parsed from its name when the name parses.
pub type CheckpointDirEntry = (PathBuf, Option<(u64, u64)>);

/// The fields a checkpoint `MANIFEST` pins, decoded without loading the
/// database or rules it describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestInfo {
    /// The epoch the checkpoint pins.
    pub epoch: u64,
    /// The data version at that epoch.
    pub data_version: u64,
    /// The primary term the state was committed under (0 for manifests
    /// written before terms existed).
    pub term: u64,
    /// Whether the checkpoint carries a rule set.
    pub has_rules: bool,
}

/// Read and verify the `MANIFEST` of one checkpoint directory. Fails on
/// a missing file, a checksum mismatch, or a malformed field — the
/// caller decides whether that is fatal or a fallback.
pub fn read_manifest(ckpt_dir: &Path) -> Result<ManifestInfo, WalError> {
    let text = std::fs::read_to_string(ckpt_dir.join(MANIFEST))
        .map_err(|e| WalError(format!("reading manifest: {e}")))?;
    let (epoch, data_version, term, has_rules) = parse_manifest(&text)?;
    Ok(ManifestInfo {
        epoch,
        data_version,
        term,
        has_rules,
    })
}

/// Decode every frame in one segment's bytes, oldest first, pairing
/// each outcome with its byte offset. Decoding stops after the first
/// [`FrameOutcome::Torn`] or [`FrameOutcome::Corrupt`] — past either,
/// frame boundaries are no longer trustworthy — so those can only be
/// the final element. A clean end of file produces no trailing entry.
pub fn scan_frames(buf: &[u8]) -> Vec<(u64, FrameOutcome)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let outcome = decode_frame(&buf[pos..]);
        let consumed = match &outcome {
            FrameOutcome::Complete(_, consumed) => *consumed,
            FrameOutcome::Torn | FrameOutcome::Corrupt(_) => {
                out.push((pos as u64, outcome));
                break;
            }
        };
        out.push((pos as u64, outcome));
        pos += consumed;
    }
    out
}

/// Checkpoint directories exactly as named on disk, including ones
/// [`crate::checkpoint::list_checkpoints`] would skip as unparseable.
/// Each entry is `(path, parsed (epoch, seq) when the name parses)`.
pub fn list_checkpoint_dirs(data_dir: &Path) -> std::io::Result<Vec<CheckpointDirEntry>> {
    let dir = data_dir.join(CHECKPOINT_SUBDIR);
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if is_debris_name(name) {
            continue; // reported by `debris`, not as a checkpoint
        }
        out.push((entry.path(), parse_ckpt_name(name)));
    }
    out.sort();
    Ok(out)
}

fn parse_ckpt_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("ckpt-")?;
    let (epoch_hex, seq_hex) = rest.split_once('-')?;
    if epoch_hex.len() != 16 || seq_hex.len() != 4 {
        return None;
    }
    Some((
        u64::from_str_radix(epoch_hex, 16).ok()?,
        u64::from_str_radix(seq_hex, 16).ok()?,
    ))
}

fn is_debris_name(name: &str) -> bool {
    name.contains(".tmp-") || name.contains(".saving-") || name.contains(".old-")
}

/// Leftover atomic-write intermediates: `.tmp-*` checkpoint staging
/// directories and `.saving-*` / `.old-*` persist siblings. Each is the
/// footprint of a crash mid-write — harmless to recovery (which ignores
/// them) but disk an operator may want back. Scans the data directory
/// root, `wal/`, `checkpoints/`, and one level inside each checkpoint.
pub fn debris(data_dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut roots = vec![
        data_dir.to_path_buf(),
        data_dir.join(WAL_SUBDIR),
        data_dir.join(CHECKPOINT_SUBDIR),
    ];
    for (path, _) in list_checkpoint_dirs(data_dir)? {
        roots.push(path);
    }
    for root in roots {
        let entries = match std::fs::read_dir(&root) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            if name.to_str().is_some_and(is_debris_name) {
                out.push(entry.path());
            }
        }
    }
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    #[test]
    fn scan_frames_walks_offsets_and_stops_on_damage() {
        let a = Record::write(1, 1, "a").encode();
        let b = Record::write(2, 2, "b").encode();
        let mut buf = Vec::new();
        buf.extend_from_slice(&a);
        buf.extend_from_slice(&b);
        let frames = scan_frames(&buf);
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].0, 0);
        assert_eq!(frames[1].0, a.len() as u64);

        // Tear the tail: the final entry is Torn at its offset.
        let torn = scan_frames(&buf[..buf.len() - 3]);
        assert_eq!(torn.len(), 2);
        assert!(matches!(torn[1].1, FrameOutcome::Torn));

        // Flip a byte in the second frame: Corrupt ends the scan.
        let mut bad = buf.clone();
        bad[a.len() + 10] ^= 0xFF;
        let corrupt = scan_frames(&bad);
        assert_eq!(corrupt.len(), 2);
        assert!(matches!(corrupt[1].1, FrameOutcome::Corrupt(_)));
    }

    #[test]
    fn manifest_reads_back_and_debris_is_found() {
        use intensio_storage::catalog::Database;
        let dir = std::env::temp_dir().join(format!("intensio_audit_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let r = crate::checkpoint::write_checkpoint(&dir, &Database::new(), None, 4, 2, 3).unwrap();
        let info = read_manifest(&r.path).unwrap();
        assert_eq!(
            info,
            ManifestInfo {
                epoch: 4,
                data_version: 2,
                term: 3,
                has_rules: false
            }
        );
        assert!(debris(&dir).unwrap().is_empty());

        // Plant a crashed checkpoint staging dir and a persist sibling.
        let tmp = dir.join(CHECKPOINT_SUBDIR).join("ckpt-x.tmp-999");
        std::fs::create_dir_all(&tmp).unwrap();
        std::fs::create_dir_all(r.path.join(".db.saving-999")).unwrap();
        let found = debris(&dir).unwrap();
        assert_eq!(found.len(), 2, "{found:?}");
        let dirs = list_checkpoint_dirs(&dir).unwrap();
        assert_eq!(dirs.len(), 1, "debris is not a checkpoint: {dirs:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
