//! Boot-time recovery: rebuild the newest consistent knowledge state
//! from checkpoints plus the log.
//!
//! # Procedure
//!
//! 1. Load the newest checkpoint whose manifest verifies (older ones
//!    are fallbacks; unverifiable ones are ignored).
//! 2. Scan segments in sequence order, decoding frames. A record is
//!    *replayed* only if its epoch is exactly one past the last
//!    accepted epoch — the log is a chain, and contiguity is what makes
//!    a replayed suffix sound. Records at or below the checkpoint epoch
//!    are *skipped* (already materialized).
//! 3. A torn frame ends that segment: the expected shape of a crash
//!    mid-append. Replay continues with the next segment (a writer
//!    never appends after a tail it did not write, so later segments
//!    can legitimately follow a torn one), still under the contiguity
//!    rule. Torn tails are reported so the caller can truncate them.
//! 4. A corrupt frame (bad checksum, impossible length) or an epoch
//!    gap ends replay entirely: frame boundaries or ordering can no
//!    longer be trusted, and everything after is discarded and counted.
//! 5. Terms fence failover lineages. Replay tracks the highest term
//!    established so far (seeded from the checkpoint manifest). A
//!    record from a *lower* term is a higher-term-orphaned suffix — a
//!    deposed primary's unshipped tail, already superseded by a rewind
//!    checkpoint — and is skipped, counted as orphaned. A record from a
//!    *higher* term first retracts any accepted records at or above its
//!    epoch (they were orphaned by the failover) and then chains
//!    normally under the new term.
//!
//! The function is read-only; [`apply_sanitize`] performs the
//! truncations recovery recommends. Orphaned records interleaved
//! mid-log are dropped logically here and physically retired by the
//! caller's next checkpoint (the serve boot path always re-checkpoints
//! the recovered state, which truncates the covered log).

use crate::checkpoint::{list_checkpoints, load_checkpoint, LoadedCheckpoint};
use crate::record::{decode_frame, FrameOutcome, Record};
use crate::segment::list_segments;
use crate::WalError;
use std::path::{Path, PathBuf};

/// What recovery observed, for STATS and the `recovery.*` metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Records accepted for replay.
    pub replayed_records: u64,
    /// Complete records already covered by the checkpoint.
    pub skipped_records: u64,
    /// Complete records rejected (after corruption or an epoch gap).
    pub discarded_records: u64,
    /// Bytes dropped: torn tails plus everything after corruption.
    pub discarded_bytes: u64,
    /// Whether any segment ended in a torn frame.
    pub torn_tail: bool,
    /// Whether a corrupt frame or epoch gap ended replay early.
    pub corrupt: bool,
    /// Epoch of the checkpoint recovery started from (0 if none).
    pub checkpoint_epoch: u64,
    /// Records dropped because a higher term superseded their lineage
    /// (a deposed primary's unshipped suffix).
    pub orphaned_records: u64,
    /// Term of the checkpoint recovery started from (0 if none).
    pub checkpoint_term: u64,
}

/// The result of scanning a data directory.
#[derive(Debug)]
pub struct Recovered {
    /// The newest valid checkpoint, if any.
    pub checkpoint: Option<LoadedCheckpoint>,
    /// The epoch-contiguous record suffix to replay, oldest first.
    pub records: Vec<Record>,
    /// Accounting for STATS and metrics.
    pub stats: RecoveryStats,
    /// Highest segment sequence number present (0 on a fresh
    /// directory); the writer opens segment `last_seq + 1`.
    pub last_seq: u64,
    /// Truncation plan: `(segment, keep_bytes)` for every torn tail.
    pub torn: Vec<(PathBuf, u64)>,
}

impl Recovered {
    /// The epoch of the recovered state (after replay).
    pub fn final_epoch(&self) -> u64 {
        self.records
            .last()
            .map(|r| r.epoch)
            .unwrap_or(self.stats.checkpoint_epoch)
    }

    /// The data version of the recovered state (after replay).
    pub fn final_data_version(&self) -> u64 {
        self.records
            .last()
            .map(|r| r.data_version)
            .or_else(|| self.checkpoint.as_ref().map(|c| c.data_version))
            .unwrap_or(0)
    }

    /// The primary term of the recovered state: the highest term on
    /// the replayed suffix, or the checkpoint's term.
    pub fn final_term(&self) -> u64 {
        self.records
            .iter()
            .map(|r| r.term)
            .max()
            .unwrap_or(0)
            .max(self.stats.checkpoint_term)
    }
}

/// Scan `data_dir` and compute the newest consistent state. Read-only:
/// nothing on disk changes. Fails only on I/O errors reading intact
/// files — corruption and torn tails are outcomes, not errors.
pub fn recover(data_dir: &Path) -> Result<Recovered, WalError> {
    let io = |e: std::io::Error| WalError(format!("recovery io: {e}"));

    let mut checkpoint = None;
    for ckpt in list_checkpoints(data_dir).map_err(io)?.iter().rev() {
        match load_checkpoint(ckpt) {
            Ok(loaded) => {
                checkpoint = Some(loaded);
                break;
            }
            Err(_) => continue, // unverifiable checkpoint: fall back
        }
    }
    let base_epoch = checkpoint.as_ref().map(|c| c.epoch).unwrap_or(0);
    let base_term = checkpoint.as_ref().map(|c| c.term).unwrap_or(0);

    let mut stats = RecoveryStats {
        checkpoint_epoch: base_epoch,
        checkpoint_term: base_term,
        ..RecoveryStats::default()
    };
    let mut records: Vec<Record> = Vec::new();
    let mut torn: Vec<(PathBuf, u64)> = Vec::new();
    let mut last_epoch = base_epoch;
    let mut last_term = base_term;
    let mut stopped = false;

    let segments = list_segments(data_dir).map_err(io)?;
    let last_seq = segments.last().map(|(seq, _)| *seq).unwrap_or(0);

    for (_seq, path) in &segments {
        let buf = std::fs::read(path).map_err(io)?;
        let mut pos = 0usize;
        while pos < buf.len() {
            match decode_frame(&buf[pos..]) {
                FrameOutcome::Complete(rec, consumed) => {
                    pos += consumed;
                    if stopped {
                        stats.discarded_records += 1;
                        stats.discarded_bytes += consumed as u64;
                        continue;
                    }
                    if rec.term < last_term {
                        // A deposed primary's lineage: a later term has
                        // already been established (by the checkpoint
                        // or an earlier record), so this suffix was
                        // fenced off at failover. Never replay it.
                        stats.orphaned_records += 1;
                        stats.discarded_bytes += consumed as u64;
                        continue;
                    }
                    if rec.term > last_term {
                        // A new term begins. Anything accepted at or
                        // above its epoch belonged to the previous
                        // term's unshipped tail and was orphaned by the
                        // failover — retract it before chaining.
                        while records.last().is_some_and(|p| p.epoch >= rec.epoch) {
                            records.pop();
                            stats.replayed_records -= 1;
                            stats.orphaned_records += 1;
                        }
                        last_epoch = records.last().map(|r| r.epoch).unwrap_or(base_epoch);
                        last_term = rec.term;
                    }
                    let duplicates_tail = rec.epoch == last_epoch
                        && records.last().is_some_and(|prev| prev.epoch == rec.epoch);
                    if duplicates_tail {
                        // Two records for one epoch: the earlier append
                        // was logged but its in-process install failed
                        // before acknowledgement, so the writer reused
                        // the epoch. The later record is the transition
                        // that was actually acknowledged — it wins.
                        if let Some(prev) = records.last_mut() {
                            *prev = rec;
                        }
                        stats.skipped_records += 1;
                    } else if rec.epoch <= last_epoch {
                        stats.skipped_records += 1;
                    } else if rec.epoch == last_epoch + 1 {
                        last_epoch = rec.epoch;
                        stats.replayed_records += 1;
                        records.push(rec);
                    } else {
                        // An epoch gap: records are missing between the
                        // accepted prefix and this one. Nothing after
                        // can be trusted to describe a state we hold.
                        stats.corrupt = true;
                        stopped = true;
                        stats.discarded_records += 1;
                        stats.discarded_bytes += consumed as u64;
                    }
                }
                FrameOutcome::Torn => {
                    stats.torn_tail = true;
                    stats.discarded_bytes += (buf.len() - pos) as u64;
                    torn.push((path.clone(), pos as u64));
                    break; // next segment may still continue the chain
                }
                FrameOutcome::Corrupt(_) => {
                    stats.corrupt = true;
                    stats.discarded_bytes += (buf.len() - pos) as u64;
                    stopped = true;
                    break; // framing is lost for the rest of this file
                }
            }
        }
    }

    intensio_obs::gauge("recovery.replayed_records", stats.replayed_records as i64);
    intensio_obs::gauge("recovery.skipped_records", stats.skipped_records as i64);
    intensio_obs::gauge("recovery.discarded_records", stats.discarded_records as i64);
    intensio_obs::gauge("recovery.discarded_bytes", stats.discarded_bytes as i64);
    intensio_obs::gauge("recovery.checkpoint_epoch", base_epoch as i64);
    intensio_obs::gauge("recovery.orphaned_records", stats.orphaned_records as i64);

    Ok(Recovered {
        checkpoint,
        records,
        stats,
        last_seq,
        torn,
    })
}

/// Truncate the torn tails recovery found, making the on-disk log equal
/// to the replayed prefix. Safe to re-run; a no-op when nothing tore.
pub fn apply_sanitize(recovered: &Recovered) -> Result<(), WalError> {
    for (path, keep) in &recovered.torn {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| WalError(format!("opening {} to truncate: {e}", path.display())))?;
        file.set_len(*keep)
            .map_err(|e| WalError(format!("truncating {}: {e}", path.display())))?;
        file.sync_all()
            .map_err(|e| WalError(format!("syncing {}: {e}", path.display())))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Wal;
    use crate::segment::{segment_file_name, WAL_SUBDIR};
    use crate::{FsyncPolicy, WalConfig};

    fn tmpdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("intensio_recover_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg() -> WalConfig {
        WalConfig {
            segment_bytes: 200,
            fsync: FsyncPolicy::Off,
            checkpoint_every: 1000,
            keep_checkpoints: 2,
        }
    }

    fn write_n(dir: &Path, n: u64) {
        let mut wal = Wal::open(dir, cfg(), 0).unwrap();
        for i in 1..=n {
            wal.append(&Record::write(i, i, &format!("script {i}")))
                .unwrap();
        }
    }

    #[test]
    fn fresh_directory_recovers_empty() {
        let dir = tmpdir("fresh");
        let rec = recover(&dir).unwrap();
        assert!(rec.checkpoint.is_none());
        assert!(rec.records.is_empty());
        assert_eq!(rec.final_epoch(), 0);
        assert_eq!(rec.last_seq, 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = tmpdir("torn");
        write_n(&dir, 5);
        // Tear the last segment: chop a few bytes off its tail.
        let segments = list_segments(&dir).unwrap();
        let (_, last) = segments.last().unwrap();
        let bytes = std::fs::read(last).unwrap();
        std::fs::write(last, &bytes[..bytes.len() - 3]).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.records.len(), 4, "the torn record is dropped");
        assert!(rec.stats.torn_tail);
        assert!(!rec.stats.corrupt);
        assert_eq!(rec.final_epoch(), 4);
        assert_eq!(rec.torn.len(), 1);

        apply_sanitize(&rec).unwrap();
        let again = recover(&dir).unwrap();
        assert_eq!(again.records.len(), 4);
        assert!(!again.stats.torn_tail, "sanitize removed the tear");
    }

    #[test]
    fn corruption_stops_replay_and_counts_the_rest() {
        let dir = tmpdir("corrupt");
        write_n(&dir, 6);
        // Flip a byte inside the second record of the first segment.
        let segments = list_segments(&dir).unwrap();
        let (_, first) = segments.first().unwrap();
        let mut bytes = std::fs::read(first).unwrap();
        let first_len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize + 8;
        bytes[first_len + 10] ^= 0xFF;
        std::fs::write(first, &bytes).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.records.len(), 1, "only the record before the damage");
        assert!(rec.stats.corrupt);
        assert!(rec.stats.discarded_records >= 1 || rec.stats.discarded_bytes > 0);
        assert_eq!(rec.final_epoch(), 1);
    }

    #[test]
    fn epoch_gap_discards_the_suffix() {
        let dir = tmpdir("gap");
        let wal_dir = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal_dir).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(&Record::write(1, 1, "a").encode());
        buf.extend_from_slice(&Record::write(3, 3, "c").encode()); // gap: no epoch 2
        buf.extend_from_slice(&Record::write(4, 4, "d").encode());
        std::fs::write(wal_dir.join(segment_file_name(1)), &buf).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.stats.discarded_records, 2);
        assert!(rec.stats.corrupt);
    }

    #[test]
    fn later_segment_continues_past_a_sanitized_boot() {
        // Boot 1 writes records 1-2 and tears record 3's frame; boot 2
        // starts a fresh segment and appends records 3-4. Recovery must
        // replay 1-4 across the tear.
        let dir = tmpdir("reboot");
        let wal_dir = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal_dir).unwrap();
        let mut seg1 = Vec::new();
        seg1.extend_from_slice(&Record::write(1, 1, "a").encode());
        seg1.extend_from_slice(&Record::write(2, 2, "b").encode());
        let torn = Record::write(3, 3, "lost").encode();
        seg1.extend_from_slice(&torn[..torn.len() / 2]);
        std::fs::write(wal_dir.join(segment_file_name(1)), &seg1).unwrap();
        let mut seg2 = Vec::new();
        seg2.extend_from_slice(&Record::write(3, 3, "c").encode());
        seg2.extend_from_slice(&Record::write(4, 4, "d").encode());
        std::fs::write(wal_dir.join(segment_file_name(2)), &seg2).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.records.len(), 4);
        assert_eq!(rec.records[2].script(), Some("c"));
        assert!(rec.stats.torn_tail);
        assert!(!rec.stats.corrupt);
        assert_eq!(rec.last_seq, 2);
    }

    #[test]
    fn duplicate_epoch_last_record_wins() {
        // Epoch 2 appears twice: the first append's install failed
        // before acknowledgement and the epoch was reused. The later,
        // acknowledged record must be the one replayed.
        let dir = tmpdir("dup");
        let wal_dir = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal_dir).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(&Record::write(1, 1, "a").encode());
        buf.extend_from_slice(&Record::write(2, 2, "unacked").encode());
        buf.extend_from_slice(&Record::write(2, 2, "acked").encode());
        buf.extend_from_slice(&Record::write(3, 3, "c").encode());
        std::fs::write(wal_dir.join(segment_file_name(1)), &buf).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.records.len(), 3);
        assert_eq!(rec.records[1].script(), Some("acked"));
        assert_eq!(rec.stats.skipped_records, 1);
        assert!(!rec.stats.corrupt);
        assert_eq!(rec.final_epoch(), 3);
    }

    #[test]
    fn checkpoint_plus_suffix_replay() {
        use intensio_storage::prelude::*;
        let dir = tmpdir("ckpt");
        let db = Database::new();
        crate::checkpoint::write_checkpoint(&dir, &db, None, 3, 2, 0).unwrap();
        let wal_dir = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal_dir).unwrap();
        let mut buf = Vec::new();
        for (e, s) in [(2, "old"), (3, "old"), (4, "new"), (5, "new2")] {
            buf.extend_from_slice(&Record::write(e, e, s).encode());
        }
        std::fs::write(wal_dir.join(segment_file_name(7)), &buf).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.stats.checkpoint_epoch, 3);
        assert_eq!(rec.stats.skipped_records, 2, "records at or below epoch 3");
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.final_epoch(), 5);
        assert_eq!(rec.last_seq, 7);
    }

    #[test]
    fn term_record_chains_and_raises_the_term() {
        let dir = tmpdir("termchain");
        let wal_dir = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal_dir).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(&Record::write(1, 1, "a").encode());
        buf.extend_from_slice(&Record::write(2, 2, "b").encode());
        buf.extend_from_slice(&Record::term_bump(1, 3, 2).encode());
        buf.extend_from_slice(&Record::write(4, 3, "c").with_term(1).encode());
        std::fs::write(wal_dir.join(segment_file_name(1)), &buf).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.records.len(), 4);
        assert_eq!(rec.final_epoch(), 4);
        assert_eq!(rec.final_term(), 1);
        assert_eq!(rec.stats.orphaned_records, 0);
        assert!(!rec.stats.corrupt);
    }

    #[test]
    fn higher_term_retracts_the_orphaned_suffix() {
        // A deposed primary logged epochs 1-4 at term 0, then (after
        // demoting and rewinding to the new lineage) appended the new
        // primary's term-1 chain from epoch 3. The term-0 records at
        // epochs 3-4 are orphans: replay must retract them and follow
        // the term-1 chain.
        let dir = tmpdir("orphan");
        let wal_dir = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal_dir).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(&Record::write(1, 1, "a").encode());
        buf.extend_from_slice(&Record::write(2, 2, "b").encode());
        buf.extend_from_slice(&Record::write(3, 3, "orphan3").encode());
        buf.extend_from_slice(&Record::write(4, 4, "orphan4").encode());
        buf.extend_from_slice(&Record::term_bump(1, 3, 2).encode());
        buf.extend_from_slice(&Record::write(4, 3, "kept4").with_term(1).encode());
        std::fs::write(wal_dir.join(segment_file_name(1)), &buf).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.records.len(), 4);
        assert_eq!(rec.records[2].kind, crate::RecordKind::Term);
        assert_eq!(rec.records[3].script(), Some("kept4"));
        assert_eq!(rec.final_epoch(), 4);
        assert_eq!(rec.final_term(), 1);
        assert_eq!(rec.stats.orphaned_records, 2);
        assert!(!rec.stats.corrupt, "an orphaned suffix is not corruption");
    }

    #[test]
    fn stale_term_suffix_after_a_rewind_checkpoint_is_skipped() {
        // A durable follower rewound onto the new primary's lineage:
        // its checkpoint pins (epoch 3, term 2), but older segments
        // still hold the deposed primary's term-0 records at epochs
        // 4-5. Those are orphans; the term-2 chain from epoch 4 in the
        // later segment is the real suffix.
        use intensio_storage::prelude::*;
        let dir = tmpdir("stale");
        let db = Database::new();
        crate::checkpoint::write_checkpoint(&dir, &db, None, 3, 2, 2).unwrap();
        let wal_dir = dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&wal_dir).unwrap();
        let mut seg1 = Vec::new();
        seg1.extend_from_slice(&Record::write(4, 4, "orphan4").encode());
        seg1.extend_from_slice(&Record::write(5, 5, "orphan5").encode());
        std::fs::write(wal_dir.join(segment_file_name(1)), &seg1).unwrap();
        let mut seg2 = Vec::new();
        seg2.extend_from_slice(&Record::write(4, 3, "kept4").with_term(2).encode());
        std::fs::write(wal_dir.join(segment_file_name(2)), &seg2).unwrap();

        let rec = recover(&dir).unwrap();
        assert_eq!(rec.stats.checkpoint_term, 2);
        assert_eq!(rec.stats.orphaned_records, 2);
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.records[0].script(), Some("kept4"));
        assert_eq!(rec.final_epoch(), 4);
        assert_eq!(rec.final_term(), 2);
    }
}
