//! The WAL writer: append records durably, rotate segments, take
//! checkpoints, and never leave the log in a state recovery cannot
//! classify.
//!
//! # Failure discipline
//!
//! Under [`FsyncPolicy::Always`] an append either reaches stable
//! storage or the segment is rewound to its pre-append length — a
//! record that was written but whose fsync failed must not stay in the
//! log, because the caller will not acknowledge it and will reuse its
//! epoch for the next write, which would otherwise collide with the
//! orphaned record on replay. If the rewind itself fails the writer is
//! *poisoned* and refuses all further appends: the log on disk is still
//! a valid prefix (recovery truncates the orphan as a torn/duplicate
//! suffix), but this process can no longer guarantee ordering.
//!
//! # Failpoints
//!
//! - `wal.append` — fail before writing anything.
//! - `wal.torn` — write half a frame, then rewind; models a torn write
//!   detected at append time.
//! - `wal.fsync` — fail the durability barrier after the write.
//! - `wal.checkpoint` — abort a checkpoint after its data directory is
//!   written but before the manifest and rename (see [`checkpoint`]).

use crate::checkpoint::{self, CheckpointRef};
use crate::record::{Record, MAX_PAYLOAD_BYTES, PAYLOAD_PREFIX_BYTES};
use crate::segment::{segment_file_name, WAL_SUBDIR};
use crate::sync_dir;
use crate::{FsyncPolicy, WalConfig, WalError};
use intensio_rules::rule::RuleSet;
use intensio_storage::catalog::Database;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Counters the writer maintains for `STATS` reporting. All values are
/// process-lifetime (since open), except `segment_seq`/`segment_bytes`
/// which describe the active segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended since open.
    pub appends: u64,
    /// Frame bytes appended since open.
    pub append_bytes: u64,
    /// Explicit durability barriers issued.
    pub fsyncs: u64,
    /// Checkpoints taken since open.
    pub checkpoints: u64,
    /// Sequence number of the active segment.
    pub segment_seq: u64,
    /// Bytes in the active segment.
    pub segment_bytes: u64,
}

/// An open write-ahead log rooted at a data directory.
pub struct Wal {
    root: PathBuf,
    cfg: WalConfig,
    file: File,
    seg_seq: u64,
    seg_bytes: u64,
    /// Highest epoch appended to the active segment (0 when empty).
    seg_max_epoch: u64,
    /// Segments this writer closed and has not yet truncated, as
    /// `(seq, highest epoch)` — what [`Wal::truncate_covered`] consults
    /// to delete only segments a checkpoint fully covers.
    closed: Vec<(u64, u64)>,
    unsynced: u32,
    since_checkpoint: u64,
    stats: WalStats,
    poisoned: Option<String>,
}

fn io_err(what: &str) -> impl Fn(std::io::Error) -> WalError + '_ {
    move |e| WalError(format!("{what}: {e}"))
}

impl Wal {
    /// Open the log for writing, starting a fresh segment after
    /// `last_seq` (the highest segment recovery observed; 0 on a fresh
    /// directory). Starting fresh means the writer never appends after
    /// a tail it did not write itself.
    pub fn open(data_dir: &Path, cfg: WalConfig, last_seq: u64) -> Result<Wal, WalError> {
        let dir = data_dir.join(WAL_SUBDIR);
        std::fs::create_dir_all(&dir).map_err(io_err("creating wal directory"))?;
        let seg_seq = last_seq
            .checked_add(1)
            .ok_or_else(|| WalError("segment sequence exhausted".to_string()))?;
        let path = dir.join(segment_file_name(seg_seq));
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)
            .map_err(io_err("creating wal segment"))?;
        sync_dir(&dir);
        Ok(Wal {
            root: data_dir.to_path_buf(),
            cfg,
            file,
            seg_seq,
            seg_bytes: 0,
            seg_max_epoch: 0,
            closed: Vec::new(),
            unsynced: 0,
            since_checkpoint: 0,
            stats: WalStats {
                segment_seq: seg_seq,
                ..WalStats::default()
            },
            poisoned: None,
        })
    }

    /// The writer's configuration.
    pub fn config(&self) -> &WalConfig {
        &self.cfg
    }

    /// Lifetime counters for STATS.
    pub fn stats(&self) -> WalStats {
        WalStats {
            segment_seq: self.seg_seq,
            segment_bytes: self.seg_bytes,
            ..self.stats
        }
    }

    /// Stream the log's records with epoch strictly greater than
    /// `from_epoch` — the replication feed (see [`crate::read`]). The
    /// returned iterator reads the segment files independently of this
    /// writer, so the caller may release any lock guarding the `Wal`
    /// while draining it; records appended after this call may or may
    /// not be observed.
    pub fn read_from(&self, from_epoch: u64) -> Result<crate::read::LogTail, WalError> {
        crate::read::LogTail::open(&self.root, from_epoch)
    }

    /// Whether enough records have accumulated to warrant a checkpoint.
    pub fn checkpoint_due(&self) -> bool {
        self.cfg.checkpoint_every > 0 && self.since_checkpoint >= self.cfg.checkpoint_every
    }

    fn check_poison(&self) -> Result<(), WalError> {
        match &self.poisoned {
            Some(why) => Err(WalError(format!("wal writer poisoned: {why}"))),
            None => Ok(()),
        }
    }

    /// Rewind the active segment to `offset`, erasing a partial or
    /// unsynced append. Poisons the writer if the rewind fails.
    fn rewind(&mut self, offset: u64, why: &str) -> Result<(), WalError> {
        let undo = self
            .file
            .set_len(offset)
            .and_then(|()| self.file.seek(SeekFrom::Start(offset)));
        if let Err(e) = undo {
            let msg = format!("{why}; rewind to {offset} also failed: {e}");
            self.poisoned = Some(msg.clone());
            return Err(WalError(msg));
        }
        self.seg_bytes = offset;
        Err(WalError(why.to_string()))
    }

    /// Issue the durability barrier demanded by the fsync policy after
    /// one append.
    fn barrier(&mut self) -> Result<(), WalError> {
        let due = match self.cfg.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::Batch(n) => {
                self.unsynced += 1;
                self.unsynced >= n
            }
            FsyncPolicy::Off => false,
        };
        if !due {
            return Ok(());
        }
        intensio_fault::fire("wal.fsync")
            .map_err(|f| WalError(format!("fsync failed (injected): {f}")))?;
        self.file
            .sync_data()
            .map_err(io_err("fsync on wal segment"))?;
        self.unsynced = 0;
        self.stats.fsyncs += 1;
        intensio_obs::inc("wal.fsyncs");
        Ok(())
    }

    /// Append one record and make it as durable as the policy promises.
    /// On `Ok(())` the record is part of the log; on `Err` it is not
    /// (the segment was rewound, or nothing was written), so the caller
    /// must not acknowledge.
    ///
    /// A record whose payload exceeds [`MAX_PAYLOAD_BYTES`] is rejected
    /// here, before anything touches disk: recovery classifies such a
    /// frame as corruption and stops replay, so logging it would
    /// acknowledge a mutation that poisons every later record at the
    /// next boot. The oversized request fails instead.
    pub fn append(&mut self, record: &Record) -> Result<(), WalError> {
        self.check_poison()?;
        let payload = PAYLOAD_PREFIX_BYTES as u64 + record.body.len() as u64;
        if payload > u64::from(MAX_PAYLOAD_BYTES) {
            return Err(WalError(format!(
                "record payload of {payload} bytes exceeds the \
                 {MAX_PAYLOAD_BYTES}-byte maximum"
            )));
        }
        intensio_fault::fire("wal.append")
            .map_err(|f| WalError(format!("append failed (injected): {f}")))?;

        if self.seg_bytes >= self.cfg.segment_bytes {
            self.rotate()?;
        }

        let frame = record.encode();
        let start = self.seg_bytes;

        if let Err(f) = intensio_fault::fire("wal.torn") {
            // Model a torn write: half a frame lands, then the append
            // is rewound so later records stay readable. Recovery of a
            // real crash at this point would classify the half-frame as
            // a torn tail and truncate it, which is exactly what the
            // rewind does eagerly.
            let half = &frame[..frame.len() / 2];
            let _ = self.file.write_all(half).and_then(|()| self.file.flush());
            self.seg_bytes += half.len() as u64;
            return self.rewind(start, &format!("torn write (injected): {f}"));
        }

        if let Err(e) = self.file.write_all(&frame) {
            // A short write may have landed; rewind to the frame start.
            return self.rewind(start, &format!("writing wal record: {e}"));
        }
        self.seg_bytes += frame.len() as u64;

        if let Err(e) = self.barrier() {
            if matches!(self.cfg.fsync, FsyncPolicy::Batch(_)) {
                // Earlier records in the batch were already acknowledged
                // under relaxed durability; only the current record is
                // retracted.
                self.unsynced = self.unsynced.saturating_sub(1);
            }
            return self.rewind(start, &e.0);
        }

        self.since_checkpoint += 1;
        self.seg_max_epoch = self.seg_max_epoch.max(record.epoch);
        self.stats.appends += 1;
        self.stats.append_bytes += frame.len() as u64;
        intensio_obs::inc("wal.appends");
        intensio_obs::add("wal.append_bytes", frame.len() as u64);
        Ok(())
    }

    /// Force an fsync regardless of policy (shutdown, or a caller that
    /// wants a barrier before an external side effect).
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.check_poison()?;
        self.file
            .sync_data()
            .map_err(io_err("fsync on wal segment"))?;
        self.unsynced = 0;
        self.stats.fsyncs += 1;
        intensio_obs::inc("wal.fsyncs");
        Ok(())
    }

    /// Close the active segment and start the next one.
    fn rotate(&mut self) -> Result<(), WalError> {
        if self.unsynced > 0 || matches!(self.cfg.fsync, FsyncPolicy::Always) {
            self.file
                .sync_data()
                .map_err(io_err("fsync before rotation"))?;
            self.unsynced = 0;
        }
        let dir = self.root.join(WAL_SUBDIR);
        let next = self
            .seg_seq
            .checked_add(1)
            .ok_or_else(|| WalError("segment sequence exhausted".to_string()))?;
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(dir.join(segment_file_name(next)))
            .map_err(io_err("creating wal segment"))?;
        sync_dir(&dir);
        self.closed.push((self.seg_seq, self.seg_max_epoch));
        self.file = file;
        self.seg_seq = next;
        self.seg_bytes = 0;
        self.seg_max_epoch = 0;
        Ok(())
    }

    /// Take a checkpoint of `(db, rules)` at `(epoch, data_version)`,
    /// then truncate the log: rotate to a fresh segment, delete every
    /// segment the checkpoint covers, and prune old checkpoints.
    ///
    /// Requires exclusive access: nothing may append between the state
    /// observation and this call, because *every* earlier segment is
    /// deleted — including ones this writer did not create, such as a
    /// previous boot's (that is the point: the boot checkpoint retires
    /// old segments and the torn tails they may carry). The live serve
    /// path must not use this; it materializes the checkpoint off the
    /// write path with [`checkpoint::write_checkpoint`] and then calls
    /// [`Wal::truncate_covered`], which tolerates concurrent appends.
    pub fn checkpoint(
        &mut self,
        db: &Database,
        rules: Option<&RuleSet>,
        epoch: u64,
        data_version: u64,
        term: u64,
    ) -> Result<CheckpointRef, WalError> {
        self.check_poison()?;
        let ckpt = checkpoint::write_checkpoint(&self.root, db, rules, epoch, data_version, term)?;
        // The checkpoint is durable; everything logged before it is now
        // redundant. Start a fresh segment and drop the covered ones.
        self.rotate()?;
        let dir = self.root.join(WAL_SUBDIR);
        if let Ok(segments) = crate::segment::list_segments(&self.root) {
            for (seq, path) in segments {
                if seq < self.seg_seq {
                    let _ = std::fs::remove_file(path);
                }
            }
        }
        sync_dir(&dir);
        self.closed.clear();
        let _ = checkpoint::prune_checkpoints(&self.root, self.cfg.keep_checkpoints);
        self.since_checkpoint = 0;
        self.stats.checkpoints += 1;
        Ok(ckpt)
    }

    /// Truncate the log after an externally materialized checkpoint at
    /// `epoch` (see [`checkpoint::write_checkpoint`]): delete the
    /// closed segments whose records all sit at or below `epoch`, prune
    /// old checkpoints, and reset the checkpoint cadence.
    ///
    /// Unlike [`Wal::checkpoint`], this is safe while appends land
    /// between the checkpoint's state observation and this call: a
    /// segment holding even one record above `epoch` is kept, so
    /// nothing acknowledged after the checkpointed snapshot is ever
    /// deleted. The checkpoint must be durable before this is called —
    /// `write_checkpoint` guarantees that on return.
    pub fn truncate_covered(&mut self, epoch: u64) -> Result<(), WalError> {
        self.check_poison()?;
        if self.seg_bytes > 0 && self.seg_max_epoch <= epoch {
            // The active segment is fully covered too; close it so the
            // sweep below can reclaim it.
            self.rotate()?;
        }
        let dir = self.root.join(WAL_SUBDIR);
        let mut deleted = false;
        self.closed.retain(|&(seq, max_epoch)| {
            if max_epoch <= epoch {
                let _ = std::fs::remove_file(dir.join(segment_file_name(seq)));
                deleted = true;
                false
            } else {
                true
            }
        });
        if deleted {
            sync_dir(&dir);
        }
        let _ = checkpoint::prune_checkpoints(&self.root, self.cfg.keep_checkpoints);
        self.since_checkpoint = 0;
        self.stats.checkpoints += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::RecordKind;
    use crate::recover::recover;
    use crate::segment::list_segments;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("intensio_wal_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg() -> WalConfig {
        WalConfig {
            segment_bytes: 256,
            fsync: FsyncPolicy::Always,
            checkpoint_every: 4,
            keep_checkpoints: 2,
        }
    }

    #[test]
    fn appends_rotate_and_recover() {
        let dir = tmpdir("rotate");
        let mut wal = Wal::open(&dir, cfg(), 0).unwrap();
        for i in 1..=20u64 {
            wal.append(&Record::write(i, i, &format!("append to R (Id = \"{i}\")")))
                .unwrap();
        }
        assert!(list_segments(&dir).unwrap().len() > 1, "rotation happened");
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.records.len(), 20);
        assert_eq!(rec.records.last().unwrap().epoch, 20);
        assert_eq!(rec.stats.replayed_records, 20);
        assert_eq!(rec.stats.discarded_records, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_failpoint_rewinds_and_log_stays_valid() {
        let dir = tmpdir("torn");
        let mut wal = Wal::open(&dir, cfg(), 0).unwrap();
        wal.append(&Record::write(1, 1, "append to R (Id = \"a\")"))
            .unwrap();
        intensio_fault::configure("wal.torn", "error*1").unwrap();
        let err = wal.append(&Record::write(2, 2, "append to R (Id = \"b\")"));
        intensio_fault::remove("wal.torn");
        assert!(err.is_err(), "torn write must not acknowledge");
        // The writer healed itself: the next append lands cleanly and
        // replay sees records 1 and 2 with no gap.
        wal.append(&Record::write(2, 2, "append to R (Id = \"b2\")"))
            .unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.records.len(), 2);
        assert_eq!(rec.records[1].script(), Some("append to R (Id = \"b2\")"));
        assert!(!rec.stats.torn_tail);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_failpoint_retracts_the_record_under_always() {
        let dir = tmpdir("fsync");
        let mut wal = Wal::open(&dir, cfg(), 0).unwrap();
        wal.append(&Record::write(1, 1, "append to R (Id = \"a\")"))
            .unwrap();
        intensio_fault::configure("wal.fsync", "error*1").unwrap();
        let err = wal.append(&Record::write(2, 2, "append to R (Id = \"b\")"));
        intensio_fault::remove("wal.fsync");
        assert!(err.is_err());
        let rec = recover(&dir).unwrap();
        assert_eq!(
            rec.records.len(),
            1,
            "the unacknowledged record must not survive"
        );
        // Epoch 2 can be reused by the retry without colliding.
        wal.append(&Record::write(2, 2, "append to R (Id = \"b\")"))
            .unwrap();
        assert_eq!(recover(&dir).unwrap().records.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_failpoint_fails_cleanly() {
        let dir = tmpdir("appendfp");
        let mut wal = Wal::open(&dir, cfg(), 0).unwrap();
        intensio_fault::configure("wal.append", "error*1").unwrap();
        assert!(wal.append(&Record::write(1, 1, "x")).is_err());
        intensio_fault::remove("wal.append");
        assert!(recover(&dir).unwrap().records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_policy_syncs_every_n() {
        let dir = tmpdir("batch");
        let mut c = cfg();
        c.fsync = FsyncPolicy::Batch(3);
        let mut wal = Wal::open(&dir, c, 0).unwrap();
        for i in 1..=7u64 {
            wal.append(&Record::write(i, i, "x")).unwrap();
        }
        assert_eq!(wal.stats().fsyncs, 2, "two full batches of three");
        wal.sync().unwrap();
        assert_eq!(wal.stats().fsyncs, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_due_counts_appends() {
        let dir = tmpdir("due");
        let mut wal = Wal::open(&dir, cfg(), 0).unwrap();
        for i in 1..=3u64 {
            wal.append(&Record::write(i, i, "x")).unwrap();
            assert!(!wal.checkpoint_due());
        }
        wal.append(&Record::write(4, 4, "x")).unwrap();
        assert!(wal.checkpoint_due());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_record_is_rejected_before_touching_disk() {
        let dir = tmpdir("oversize");
        let mut wal = Wal::open(&dir, cfg(), 0).unwrap();
        let body = vec![0u8; MAX_PAYLOAD_BYTES as usize + 1];
        assert!(
            wal.append(&Record::rules(1, 1, body)).is_err(),
            "a payload recovery would reject as corrupt must fail the append"
        );
        // The log is untouched and still appendable: the next record
        // takes epoch 1 and recovery sees a clean single-record log.
        wal.append(&Record::write(1, 1, "append to R (Id = \"a\")"))
            .unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.records.len(), 1);
        assert_eq!(rec.stats.discarded_records, 0);
        assert!(!rec.stats.corrupt);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_covered_keeps_records_past_the_checkpoint() {
        use intensio_storage::catalog::Database;
        let dir = tmpdir("covered");
        let mut wal = Wal::open(&dir, cfg(), 0).unwrap();
        for i in 1..=12u64 {
            wal.append(&Record::write(i, i, &format!("append to R (Id = \"{i}\")")))
                .unwrap();
        }
        assert!(list_segments(&dir).unwrap().len() > 1, "rotation happened");
        // A checkpoint materialized at epoch 8 while epochs 9..=12 were
        // already on the log — the background-checkpointer shape.
        crate::checkpoint::write_checkpoint(&dir, &Database::new(), None, 8, 8, 0).unwrap();
        wal.truncate_covered(8).unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.stats.checkpoint_epoch, 8);
        assert_eq!(
            rec.records.first().map(|r| r.epoch),
            Some(9),
            "records above the checkpoint epoch must survive truncation"
        );
        assert_eq!(rec.final_epoch(), 12);
        // The writer keeps going normally afterwards.
        wal.append(&Record::write(13, 13, "x")).unwrap();
        assert_eq!(recover(&dir).unwrap().final_epoch(), 13);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_covered_reclaims_a_fully_covered_log() {
        use intensio_storage::catalog::Database;
        let dir = tmpdir("covered_all");
        let mut wal = Wal::open(&dir, cfg(), 0).unwrap();
        for i in 1..=5u64 {
            wal.append(&Record::write(i, i, "x")).unwrap();
        }
        crate::checkpoint::write_checkpoint(&dir, &Database::new(), None, 5, 5, 0).unwrap();
        wal.truncate_covered(5).unwrap();
        let rec = recover(&dir).unwrap();
        assert!(rec.records.is_empty(), "everything was covered");
        assert_eq!(rec.final_epoch(), 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rules_records_flow_through() {
        let dir = tmpdir("rules");
        let mut wal = Wal::open(&dir, cfg(), 0).unwrap();
        wal.append(&Record::rules(1, 0, b"fake body".to_vec()))
            .unwrap();
        let rec = recover(&dir).unwrap();
        assert_eq!(rec.records[0].kind, RecordKind::Rules);
        assert_eq!(rec.records[0].body, b"fake body");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
