//! Checkpoints: a durable, atomic materialization of one knowledge
//! state — the database (via [`intensio_storage::persist`]), the rule
//! relations, and a `MANIFEST` pinning the epoch and data version.
//!
//! A checkpoint is written into a temporary directory and renamed into
//! place, so a crash mid-checkpoint leaves either the previous state or
//! the new one, never a half-written directory that recovery could
//! mistake for valid. The write order is a durability chain: every data
//! file is fsynced, then the `MANIFEST` (written last, fsynced), then
//! the temporary directory itself, then — after the rename — the
//! `checkpoints/` parent. Only once [`write_checkpoint`] returns is the
//! checkpoint guaranteed to survive a power cut, which is what lets the
//! caller delete the log records it replaces. Checkpoint directories
//! are never reused: each write gets a fresh `ckpt-<epoch>-<seq>` name,
//! and recovery picks the newest `(epoch, seq)` whose manifest
//! verifies.

use crate::crc::crc32;
use crate::segment::CHECKPOINT_SUBDIR;
use crate::WalError;
use intensio_rules::encode::{decode as decode_rules, encode as encode_rules, RuleRelations};
use intensio_rules::rule::RuleSet;
use intensio_storage::catalog::Database;
use intensio_storage::persist::{load_database, save_database};
use std::path::{Path, PathBuf};

pub(crate) const MANIFEST: &str = "MANIFEST";
const MANIFEST_HEADER: &str = "intensio-checkpoint v1";

/// A checkpoint directory on disk, identified but not yet loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointRef {
    /// The epoch the checkpoint pins.
    pub epoch: u64,
    /// Write sequence, to order checkpoints at the same epoch (a boot
    /// re-checkpoint after recovery reuses the recovered epoch).
    pub seq: u64,
    /// The checkpoint directory.
    pub path: PathBuf,
}

/// A checkpoint loaded back into memory.
#[derive(Debug, Clone)]
pub struct LoadedCheckpoint {
    /// The epoch the checkpoint pins.
    pub epoch: u64,
    /// The data version at that epoch.
    pub data_version: u64,
    /// The primary term the checkpointed state was committed under
    /// (0 for manifests written before terms existed).
    pub term: u64,
    /// The database.
    pub db: Database,
    /// The rule set, when one was installed at checkpoint time.
    pub rules: Option<RuleSet>,
}

fn dir_name(epoch: u64, seq: u64) -> String {
    format!("ckpt-{epoch:016x}-{seq:04x}")
}

fn parse_dir_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("ckpt-")?;
    let (epoch_hex, seq_hex) = rest.split_once('-')?;
    if epoch_hex.len() != 16 || seq_hex.len() != 4 {
        return None;
    }
    Some((
        u64::from_str_radix(epoch_hex, 16).ok()?,
        u64::from_str_radix(seq_hex, 16).ok()?,
    ))
}

/// Checkpoints under `data_dir/checkpoints`, sorted oldest-first by
/// `(epoch, seq)`. Temporary (`.tmp-*`) and unparseable directories are
/// ignored — a crash mid-checkpoint must not confuse recovery.
pub fn list_checkpoints(data_dir: &Path) -> std::io::Result<Vec<CheckpointRef>> {
    let dir = data_dir.join(CHECKPOINT_SUBDIR);
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        if let Some((epoch, seq)) = name.to_str().and_then(parse_dir_name) {
            out.push(CheckpointRef {
                epoch,
                seq,
                path: entry.path(),
            });
        }
    }
    out.sort_by_key(|c| (c.epoch, c.seq));
    Ok(out)
}

fn manifest_text(epoch: u64, data_version: u64, term: u64, has_rules: bool) -> String {
    let body = format!(
        "{MANIFEST_HEADER}\nepoch {epoch}\ndata_version {data_version}\nterm {term}\nrules {}\n",
        u8::from(has_rules)
    );
    let crc = crc32(body.as_bytes());
    format!("{body}crc {crc}\n")
}

/// `(epoch, data_version, term, has_rules)`.
pub(crate) fn parse_manifest(text: &str) -> Result<(u64, u64, u64, bool), WalError> {
    let bad = |why: &str| WalError(format!("invalid checkpoint manifest: {why}"));
    let (body, crc_line) = text
        .trim_end_matches('\n')
        .rsplit_once('\n')
        .ok_or_else(|| bad("too short"))?;
    let body = format!("{body}\n");
    let crc: u32 = crc_line
        .strip_prefix("crc ")
        .and_then(|v| v.trim().parse().ok())
        .ok_or_else(|| bad("missing crc line"))?;
    if crc32(body.as_bytes()) != crc {
        return Err(bad("checksum mismatch"));
    }
    let mut lines = body.lines();
    if lines.next() != Some(MANIFEST_HEADER) {
        return Err(bad("wrong header"));
    }
    let rest: Vec<&str> = lines.collect();
    let mut at = 0usize;
    let mut field = |key: &str| -> Result<u64, WalError> {
        let v = rest
            .get(at)
            .and_then(|l| l.strip_prefix(key))
            .and_then(|v| v.trim().parse().ok())
            .ok_or_else(|| bad(&format!("missing {key}")))?;
        at += 1;
        Ok(v)
    };
    let epoch = field("epoch ")?;
    let data_version = field("data_version ")?;
    // Manifests written before failover existed have no `term` line;
    // they pin term 0 (the pre-election lineage).
    let term = field("term ").unwrap_or(0);
    let rules = field("rules ")?;
    Ok((epoch, data_version, term, rules != 0))
}

/// Write a checkpoint of `(db, rules)` at `(epoch, data_version)`
/// committed under `term`.
///
/// The `wal.checkpoint` failpoint aborts after the database directory
/// is written but before the manifest and rename — the partial-
/// checkpoint crash shape recovery must ignore.
pub fn write_checkpoint(
    data_dir: &Path,
    db: &Database,
    rules: Option<&RuleSet>,
    epoch: u64,
    data_version: u64,
    term: u64,
) -> Result<CheckpointRef, WalError> {
    let io = |e: std::io::Error| WalError(format!("checkpoint io: {e}"));
    let parent = data_dir.join(CHECKPOINT_SUBDIR);
    std::fs::create_dir_all(&parent).map_err(io)?;
    // On the first checkpoint the `checkpoints/` entry itself must
    // survive a power cut, or everything under it is unreachable.
    crate::sync_dir(data_dir);
    let seq = list_checkpoints(data_dir)
        .map_err(io)?
        .iter()
        .map(|c| c.seq)
        .max()
        .unwrap_or(0)
        + 1;
    let name = dir_name(epoch, seq);
    let tmp = parent.join(format!("{name}.tmp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);

    save_database(db, &tmp.join("db")).map_err(|e| WalError(format!("checkpoint db: {e}")))?;
    intensio_fault::fire("wal.checkpoint")
        .map_err(|f| WalError(format!("checkpoint aborted: {f}")))?;
    if let Some(rules) = rules {
        let rels = encode_rules(rules).map_err(|e| WalError(format!("checkpoint rules: {e}")))?;
        let mut rules_db = Database::new();
        for (_, rel) in rels.named() {
            rules_db
                .create(rel.clone())
                .map_err(|e| WalError(format!("checkpoint rules: {e}")))?;
        }
        save_database(&rules_db, &tmp.join("rules"))
            .map_err(|e| WalError(format!("checkpoint rules: {e}")))?;
    }
    // The manifest is what recovery verifies, and the caller truncates
    // the log the moment this function returns — so the manifest, its
    // directory entry, and the rename below must all reach stable
    // storage here, not whenever the OS flushes. Otherwise a power cut
    // could persist the log truncation but not the checkpoint,
    // destroying acknowledged writes even under fsync=always.
    crate::write_sync(
        &tmp.join(MANIFEST),
        &manifest_text(epoch, data_version, term, rules.is_some()),
    )
    .map_err(io)?;
    crate::sync_dir(&tmp);

    let final_path = parent.join(&name);
    std::fs::rename(&tmp, &final_path).map_err(io)?;
    crate::sync_dir(&parent);
    intensio_obs::inc("wal.checkpoints");
    intensio_obs::gauge("wal.checkpoint_epoch", epoch as i64);
    Ok(CheckpointRef {
        epoch,
        seq,
        path: final_path,
    })
}

/// Load a checkpoint back: manifest, database, rule relations.
pub fn load_checkpoint(ckpt: &CheckpointRef) -> Result<LoadedCheckpoint, WalError> {
    let io = |e: std::io::Error| WalError(format!("checkpoint io: {e}"));
    let manifest = std::fs::read_to_string(ckpt.path.join(MANIFEST)).map_err(io)?;
    let (epoch, data_version, term, has_rules) = parse_manifest(&manifest)?;
    if epoch != ckpt.epoch {
        return Err(WalError(format!(
            "checkpoint directory {} claims epoch {epoch} in its manifest",
            ckpt.path.display()
        )));
    }
    let db = load_database(&ckpt.path.join("db"))
        .map_err(|e| WalError(format!("loading checkpoint db: {e}")))?;
    let rules = if has_rules {
        let rules_db = load_database(&ckpt.path.join("rules"))
            .map_err(|e| WalError(format!("loading checkpoint rules: {e}")))?;
        let mut rels = RuleRelations::empty();
        rels.rules = take_relation(&rules_db, "RULES")?;
        rels.value_map = take_relation(&rules_db, "ATTRVALUEMAP")?;
        rels.attr_catalog = take_relation(&rules_db, "ATTRCATALOG")?;
        rels.meta = take_relation(&rules_db, "RULEMETA")?;
        Some(decode_rules(&rels).map_err(|e| WalError(format!("decoding checkpoint rules: {e}")))?)
    } else {
        None
    };
    Ok(LoadedCheckpoint {
        epoch,
        data_version,
        term,
        db,
        rules,
    })
}

fn take_relation(db: &Database, name: &str) -> Result<intensio_storage::Relation, WalError> {
    db.get(name)
        .cloned()
        .map_err(|_| WalError(format!("checkpoint rules missing relation {name}")))
}

/// Delete all but the newest `keep` checkpoints. Best-effort: a
/// checkpoint that will not delete is skipped, not fatal.
pub fn prune_checkpoints(data_dir: &Path, keep: usize) -> std::io::Result<()> {
    let mut all = list_checkpoints(data_dir)?;
    let n = all.len().saturating_sub(keep.max(1));
    for ckpt in all.drain(..n) {
        let _ = std::fs::remove_dir_all(&ckpt.path);
    }
    // Also sweep stale temporaries from crashed checkpoints.
    let parent = data_dir.join(CHECKPOINT_SUBDIR);
    if let Ok(entries) = std::fs::read_dir(&parent) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name.contains(".tmp-") {
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_storage::prelude::*;
    use intensio_storage::tuple;

    fn sample_db() -> Database {
        let schema = Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut ships = Relation::new("SHIPS", schema);
        ships.insert(tuple!["SSBN730", 16600]).unwrap();
        let mut db = Database::new();
        db.create(ships).unwrap();
        db
    }

    fn sample_rules() -> RuleSet {
        use intensio_rules::rule::{AttrId, Clause, Rule};
        RuleSet::from_rules([Rule::new(
            1,
            vec![Clause::between(
                AttrId::new("SHIPS", "Displacement"),
                7250,
                30000,
            )],
            Clause::equals(AttrId::new("SHIPS", "Type"), "SSBN"),
        )
        .with_support(3)])
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("intensio_ckpt_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn write_load_round_trip() {
        let dir = tmpdir("roundtrip");
        let rules = sample_rules();
        let r = write_checkpoint(&dir, &sample_db(), Some(&rules), 5, 3, 2).unwrap();
        assert_eq!((r.epoch, r.seq), (5, 1));
        let loaded = load_checkpoint(&r).unwrap();
        assert_eq!(loaded.epoch, 5);
        assert_eq!(loaded.data_version, 3);
        assert_eq!(loaded.term, 2);
        assert_eq!(loaded.db.get("SHIPS").unwrap().len(), 1);
        let back = loaded.rules.unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back.get(1).unwrap().support, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newest_checkpoint_wins_and_same_epoch_reuses() {
        let dir = tmpdir("newest");
        write_checkpoint(&dir, &sample_db(), None, 2, 1, 0).unwrap();
        write_checkpoint(&dir, &sample_db(), None, 7, 4, 0).unwrap();
        write_checkpoint(&dir, &sample_db(), None, 7, 4, 0).unwrap();
        let list = list_checkpoints(&dir).unwrap();
        assert_eq!(list.len(), 3);
        let newest = list.last().unwrap();
        assert_eq!((newest.epoch, newest.seq), (7, 3), "seq breaks the tie");
        prune_checkpoints(&dir, 2).unwrap();
        assert_eq!(list_checkpoints(&dir).unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_rejected() {
        let dir = tmpdir("corrupt");
        let r = write_checkpoint(&dir, &sample_db(), None, 3, 3, 0).unwrap();
        let path = r.path.join(MANIFEST);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = text.replace("epoch 3", "epoch 4");
        std::fs::write(&path, text).unwrap();
        assert!(load_checkpoint(&r).is_err(), "tampered manifest must fail");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_without_term_line_pins_term_zero() {
        // A manifest written before failover existed: no `term` line.
        let body = format!("{MANIFEST_HEADER}\nepoch 9\ndata_version 4\nrules 0\n");
        let crc = crc32(body.as_bytes());
        let (epoch, dv, term, rules) = parse_manifest(&format!("{body}crc {crc}\n")).unwrap();
        assert_eq!((epoch, dv, term, rules), (9, 4, 0, false));
    }

    #[test]
    fn partial_checkpoint_failpoint_leaves_no_valid_checkpoint() {
        let dir = tmpdir("partial");
        intensio_fault::configure("wal.checkpoint", "error*1").unwrap();
        let err = write_checkpoint(&dir, &sample_db(), None, 1, 1, 0);
        intensio_fault::remove("wal.checkpoint");
        assert!(err.is_err());
        assert!(
            list_checkpoints(&dir).unwrap().is_empty(),
            "aborted checkpoint must not be listed"
        );
        // The torn temporary is swept by the next prune.
        prune_checkpoints(&dir, 2).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir.join(CHECKPOINT_SUBDIR))
            .unwrap()
            .collect();
        assert!(leftovers.is_empty(), "tmp dir swept");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
