//! The concurrent intensional query service.
//!
//! A [`Service`] owns one epoch-versioned [`Snapshot`] behind a
//! read/write lock, a worker pool draining a request queue, an LRU
//! [`AnswerCache`], and a background induction thread. The
//! concurrency story:
//!
//! * **Readers never block on writers or on induction.** A query pins
//!   the current `Arc<Snapshot>` under a briefly held read lock and
//!   computes against that immutable state.
//! * **Writers are serialized** by a dedicated mutation lock. A write
//!   clones the database (copy-on-write — only touched relations are
//!   deep-copied), applies the whole QUEL script to the clone, and
//!   installs the result as a new snapshot; a failing script installs
//!   nothing. The induced rules carry over, flagged stale
//!   (`rules_fresh = false`), and the background inducer is woken.
//! * **Induction runs off the request path** on its own thread, using
//!   the parallel ILS driver. It learns from a pinned snapshot and
//!   installs the new rule set only if the data version is unchanged —
//!   otherwise it simply goes around again.
//!
//! The fault-tolerance story layers on top:
//!
//! * **Admission control.** The request queue is bounded
//!   ([`ServiceConfig::queue_capacity`]); past the bound, [`Service::submit`]
//!   sheds the request immediately with [`Reply::Busy`] instead of letting
//!   latency collapse for everyone.
//! * **Deadlines degrade, never lie.** A request past its deadline (or whose
//!   inference fails) skips fresh inference and falls down a ladder:
//!   stale-epoch cached answer, then extensional-only answer — always with
//!   `degraded = true` on the reply. The extensional rows are always
//!   computed against the pinned snapshot, so degraded answers are correct
//!   answers with weaker (or absent) intensional characterizations.
//! * **Workers are expendable.** Each request runs under `catch_unwind`;
//!   a panic becomes an error reply. If a worker thread dies anyway, a
//!   supervisor thread restarts it (`worker_restarts` in stats).
//! * **Induction self-heals.** A failed background re-induction retries
//!   with capped exponential backoff plus jitter (`induction_retries`),
//!   so a transient fault cannot strand the service at
//!   `rules_fresh = false` forever.
//! * **Checkpoints run off the request path.** In durable mode a write
//!   only appends its WAL record; when the checkpoint cadence comes
//!   due, a background checkpointer materializes the pinned snapshot
//!   through `storage::persist` without holding the write lock or the
//!   WAL lock, then briefly takes the WAL lock to delete only the log
//!   segments the checkpoint fully covers. Writers and `STATS` never
//!   stall behind full-state serialization.
//!
//! Failpoints from [`intensio_fault`] (`serve.cache`, `serve.install`,
//! `serve.worker`, plus the storage/induction/inference points) exercise
//! all of these paths; see the chaos integration test.

use crate::cache::AnswerCache;
use crate::snapshot::Snapshot;
use intensio_check::{check_rules, Report, RuleCheckConfig};
use intensio_core::DataDictionary;
use intensio_induction::{Ils, InductionConfig};
use intensio_inference::{
    condition_fingerprint, InferenceConfig, InferenceEngine, IntensionalAnswer,
};
use intensio_ker::model::KerModel;
use intensio_quel::{AccessKind, Output, Session};
use intensio_repl::{snapshot as repl_codec, ReplHub, StreamMsg};
use intensio_sql::{analyze, parse};
use intensio_storage::catalog::Database;
use intensio_storage::relation::Relation;
use intensio_wal::checkpoint::write_checkpoint;
use intensio_wal::record::{Record, RecordKind};
use intensio_wal::{rules_codec, Wal, WalConfig};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

/// Tuning knobs for [`Service::with_config`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Maximum cached intensional answers.
    pub cache_capacity: usize,
    /// ILS configuration for (re-)induction.
    pub induction: InductionConfig,
    /// Threads for the parallel ILS driver.
    pub induction_threads: usize,
    /// Inference configuration for every query.
    pub inference: InferenceConfig,
    /// Induce rules synchronously before serving the first request.
    pub learn_on_open: bool,
    /// Maximum requests waiting in the queue before [`Service::submit`]
    /// sheds new arrivals with [`Reply::Busy`]. `0` disables shedding.
    pub queue_capacity: usize,
    /// Per-request time budget, measured from submission. A request
    /// over budget degrades its intensional side (stale cache, then
    /// extensional-only) instead of running fresh inference. `None`
    /// disables deadlines.
    pub deadline: Option<std::time::Duration>,
    /// How many epochs of superseded cached answers to keep around for
    /// degraded (stale) serving.
    pub stale_epochs: u64,
    /// Base delay for retrying a failed background re-induction.
    pub induction_backoff: std::time::Duration,
    /// Upper bound on the re-induction retry delay.
    pub induction_backoff_cap: std::time::Duration,
    /// Run [`intensio_check::check_rules`] over every induced rule set
    /// before installing it, and refuse installs with Error-level
    /// findings (counted in `rulesets_rejected`). The gate also backs
    /// the `CHECK` protocol verb's ability to retroactively reject the
    /// live rule set's cached answers.
    pub check_rulesets: bool,
    /// Root directory for durable state. When set, the service recovers
    /// its knowledge state from the directory's checkpoints and
    /// write-ahead log at boot, and acknowledges a mutation only after
    /// its WAL record is appended under [`ServiceConfig::wal`]'s fsync
    /// policy. `None` keeps the service purely in-memory.
    pub data_dir: Option<PathBuf>,
    /// WAL tuning (fsync policy, segment size, checkpoint cadence);
    /// only consulted when [`ServiceConfig::data_dir`] is set.
    pub wal: WalConfig,
    /// Primary address(es) (`HOST:PORT[,HOST:PORT...]`) to replicate
    /// from, tried in order. When set, this node boots as a read-only
    /// **follower**: it bootstraps over the wire (log tail or full
    /// snapshot), tails the primary's committed records, and re-gates
    /// every shipped rule set through the same static-analysis check a
    /// local install would pass. Mutating requests are refused with a
    /// `READONLY` error, and the node never runs its own induction —
    /// shipping the *induced* rules is what keeps intensional answers
    /// identical cluster-wide.
    pub replicate_from: Option<String>,
    /// Boot as a failover **candidate**: a follower that monitors the
    /// replication stream's heartbeats and, on loss past
    /// [`ServiceConfig::failover_timeout`] (plus seeded jitter),
    /// promotes itself to primary — bumping the term, fsyncing a
    /// `TERM` record, and fencing the deposed primary's lineage.
    pub candidate: bool,
    /// Heartbeat-loss budget before a candidate starts promotion. The
    /// effective deadline is `timeout/2 + jitter`, with jitter drawn
    /// seeded from `[timeout/2, timeout)` — i.e. in
    /// `[timeout, 1.5*timeout)` — so dueling candidates with equal
    /// timeouts break the tie deterministically by seed.
    pub failover_timeout: std::time::Duration,
    /// Seed for the promotion jitter (and reconnect backoff). Give each
    /// candidate a distinct seed; 0 is a valid seed.
    pub failover_seed: u64,
    /// Cadence of `#repl heartbeat` frames on idle primary streams, and
    /// the follower's staleness baseline.
    pub repl_heartbeat: std::time::Duration,
    /// This node's name on the cluster network (`--net-name`): the
    /// local label every [`intensio_net`] connection carries, announced
    /// to the primary in the `REPLICATE ... node=<label>` handshake.
    /// Link-fault specs (`net.partition=a<->b`) address nodes by this
    /// label; empty means unlabeled (specs can still match by raw
    /// address, or `*`).
    pub net_label: String,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServiceConfig {
            workers: cores.clamp(2, 8),
            cache_capacity: 256,
            induction: InductionConfig::default(),
            induction_threads: cores.clamp(1, 4),
            inference: InferenceConfig::default(),
            learn_on_open: true,
            queue_capacity: 1024,
            deadline: None,
            stale_epochs: 2,
            induction_backoff: std::time::Duration::from_millis(50),
            induction_backoff_cap: std::time::Duration::from_secs(2),
            check_rulesets: true,
            data_dir: None,
            wal: WalConfig::default(),
            replicate_from: None,
            candidate: false,
            failover_timeout: std::time::Duration::from_millis(1000),
            failover_seed: 0,
            repl_heartbeat: std::time::Duration::from_millis(500),
            net_label: String::new(),
        }
    }
}

/// The named timeout set for every short cluster-I/O wait in this
/// module — each bound used to be an ad-hoc literal at its call site.
mod timeouts {
    use std::time::Duration;

    /// Read tick on a follower's replication stream: how often a
    /// blocked stream read wakes to check the failover clock, shutdown,
    /// and half-open staleness.
    pub const STREAM_READ_TICK: Duration = Duration::from_millis(200);
    /// Connect bound for one `TELEMETRY` poll of a peer (an unreachable
    /// peer costs the poll loop this much, never a query worker).
    pub const PEER_CONNECT: Duration = Duration::from_millis(250);
    /// Reply bound for one `TELEMETRY` poll round trip.
    pub const PEER_REPLY: Duration = Duration::from_millis(500);
    /// Connect bound for a follower's replication stream attempt.
    pub const REPL_CONNECT: Duration = Duration::from_millis(500);
    /// Tick for condvar waits on the background inducer/checkpointer
    /// loops (how often they re-check shutdown without a wake).
    pub const BACKGROUND_WAIT_TICK: Duration = Duration::from_millis(200);
}

/// A replication stream with no frame (not even a heartbeat) for this
/// many heartbeat intervals is treated as half-open: the follower drops
/// it and redials rather than blocking on a silently dead link.
const HALF_OPEN_HEARTBEATS: u32 = 3;

/// Replication roles, stored in [`Shared::role`] as a `usize` so role
/// transitions (promotion, demotion) are a single atomic store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Accepts writes, runs induction, serves `REPLICATE` streams.
    Primary,
    /// Read-only; tails a primary's stream.
    Follower,
    /// A follower that promotes itself on heartbeat loss.
    Candidate,
}

impl Role {
    fn from_usize(v: usize) -> Role {
        match v {
            0 => Role::Primary,
            2 => Role::Candidate,
            _ => Role::Follower,
        }
    }

    fn as_usize(self) -> usize {
        match self {
            Role::Primary => 0,
            Role::Follower => 1,
            Role::Candidate => 2,
        }
    }

    /// Wire name, as reported by `STATS` and `TELEMETRY`.
    pub fn as_str(self) -> &'static str {
        match self {
            Role::Primary => "primary",
            Role::Follower => "follower",
            Role::Candidate => "candidate",
        }
    }
}

/// A request to the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// A SQL query: extensional + intensional answer.
    Sql(String),
    /// A QUEL script (possibly multi-statement). Scripts with any
    /// mutating statement go through the serialized write path.
    Quel(String),
    /// Service statistics.
    Stats,
    /// Answer provenance for a SQL query: which rules fired, with what
    /// support, in which direction — without the extensional rows.
    Explain(String),
    /// Failpoint administration: `LIST`, `SET name=spec[;...]`, `CLEAR`.
    Fault(String),
    /// Static analysis. An empty argument lints the live rule set
    /// (rejecting its cached answers on Error-level findings); a
    /// non-empty argument is a SQL query (or `QUEL <script>`) to lint
    /// against the live catalog and rules without executing it.
    Check(String),
    /// Profile a SQL query: execute it like [`Request::Sql`] would,
    /// but answer with an EXPLAIN-ANALYZE-style timing tree (parse →
    /// cache → inference → scan, with per-rule attempts) instead of
    /// the rows.
    Profile(String),
    /// This node's own telemetry sample: role, epoch, lag, apply and
    /// shed counters, and tail latencies. Polled by the primary's
    /// cluster-telemetry loop.
    Telemetry,
}

impl Request {
    /// The request's wire verb, for span labels and counters.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Sql(_) => "sql",
            Request::Quel(_) => "quel",
            Request::Stats => "stats",
            Request::Explain(_) => "explain",
            Request::Fault(_) => "fault",
            Request::Check(_) => "check",
            Request::Profile(_) => "profile",
            Request::Telemetry => "telemetry",
        }
    }
}

/// Which soundness guarantee the intensional part of an answer carries
/// (paper §4): forward conclusions contain the answer set, backward
/// characterizations are contained in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Soundness {
    /// Forward conclusions only: characterization ⊇ answer set.
    Superset,
    /// Backward characterizations only: characterization ⊆ answer set.
    Subset,
    /// Both kinds present.
    Mixed,
    /// No intensional characterization was derived.
    None,
}

impl Soundness {
    /// Classify an intensional answer.
    pub fn of(a: &IntensionalAnswer) -> Soundness {
        match (a.certain.is_empty(), a.partial.is_empty()) {
            (false, true) => Soundness::Superset,
            (true, false) => Soundness::Subset,
            (false, false) => Soundness::Mixed,
            (true, true) => Soundness::None,
        }
    }

    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Soundness::Superset => "superset",
            Soundness::Subset => "subset",
            Soundness::Mixed => "mixed",
            Soundness::None => "none",
        }
    }
}

/// A successful query answer plus serving metadata.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Whether the intensional part came from the cache.
    pub cached: bool,
    /// Whether the snapshot's rules matched its data version.
    pub rules_fresh: bool,
    /// Whether the intensional side was degraded (stale-epoch cache hit
    /// or dropped entirely) because the deadline expired or inference
    /// failed. The extensional rows are never degraded.
    pub degraded: bool,
    /// Soundness class of the intensional part.
    pub soundness: Soundness,
    /// Output column names (empty for pure mutations).
    pub columns: Vec<String>,
    /// Extensional rows, values rendered bare.
    pub rows: Vec<Vec<String>>,
    /// The intensional answer (shared with the cache).
    pub intensional: Arc<IntensionalAnswer>,
    /// One-sentence intensional summary, if derivable.
    pub headline: Option<String>,
    /// Aggregate response over the type hierarchy, if any.
    pub summary: Option<String>,
    /// Tuples affected, for mutating QUEL scripts.
    pub affected: Option<usize>,
}

/// The provenance behind one query's intensional answer.
#[derive(Debug, Clone)]
pub struct ExplainReply {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Whether the intensional part came from the cache.
    pub cached: bool,
    /// Whether the snapshot's rules matched its data version.
    pub rules_fresh: bool,
    /// Whether the answer was degraded (stale-epoch cache hit or empty)
    /// because the deadline expired or inference failed.
    pub degraded: bool,
    /// Soundness class of the intensional part.
    pub soundness: Soundness,
    /// The intensional answer; `intensional.provenance` lists every
    /// rule application (id, support, direction, conclusion) and
    /// `intensional.steps` the full inference trace.
    pub intensional: Arc<IntensionalAnswer>,
    /// One-sentence intensional summary, if derivable.
    pub headline: Option<String>,
}

/// The outcome of one `CHECK` request.
#[derive(Debug, Clone)]
pub struct CheckReply {
    /// Epoch of the snapshot that was analyzed.
    pub epoch: u64,
    /// Whether the snapshot's rules matched its data version.
    pub rules_fresh: bool,
    /// Whether this check rejected the live rule set: Error-level
    /// findings against the installed rules purge their epochs from the
    /// answer cache and bump `rulesets_rejected`.
    pub rejected: bool,
    /// The diagnostics, sorted most severe first.
    pub report: Report,
}

/// A point-in-time view of service counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReply {
    /// Current knowledge epoch.
    pub epoch: u64,
    /// Current data version.
    pub data_version: u64,
    /// Whether current rules match the current data.
    pub rules_fresh: bool,
    /// Queries answered (SQL + read-only QUEL).
    pub queries: u64,
    /// Intensional cache hits.
    pub cache_hits: u64,
    /// Intensional cache misses.
    pub cache_misses: u64,
    /// Cached answers right now.
    pub cache_len: u64,
    /// Maximum cached answers (the LRU capacity).
    pub cache_capacity: u64,
    /// Mutating scripts applied.
    pub writes: u64,
    /// Background rule-set installs completed.
    pub inductions: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Requests shed with [`Reply::Busy`] because the queue was full.
    pub requests_shed: u64,
    /// Worker threads restarted by the supervisor after dying.
    pub worker_restarts: u64,
    /// Background re-inductions retried after a failure.
    pub induction_retries: u64,
    /// Induced rule sets the static-analysis gate refused to install
    /// (plus live rule sets rejected by a `CHECK` request).
    pub rulesets_rejected: u64,
    /// Directly-subsumed rules dropped by the install-time prune (a
    /// narrower premise under a wider rule with the same conclusion
    /// adds nothing the inference engine can use).
    pub rules_pruned: u64,
    /// Replies served with a degraded intensional side.
    pub degraded_answers: u64,
    /// Worker threads.
    pub workers: u64,
    /// Durability counters; `None` when the service runs in-memory.
    pub durability: Option<DurabilityStats>,
    /// This node's replication role: `"primary"`, `"follower"`, or
    /// `"candidate"`.
    pub role: String,
    /// The primary term this node's knowledge state was committed
    /// under. Bumped by failover promotions; fences deposed lineages.
    pub term: u64,
    /// Follower-side replication counters; `None` on a primary.
    pub repl: Option<ReplStats>,
    /// Full metrics snapshot: pipeline-stage latency histograms
    /// (p50/p95/p99) and every named counter/gauge.
    pub metrics: intensio_obs::MetricsSnapshot,
    /// The latest cluster-wide telemetry sample, one entry per peer
    /// configured with [`Service::set_peers`] (empty otherwise).
    pub cluster: Vec<PeerTelemetry>,
}

/// One node of a `PROFILE` timing tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// The span name (e.g. `inference.infer`) or a synthetic label
    /// (the `request` root, per-rule `rule R<n>` attempts).
    pub name: String,
    /// Wall-clock duration in microseconds (0 for synthetic nodes).
    pub duration_us: u64,
    /// Key/value annotations captured while the span was open.
    pub fields: Vec<(String, String)>,
    /// Child stages, in completion order.
    pub children: Vec<ProfileNode>,
}

/// The timing tree a `PROFILE <query>` request answers with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReply {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Whether the intensional part came from the cache.
    pub cached: bool,
    /// Whether the snapshot's rules matched its data version.
    pub rules_fresh: bool,
    /// Whether the intensional side was degraded.
    pub degraded: bool,
    /// Extensional rows the query produced (the rows themselves are
    /// not returned; `SQL` does that).
    pub rows: u64,
    /// End-to-end execution time in microseconds.
    pub total_us: u64,
    /// The timing tree, rooted at a synthetic `request` node.
    pub tree: Vec<ProfileNode>,
}

/// One node's self-reported telemetry sample (the `TELEMETRY` verb).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryReply {
    /// `"primary"`, `"follower"`, or `"candidate"`.
    pub role: String,
    /// Current knowledge epoch.
    pub epoch: u64,
    /// The primary term of this node's knowledge state. Pollers compare
    /// it against their own: a primary that sees a peer at a higher
    /// term has been deposed and demotes itself.
    pub term: u64,
    /// Whether current rules match the current data.
    pub rules_fresh: bool,
    /// Whether the replication stream is established (always true on a
    /// primary).
    pub connected: bool,
    /// Epochs this node trails its primary (0 on a primary).
    pub lag_epochs: u64,
    /// Shipped records applied since boot (0 on a primary).
    pub records_applied: u64,
    /// Replication stream reconnects since boot (0 on a primary).
    pub reconnects: u64,
    /// Queries answered since boot.
    pub queries: u64,
    /// Replies served with a degraded intensional side.
    pub degraded_answers: u64,
    /// Requests shed at admission.
    pub requests_shed: u64,
    /// Worker threads restarted by the supervisor.
    pub worker_restarts: u64,
    /// p99 of the replication-apply stage, in microseconds.
    pub repl_apply_p99_us: u64,
    /// p99 of the WAL-append stage, in microseconds.
    pub wal_append_p99_us: u64,
}

/// One peer's telemetry as sampled by the cluster poller, merged into
/// the primary's `STATS`/Prometheus view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerTelemetry {
    /// The peer's address as configured with [`Service::set_peers`].
    pub addr: String,
    /// Whether the last poll round-trip succeeded; the remaining
    /// fields are the last good sample (zeros if never reached).
    pub ok: bool,
    /// The peer's replication role.
    pub role: String,
    /// The peer's knowledge epoch.
    pub epoch: u64,
    /// The peer's primary term.
    pub term: u64,
    /// Epochs the peer trails its primary.
    pub lag_epochs: u64,
    /// Shipped records the peer has applied since boot.
    pub records_applied: u64,
    /// Records applied per second, from successive poll deltas.
    pub apply_rate: u64,
    /// The peer's replication reconnects since boot.
    pub reconnects: u64,
    /// The peer's degraded answers since boot.
    pub degraded_answers: u64,
    /// Requests the peer shed at admission since boot.
    pub requests_shed: u64,
    /// Worker restarts on the peer since boot.
    pub worker_restarts: u64,
}

/// Follower-side replication counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplStats {
    /// The primary address this follower tails.
    pub primary: String,
    /// Whether the replication stream is currently established.
    pub connected: bool,
    /// Highest committed epoch the primary has reported (records and
    /// heartbeats both carry it).
    pub primary_epoch: u64,
    /// How many epochs this follower trails the primary.
    pub lag_epochs: u64,
    /// Shipped records applied since boot.
    pub records_applied: u64,
    /// Stream reconnects since boot (lost or unreachable primary).
    pub reconnects: u64,
    /// Streams this follower dropped as half-open: the socket stayed
    /// readable but no frame arrived for 3× the heartbeat cadence
    /// (each drop also counts as a reconnect).
    pub half_open_drops: u64,
    /// Milliseconds since the last frame arrived on the replication
    /// stream; `None` when no frame has ever arrived.
    pub heartbeat_age_ms: Option<u64>,
    /// Streams and snapshots this node rejected because they carried a
    /// term below its own (a deposed primary's lineage).
    pub stale_term_rejections: u64,
}

/// Durable-mode counters: the WAL's lifetime stats plus what boot
/// recovery observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityStats {
    /// The fsync policy in force (`always`, `batch:N`, `off`).
    pub fsync: String,
    /// WAL records appended since boot.
    pub wal_appends: u64,
    /// WAL frame bytes appended since boot.
    pub wal_append_bytes: u64,
    /// Explicit fsync barriers issued since boot.
    pub wal_fsyncs: u64,
    /// Checkpoints written since boot (the boot checkpoint included).
    pub wal_checkpoints: u64,
    /// Sequence number of the active WAL segment.
    pub wal_segment_seq: u64,
    /// Epoch the service recovered to at boot (0 on a fresh directory).
    pub recovered_epoch: u64,
    /// WAL records replayed during boot recovery.
    pub replayed_records: u64,
    /// Records discarded during boot recovery (torn tail, bad CRC, or
    /// an epoch gap).
    pub discarded_records: u64,
    /// Wall-clock milliseconds boot recovery took.
    pub recovery_ms: u64,
}

/// What the service hands back for one request.
#[derive(Debug, Clone)]
pub enum Reply {
    /// A query (or mutation) completed.
    Query(QueryReply),
    /// Statistics.
    Stats(Box<StatsReply>),
    /// Answer provenance.
    Explain(ExplainReply),
    /// Static-analysis results.
    Check(CheckReply),
    /// A `PROFILE` timing tree.
    Profile(Box<ProfileReply>),
    /// One node's telemetry sample.
    Telemetry(Box<TelemetryReply>),
    /// The request was shed at admission: the queue is full. The client
    /// should back off and retry; nothing was executed.
    Busy,
    /// Failpoint administration succeeded; the armed failpoints after
    /// the operation.
    Fault {
        /// Every armed failpoint with its hit/trigger counts.
        failpoints: Vec<intensio_fault::FailpointStatus>,
    },
    /// The request failed; the service itself is unaffected.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Reply {
    /// The query payload, if this is a query reply.
    pub fn query(&self) -> Option<&QueryReply> {
        match self {
            Reply::Query(q) => Some(q),
            _ => None,
        }
    }

    /// The explain payload, if this is an explain reply.
    pub fn explain(&self) -> Option<&ExplainReply> {
        match self {
            Reply::Explain(e) => Some(e),
            _ => None,
        }
    }

    /// The check payload, if this is a check reply.
    pub fn check(&self) -> Option<&CheckReply> {
        match self {
            Reply::Check(c) => Some(c),
            _ => None,
        }
    }

    /// The profile payload, if this is a profile reply.
    pub fn profile(&self) -> Option<&ProfileReply> {
        match self {
            Reply::Profile(p) => Some(p),
            _ => None,
        }
    }

    /// The telemetry payload, if this is a telemetry reply.
    pub fn telemetry(&self) -> Option<&TelemetryReply> {
        match self {
            Reply::Telemetry(t) => Some(t),
            _ => None,
        }
    }

    /// The error message, if this is an error reply.
    pub fn error(&self) -> Option<&str> {
        match self {
            Reply::Error { message } => Some(message),
            _ => None,
        }
    }
}

/// Service construction failure (initial induction).
#[derive(Debug)]
pub struct ServeError(pub String);

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serve: {}", self.0)
    }
}

impl std::error::Error for ServeError {}

#[derive(Default)]
struct Counters {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    writes: AtomicU64,
    inductions: AtomicU64,
    errors: AtomicU64,
    shed: AtomicU64,
    worker_restarts: AtomicU64,
    induction_retries: AtomicU64,
    rulesets_rejected: AtomicU64,
    rules_pruned: AtomicU64,
    degraded: AtomicU64,
}

/// Wake-up state for a condvar-driven background thread (the inducer
/// and the checkpointer each own one).
#[derive(Default)]
struct WakeFlags {
    dirty: bool,
    shutdown: bool,
}

struct Shared {
    state: RwLock<Arc<Snapshot>>,
    /// Serializes the write path (QUEL mutations and rule installs), so
    /// epoch successors are computed from the snapshot they replace.
    write_lock: Mutex<()>,
    cache: Mutex<AnswerCache>,
    cfg: ServiceConfig,
    counters: Counters,
    induce: Mutex<WakeFlags>,
    induce_wake: Condvar,
    /// Signals the background checkpointer (durable mode only).
    ckpt: Mutex<WakeFlags>,
    ckpt_wake: Condvar,
    /// Jobs accepted but not yet picked up by a worker; the admission
    /// gauge for load shedding.
    queue_depth: AtomicUsize,
    /// Set by [`Service`]'s drop before the queue closes, so the
    /// supervisor stops resurrecting workers that exited on purpose.
    shutdown: AtomicBool,
    /// Durable mode: the WAL writer plus what boot recovery observed.
    /// The `Wal` mutex nests *inside* `write_lock` on the write path;
    /// readers (stats) and the background checkpointer take it alone,
    /// never `write_lock`, so the order is acyclic.
    durability: Option<Durability>,
    /// Primary-side replication fan-out: the write path publishes every
    /// committed record here (after install, still under `write_lock`,
    /// so streams observe strict epoch order).
    repl_hub: ReplHub,
    /// This node's replication role (see [`Role`]); transitions are a
    /// single atomic store (promotion, demotion).
    role: AtomicUsize,
    /// Mirror of the installed snapshot's term, kept current by
    /// [`Shared::install`] and raised eagerly when a higher term is
    /// observed on the wire. Monotonic.
    term: AtomicU64,
    /// Replication state: always present so a deposed primary can
    /// demote into a follower and tail its successor.
    repl: ReplState,
    /// Peer addresses the cluster-telemetry poller samples
    /// ([`Service::set_peers`]); empty until configured.
    peers: RwLock<Vec<String>>,
    /// The latest cluster-wide telemetry sample, merged into `STATS`.
    cluster: Mutex<Vec<PeerTelemetry>>,
}

/// Replication state, updated by the replicator thread and read by
/// `STATS`. Present on every node: a primary's copy idles until a
/// demotion turns the node into a follower.
struct ReplState {
    /// Upstream addresses to try, in rotation. Seeded from
    /// [`ServiceConfig::replicate_from`]; a demotion discovered through
    /// the telemetry poller prepends the new primary here.
    targets: Mutex<Vec<String>>,
    /// Index of the target the replicator tries next.
    target_idx: AtomicUsize,
    /// The address of the stream's current (or last) upstream, for
    /// `STATS` and `REDIRECT`s. Empty when never connected.
    primary: Mutex<String>,
    /// Highest committed epoch the primary has reported.
    primary_epoch: AtomicU64,
    /// Shipped records applied since boot.
    records_applied: AtomicU64,
    /// Stream reconnects since boot.
    reconnects: AtomicU64,
    /// Half-open streams dropped: the read side stayed quiet past 3×
    /// the heartbeat cadence while the socket itself reported nothing.
    half_open_drops: AtomicU64,
    /// Whether the stream is currently established.
    connected: AtomicBool,
    /// When the last stream frame arrived (any frame counts as a
    /// heartbeat); `None` until the first frame.
    last_heartbeat: Mutex<Option<std::time::Instant>>,
    /// Streams/snapshots rejected for carrying a stale term.
    stale_term_rejections: AtomicU64,
    /// Next stream attempt must re-bootstrap from epoch 0: the local
    /// suffix was orphaned by a higher term and only a full snapshot
    /// (shipped at the new term) may rewind it.
    force_bootstrap: AtomicBool,
}

impl ReplState {
    fn new(targets: Vec<String>) -> ReplState {
        ReplState {
            targets: Mutex::new(targets),
            target_idx: AtomicUsize::new(0),
            primary: Mutex::new(String::new()),
            primary_epoch: AtomicU64::new(0),
            records_applied: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            half_open_drops: AtomicU64::new(0),
            connected: AtomicBool::new(false),
            last_heartbeat: Mutex::new(None),
            stale_term_rejections: AtomicU64::new(0),
            force_bootstrap: AtomicBool::new(false),
        }
    }

    /// The upstream address for `STATS`/`REDIRECT`: the live stream's
    /// target, else the first configured one, else `"unknown"`.
    fn primary_hint(&self) -> String {
        let cur = self.primary.lock().unwrap_or_else(|e| e.into_inner());
        if !cur.is_empty() {
            return cur.clone();
        }
        drop(cur);
        self.targets
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .first()
            .cloned()
            .unwrap_or_else(|| "unknown".to_string())
    }

    /// Record a frame arrival (resets the failover clock).
    fn note_heartbeat(&self) {
        *self
            .last_heartbeat
            .lock()
            .unwrap_or_else(|e| e.into_inner()) = Some(std::time::Instant::now());
    }

    /// Milliseconds since the last frame, `None` if never.
    fn heartbeat_age_ms(&self) -> Option<u64> {
        self.last_heartbeat
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .map(|t| t.elapsed().as_millis() as u64)
    }

    /// Count one stale-term rejection (issued by this node, in either
    /// direction: a follower refusing a deposed primary's stream, or a
    /// deposed primary refusing a higher-term handshake).
    fn note_stale_term(&self) {
        self.stale_term_rejections.fetch_add(1, Ordering::Relaxed);
        intensio_obs::inc("repl.stale_term_rejections");
    }

    /// Put `addr` at the front of the rotation (the poller found the
    /// new primary there).
    fn prefer_target(&self, addr: &str) {
        let mut targets = self.targets.lock().unwrap_or_else(|e| e.into_inner());
        targets.retain(|t| t != addr);
        targets.insert(0, addr.to_string());
        self.target_idx.store(0, Ordering::Relaxed);
    }
}

struct Durability {
    /// The data-dir root; the background checkpointer writes checkpoint
    /// directories here without holding the WAL lock.
    dir: PathBuf,
    wal: Mutex<Wal>,
    recovery: RecoveryReport,
}

/// What boot recovery observed, frozen for the lifetime of the process.
#[derive(Debug, Clone, Default)]
struct RecoveryReport {
    recovered_epoch: u64,
    replayed_records: u64,
    discarded_records: u64,
    recovery_ms: u64,
}

impl Shared {
    /// Pin the current snapshot (brief read lock, then lock-free use).
    fn snapshot(&self) -> Arc<Snapshot> {
        self.state.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn install(&self, snapshot: Snapshot) {
        // Failpoint before the publish: an armed `error` or `panic` spec
        // aborts the install atomically. The unwind is caught by the
        // worker (the client sees an error, the mutation never lands) or
        // by the inducer's retry loop.
        if let Err(f) = intensio_fault::fire("serve.install") {
            panic!("{f}");
        }
        let epoch = snapshot.epoch;
        self.term.fetch_max(snapshot.term, Ordering::Relaxed);
        *self.state.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(snapshot);
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain_recent(epoch, self.cfg.stale_epochs);
        intensio_obs::inc("serve.epoch_swaps");
        intensio_obs::gauge("serve.epoch", epoch as i64);
    }

    fn wake_inducer(&self) {
        let mut flags = self.induce.lock().unwrap_or_else(|e| e.into_inner());
        flags.dirty = true;
        self.induce_wake.notify_all();
    }

    fn wake_checkpointer(&self) {
        let mut flags = self.ckpt.lock().unwrap_or_else(|e| e.into_inner());
        flags.dirty = true;
        self.ckpt_wake.notify_all();
    }

    fn note_rules_pruned(&self, n: u64) {
        if n > 0 {
            self.counters.rules_pruned.fetch_add(n, Ordering::Relaxed);
        }
    }

    fn note_ruleset_rejected(&self) {
        self.counters
            .rulesets_rejected
            .fetch_add(1, Ordering::Relaxed);
        intensio_obs::inc("serve.rulesets_rejected");
    }

    /// This node's current replication role.
    fn role(&self) -> Role {
        Role::from_usize(self.role.load(Ordering::SeqCst))
    }

    /// Whether this node currently accepts writes and serves streams.
    fn is_primary(&self) -> bool {
        self.role() == Role::Primary
    }

    /// The highest term this node has durably observed.
    fn current_term(&self) -> u64 {
        self.term.load(Ordering::SeqCst)
    }

    /// Refresh the `repl.lag_epochs` gauge from the follower's local
    /// epoch and the highest epoch the primary has reported.
    fn update_lag(&self) {
        if !self.is_primary() {
            let primary = self.repl.primary_epoch.load(Ordering::Relaxed);
            let local = self.snapshot().epoch;
            intensio_obs::gauge("repl.lag_epochs", primary.saturating_sub(local) as i64);
        }
    }

    /// Demote this node to follower after observing `new_term` (higher
    /// than its own) from `source`. The local state is left as-is — the
    /// replicator will tail the new primary, whose higher-term stream
    /// is allowed to rewind any orphaned local suffix. Idempotent per
    /// term: a second observation of the same term is a no-op.
    fn demote(&self, new_term: u64, source: &str) {
        if self.term.fetch_max(new_term, Ordering::SeqCst) >= new_term {
            return;
        }
        let was = self.role.swap(Role::Follower.as_usize(), Ordering::SeqCst);
        if Role::from_usize(was) == Role::Primary {
            intensio_obs::inc("repl.demotions");
            intensio_obs::gauge("repl.term", new_term as i64);
            let _ = intensio_obs::flight_record("demotion");
            eprintln!(
                "intensio-serve: demoted to follower — observed term {new_term} from {source} \
                 (own lineage fenced)"
            );
        }
    }
}

/// Lint a candidate rule set against the data it was induced from,
/// using the induction threshold as the support floor. Error-level
/// findings (e.g. IC020 conflicting rules) make the set uninstallable.
fn lint_rule_set(
    cfg: &ServiceConfig,
    rules: &intensio_rules::rule::RuleSet,
    db: &Database,
) -> Report {
    let check_cfg = RuleCheckConfig {
        min_support: cfg.induction.min_support,
    };
    let mut report = check_rules(rules, Some(db), &check_cfg);
    report.sort();
    report
}

/// Drop directly-subsumed rules from a gated set before install. The
/// engine applies rules one at a time, so a rule whose premise lies
/// inside a wider rule with the same conclusion can never contribute a
/// fact the wider rule does not — removing it is answer-preserving.
/// Chain-redundant rules (IC025) are only ever *reported* by the
/// checker, never auto-pruned: deriving their conclusion takes more
/// than one step. Returns how many rules were dropped.
fn prune_rule_set(rules: &mut intensio_rules::rule::RuleSet) -> u64 {
    let pruned = rules.minimize() as u64;
    if pruned > 0 {
        intensio_obs::add("serve.rules_pruned", pruned);
    }
    pruned
}

/// Synchronous boot induction. Returns the induced rule set when it
/// passes the static-analysis gate, `None` when the gate rejects it.
fn boot_induce(
    cfg: &ServiceConfig,
    dictionary: &DataDictionary,
    db: &Database,
) -> Result<(Option<intensio_rules::rule::RuleSet>, u64), ServeError> {
    let ils = Ils::new(dictionary.model(), cfg.induction);
    let out = ils
        .induce_parallel(db, cfg.induction_threads)
        .map_err(|e| ServeError(format!("initial induction failed: {e}")))?;
    if cfg.check_rulesets && lint_rule_set(cfg, &out.rules, db).has_errors() {
        Ok((None, 0))
    } else {
        let mut rules = out.rules;
        let pruned = prune_rule_set(&mut rules);
        Ok((Some(rules), pruned))
    }
}

/// Checkpoint a snapshot through the *exclusive* [`Wal::checkpoint`]
/// path — boot only, before any worker thread exists. The rule set is
/// stored only when it is fresh for this data — stale rules are cheaper
/// to re-induce after recovery than to pin durably. Falls back to a
/// rule-less checkpoint when the rules fail to encode. The live service
/// checkpoints via [`checkpoint_once`] instead.
fn checkpoint_snapshot(
    wal: &mut Wal,
    snap: &Snapshot,
) -> Result<intensio_wal::CheckpointRef, intensio_wal::WalError> {
    let rules = snap.dictionary.rules();
    let with_rules = (snap.rules_fresh && !rules.is_empty()).then_some(rules);
    match wal.checkpoint(
        &snap.db,
        with_rules,
        snap.epoch,
        snap.data_version,
        snap.term,
    ) {
        Ok(c) => Ok(c),
        Err(_) if with_rules.is_some() => {
            wal.checkpoint(&snap.db, None, snap.epoch, snap.data_version, snap.term)
        }
        Err(e) => Err(e),
    }
}

/// Durable boot: recover the knowledge state from disk, replay the log
/// through the same code paths live requests use, gate recovered rules,
/// optionally re-induce, and pin the result with a boot checkpoint.
fn boot_durable(
    cfg: &ServiceConfig,
    dir: &Path,
    seed_db: Database,
    model: KerModel,
) -> Result<(Snapshot, Durability, bool, u64), ServeError> {
    let started = std::time::Instant::now();
    let err = |e: intensio_wal::WalError| ServeError(format!("durability: {e}"));
    let recovered = intensio_wal::recover(dir).map_err(err)?;
    intensio_wal::recover::apply_sanitize(&recovered).map_err(err)?;

    let mut rejected = false;
    let mut pruned_on_open = 0u64;
    let (mut db, ckpt_rules, base_epoch, base_dv, base_term) = match recovered.checkpoint {
        Some(c) => (c.db, c.rules, c.epoch, c.data_version, c.term),
        // Fresh directory (or no readable checkpoint): replay starts
        // from the seed database the caller provided.
        None => (seed_db, None, 0, 0, 0),
    };
    let mut epoch = base_epoch;
    let mut data_version = base_dv;
    let mut term = base_term;
    let mut pending_rules = ckpt_rules;
    let mut rules_fresh = pending_rules.is_some();

    for record in &recovered.records {
        let mut replay_span = intensio_obs::Span::enter("wal.replay");
        replay_span.field("epoch", record.epoch);
        match record.kind {
            RecordKind::Write => {
                let script = record.script().ok_or_else(|| {
                    ServeError(format!(
                        "recovery: write record at epoch {} is not UTF-8",
                        record.epoch
                    ))
                })?;
                let mut session = Session::new();
                // A write that applied before the crash must apply
                // again — a replay failure means the log and the
                // checkpoint disagree, and serving from half a replay
                // would silently drop acknowledged writes.
                session.run_script(&mut db, script).map_err(|e| {
                    ServeError(format!(
                        "recovery: replaying write at epoch {}: {e}",
                        record.epoch
                    ))
                })?;
                rules_fresh = false;
            }
            RecordKind::Rules => match rules_codec::rules_from_bytes(&record.body) {
                Ok(rules) => {
                    pending_rules = Some(rules);
                    rules_fresh = true;
                }
                Err(_) => {
                    // The epoch still advances (contiguity!) but the
                    // rules stay stale, so the inducer re-learns them.
                    intensio_obs::inc("recovery.undecodable_rulesets");
                    rules_fresh = false;
                }
            },
            // A promotion fencepost: no data change, but the epoch is
            // consumed and the term adopted.
            RecordKind::Term => {}
        }
        epoch = record.epoch;
        data_version = record.data_version;
        term = term.max(record.term);
    }

    let mut dictionary = DataDictionary::new(model);
    if let Some(mut rules) = pending_rules {
        // Recovered knowledge passes the same gate a fresh induction
        // would: replay must not reinstall a rule set the checker
        // rejects today.
        if cfg.check_rulesets && lint_rule_set(cfg, &rules, &db).has_errors() {
            rejected = true;
            rules_fresh = false;
        } else {
            pruned_on_open += prune_rule_set(&mut rules);
            dictionary.set_rules(rules);
        }
    }
    if !rules_fresh && cfg.learn_on_open {
        match boot_induce(cfg, &dictionary, &db)? {
            (Some(rules), pruned) => {
                pruned_on_open += pruned;
                dictionary.set_rules(rules);
                rules_fresh = true;
            }
            (None, _) => rejected = true,
        }
    }

    let snapshot = Snapshot::recovered(epoch, data_version, term, db, dictionary, rules_fresh);

    let mut wal = Wal::open(dir, cfg.wal, recovered.last_seq).map_err(err)?;
    // The boot checkpoint makes the recovered (and boot-induced) state
    // durable before the first acknowledgement, and retires the old
    // segments and the torn tails they may carry.
    checkpoint_snapshot(&mut wal, &snapshot).map_err(err)?;

    let recovery = RecoveryReport {
        recovered_epoch: epoch,
        replayed_records: recovered.stats.replayed_records,
        discarded_records: recovered.stats.discarded_records,
        recovery_ms: started.elapsed().as_millis() as u64,
    };
    intensio_obs::gauge("recovery.ms", recovery.recovery_ms as i64);
    intensio_obs::gauge("recovery.epoch", epoch as i64);
    Ok((
        snapshot,
        Durability {
            dir: dir.to_path_buf(),
            wal: Mutex::new(wal),
            recovery,
        },
        rejected,
        pruned_on_open,
    ))
}

struct Job {
    request: Request,
    reply_to: SyncSender<Reply>,
    /// When the job entered the queue, for queue-wait telemetry.
    enqueued: std::time::Instant,
    /// Absolute deadline, from [`ServiceConfig::deadline`].
    deadline: Option<std::time::Instant>,
    /// Read-your-writes floor: the worker waits (bounded by the
    /// deadline ladder) for the local epoch to reach this before
    /// executing; a still-behind follower redirects to its primary.
    min_epoch: Option<u64>,
    /// The request's trace context: propagated from the wire (`#trace`
    /// prefix) or minted at admission under the sink's sampling rate.
    /// The worker installs it for the job's duration so every span the
    /// request opens joins the trace.
    trace: Option<intensio_obs::TraceContext>,
}

/// The concurrent intensional query service. See the module docs for
/// the concurrency design; see [`crate::server`] for the TCP front end.
pub struct Service {
    shared: Arc<Shared>,
    queue: Mutex<Option<Sender<Job>>>,
    /// The supervisor owns the worker handles; see [`supervise`].
    supervisor: Mutex<Option<JoinHandle<()>>>,
    /// Background inducer; runs on every node but only learns while
    /// the node is primary (rules are shipped to followers).
    inducer: Mutex<Option<JoinHandle<()>>>,
    /// Background checkpointer; `None` for in-memory services.
    checkpointer: Mutex<Option<JoinHandle<()>>>,
    /// Apply/reconnect/failover loop; runs on every node but idles
    /// while the node is primary.
    replicator: Mutex<Option<JoinHandle<()>>>,
    /// Cluster-telemetry poller; idle until [`Service::set_peers`].
    poller: Mutex<Option<JoinHandle<()>>>,
}

impl Service {
    /// Open a service over a database and its KER model with default
    /// configuration (induces rules before serving).
    pub fn open(db: Database, model: KerModel) -> Result<Service, ServeError> {
        Service::with_config(db, model, ServiceConfig::default())
    }

    /// Open a service with explicit configuration. With
    /// [`ServiceConfig::data_dir`] set, boot recovers the knowledge
    /// state from the newest valid checkpoint plus the write-ahead
    /// log, re-checks recovered rule sets through the static-analysis
    /// gate, and pins the result with a fresh boot checkpoint before
    /// accepting any request.
    pub fn with_config(
        db: Database,
        model: KerModel,
        mut cfg: ServiceConfig,
    ) -> Result<Service, ServeError> {
        // A follower never induces: its rule sets arrive over the wire
        // from the primary (re-gated locally), which is what keeps
        // intensional answers identical cluster-wide.
        if cfg.replicate_from.is_some() {
            cfg.learn_on_open = false;
        }
        let mut rejected_on_open = false;
        let mut pruned_on_open = 0u64;
        let (snapshot, durability) = match cfg.data_dir.clone() {
            Some(dir) => {
                let (snap, dur, rejected, pruned) = boot_durable(&cfg, &dir, db, model)?;
                rejected_on_open = rejected;
                pruned_on_open = pruned;
                (snap, Some(dur))
            }
            None => {
                let mut dictionary = DataDictionary::new(model);
                let mut rules_fresh = false;
                if cfg.learn_on_open {
                    match boot_induce(&cfg, &dictionary, &db)? {
                        (Some(rules), pruned) => {
                            pruned_on_open = pruned;
                            dictionary.set_rules(rules);
                            rules_fresh = true;
                        }
                        // Serve without intensional rules rather than
                        // with provably unsound ones; the dictionary
                        // keeps its empty rule set and the background
                        // inducer stays quiet until the data changes.
                        (None, _) => rejected_on_open = true,
                    }
                }
                (Snapshot::initial(db, dictionary, rules_fresh), None)
            }
        };
        // Arm the flight recorder: worker panics, shed onset, ladder
        // degradation, and shutdown dump the span ring + metrics here.
        if let Some(dir) = &cfg.data_dir {
            intensio_obs::flightrec::set_dir(Some(dir));
        }
        let workers = cfg.workers.max(1);
        let targets: Vec<String> = cfg
            .replicate_from
            .as_deref()
            .unwrap_or("")
            .split(',')
            .map(str::trim)
            .filter(|t| !t.is_empty())
            .map(str::to_string)
            .collect();
        let role = if targets.is_empty() {
            Role::Primary
        } else if cfg.candidate {
            Role::Candidate
        } else {
            Role::Follower
        };
        let term = snapshot.term;
        let shared = Arc::new(Shared {
            state: RwLock::new(Arc::new(snapshot)),
            write_lock: Mutex::new(()),
            cache: Mutex::new(AnswerCache::new(cfg.cache_capacity)),
            cfg,
            counters: Counters::default(),
            induce: Mutex::new(WakeFlags::default()),
            induce_wake: Condvar::new(),
            ckpt: Mutex::new(WakeFlags::default()),
            ckpt_wake: Condvar::new(),
            queue_depth: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            durability,
            repl_hub: ReplHub::new(),
            role: AtomicUsize::new(role.as_usize()),
            term: AtomicU64::new(term),
            repl: ReplState::new(targets),
            peers: RwLock::new(Vec::new()),
            cluster: Mutex::new(Vec::new()),
        });
        intensio_obs::gauge("repl.term", term as i64);
        if rejected_on_open {
            shared.note_ruleset_rejected();
        }
        shared.note_rules_pruned(pruned_on_open);

        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            handles.push(
                spawn_worker(&format!("intensio-worker-{i}"), &shared, &rx)
                    .map_err(|e| ServeError(format!("spawning worker: {e}")))?,
            );
        }
        let supervisor = {
            let shared = shared.clone();
            let rx = rx.clone();
            std::thread::Builder::new()
                .name("intensio-supervisor".to_string())
                .spawn(move || supervise(&shared, &rx, handles))
                .map_err(|e| ServeError(format!("spawning supervisor: {e}")))?
        };
        // Every node runs an inducer and a replicator: the inducer
        // idles unless the node is primary, the replicator idles unless
        // it is not — so a promotion or demotion is a role flip, not a
        // thread lifecycle event.
        let inducer = {
            let shared = shared.clone();
            Some(
                std::thread::Builder::new()
                    .name("intensio-inducer".to_string())
                    .spawn(move || inducer_loop(&shared))
                    .map_err(|e| ServeError(format!("spawning inducer: {e}")))?,
            )
        };
        let replicator = {
            let shared = shared.clone();
            Some(
                std::thread::Builder::new()
                    .name("intensio-replicator".to_string())
                    .spawn(move || replicator_loop(&shared))
                    .map_err(|e| ServeError(format!("spawning replicator: {e}")))?,
            )
        };
        let checkpointer = if shared.durability.is_some() {
            let shared = shared.clone();
            Some(
                std::thread::Builder::new()
                    .name("intensio-checkpointer".to_string())
                    .spawn(move || checkpointer_loop(&shared))
                    .map_err(|e| ServeError(format!("spawning checkpointer: {e}")))?,
            )
        } else {
            None
        };
        let poller = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("intensio-telemetry".to_string())
                .spawn(move || poller_loop(&shared))
                .map_err(|e| ServeError(format!("spawning telemetry poller: {e}")))?
        };

        Ok(Service {
            shared,
            queue: Mutex::new(Some(tx)),
            supervisor: Mutex::new(Some(supervisor)),
            inducer: Mutex::new(inducer),
            checkpointer: Mutex::new(checkpointer),
            replicator: Mutex::new(replicator),
            poller: Mutex::new(Some(poller)),
        })
    }

    /// Name the peers the cluster-telemetry poller samples (follower
    /// addresses on a primary, or any set of nodes to watch). Replaces
    /// any previous set; the next poll round uses it.
    pub fn set_peers(&self, peers: Vec<String>) {
        *self.shared.peers.write().unwrap_or_else(|e| e.into_inner()) = peers;
    }

    /// This node's cluster-network label ([`ServiceConfig::net_label`]);
    /// empty when unlabeled. The TCP server stamps it on every accepted
    /// connection, and the replicator announces it upstream.
    pub fn net_label(&self) -> &str {
        &self.shared.cfg.net_label
    }

    /// Execute a request on the worker pool and wait for its reply.
    /// Returns [`Reply::Busy`] without executing anything when the
    /// queue is at capacity.
    pub fn submit(&self, request: Request) -> Reply {
        self.submit_at(request, None)
    }

    /// [`Service::submit`] with a read-your-writes floor: the request
    /// does not execute until this node's epoch reaches `min_epoch`
    /// (e.g. the epoch a write acknowledgement carried). The wait is
    /// bounded by the deadline ladder; a follower still behind at the
    /// bound answers with a `REDIRECT` error naming its primary.
    pub fn submit_at(&self, request: Request, min_epoch: Option<u64>) -> Reply {
        self.submit_traced(request, min_epoch, None)
    }

    /// [`Service::submit_at`] with an explicit trace context (e.g. one
    /// propagated from the wire's `#trace` prefix). With `None`, a
    /// fresh root trace is minted under the sink's sampling rate.
    pub fn submit_traced(
        &self,
        request: Request,
        min_epoch: Option<u64>,
        trace: Option<intensio_obs::TraceContext>,
    ) -> Reply {
        let shared = &self.shared;
        let trace = trace.or_else(intensio_obs::start_trace);
        let cap = shared.cfg.queue_capacity;
        if cap > 0 && shared.queue_depth.load(Ordering::Relaxed) >= cap {
            let prev = shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            intensio_obs::inc("serve.requests_shed");
            if prev == 0 {
                // First shed since boot: capture the span ring while
                // the overload that caused it is still in view.
                let _ = intensio_obs::flight_record("shed_onset");
            }
            return Reply::Busy;
        }
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        // Count the job before sending so a racing worker's decrement
        // can never observe the queue at depth zero and underflow.
        shared.queue_depth.fetch_add(1, Ordering::Relaxed);
        let deadline = shared.cfg.deadline.map(|d| std::time::Instant::now() + d);
        let sent = {
            let queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            match queue.as_ref() {
                Some(tx) => tx
                    .send(Job {
                        request,
                        reply_to: reply_tx,
                        enqueued: std::time::Instant::now(),
                        deadline,
                        min_epoch,
                        trace,
                    })
                    .is_ok(),
                None => false,
            }
        };
        if !sent {
            shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
            return Reply::Error {
                message: "service is shut down".to_string(),
            };
        }
        reply_rx.recv().unwrap_or(Reply::Error {
            message: "worker dropped the request".to_string(),
        })
    }

    /// Current statistics (answered inline, not via the worker pool).
    pub fn stats(&self) -> StatsReply {
        stats_reply(&self.shared)
    }

    /// Current knowledge epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.snapshot().epoch
    }

    /// Block until the current snapshot's rules match its data version
    /// (i.e. any triggered background induction has landed), up to
    /// `timeout`. Returns whether freshness was reached. Queries keep
    /// flowing while waiting — this is a test/ops convenience, not a
    /// barrier the request path ever takes.
    pub fn wait_rules_fresh(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.shared.snapshot().rules_fresh {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }

    /// Serve one replication stream (the `REPLICATE <from_epoch>
    /// [term=<t>]` verb): write `#repl` lines to `out` until the
    /// follower disconnects, the server stops, or the service shuts
    /// down. Runs on the connection thread, not the worker pool — a
    /// slow follower never occupies a query worker.
    ///
    /// `peer_term` is the highest term the follower has durably
    /// observed. A primary asked to serve a follower from a *higher*
    /// term has been deposed without noticing: it answers with a
    /// `STALE_TERM` error and demotes itself to follower.
    ///
    /// The bootstrap closes the history/live race by subscribing to the
    /// record hub *before* reading the log: any record missing from the
    /// history read below is already waiting in the channel, and the
    /// monotone `last_sent` epoch dedupes the overlap. When the log no
    /// longer reaches back to `from_epoch` (a checkpoint truncated it),
    /// the stream falls back to shipping a full state snapshot.
    pub fn replicate(
        &self,
        from_epoch: u64,
        peer_term: u64,
        out: &mut dyn std::io::Write,
        stop: &AtomicBool,
    ) -> std::io::Result<()> {
        let shared = &self.shared;
        let mut send = |msg: &StreamMsg| -> std::io::Result<()> {
            // One frame, one write call: injected link faults
            // (`net.dup`, `net.torn_write`) act on write-call
            // boundaries, so this keeps duplication and tearing
            // whole-frame — the failure modes the follower's reader is
            // specified (and property-tested) against.
            let mut frame = msg.encode();
            frame.push('\n');
            out.write_all(frame.as_bytes())?;
            out.flush()
        };
        let own_term = shared.current_term();
        if peer_term > own_term {
            // The follower has durably seen a term this node never
            // committed: a failover happened while this node was down
            // (or partitioned). Fence the stream and step down.
            shared.repl.note_stale_term();
            shared.demote(peer_term, "REPLICATE handshake");
            return send(&StreamMsg::Error(format!(
                "{}: this node is at term {own_term}, you have durably observed \
                 term {peer_term}; it is no longer primary",
                intensio_repl::STALE_TERM,
            )));
        }
        if !shared.is_primary() {
            return send(&StreamMsg::Error(format!(
                "this node is itself a {}; replicate from the primary",
                shared.role().as_str()
            )));
        }
        let Some(dur) = &shared.durability else {
            return send(&StreamMsg::Error(
                "replication requires a durable primary (start it with --data-dir)".to_string(),
            ));
        };
        let rx = shared.repl_hub.subscribe();
        intensio_obs::inc("repl.streams_opened");
        // History: collect the whole log tail up front so a chain break
        // discovered halfway (gap, corruption, truncation race) can
        // still fall back to a clean snapshot bootstrap. A follower
        // that has not durably observed this term never gets a tail:
        // its log may end in a divergent suffix from a deposed lineage
        // (a SIGKILLed primary's acked-but-unshipped writes), and a
        // tail appended past its claimed epoch would silently merge
        // the two lineages. Only a full snapshot at the current term
        // is safe; the follower's orphaned suffix is retracted by the
        // snapshot install (and by recovery's term fencing on its next
        // restart).
        let history: Option<Vec<Record>> = if peer_term < own_term {
            intensio_obs::inc("repl.lineage_bootstraps");
            None
        } else {
            match intensio_wal::LogTail::open(&dur.dir, from_epoch) {
                Ok(tail) => {
                    let mut records = Vec::new();
                    let mut intact = true;
                    for item in tail {
                        match item {
                            Ok(rec) => records.push(rec),
                            Err(_) => {
                                intact = false;
                                break;
                            }
                        }
                    }
                    intact.then_some(records)
                }
                Err(_) => None,
            }
        };
        send(&StreamMsg::Ok {
            epoch: shared.snapshot().epoch,
            term: shared.current_term(),
        })?;
        let mut last_sent = from_epoch;
        match history {
            Some(records) => {
                for rec in records {
                    last_sent = rec.epoch;
                    // History comes from the log, which stores no trace
                    // context: only live-tail records ship one.
                    send(&StreamMsg::Record { rec, trace: None })?;
                    intensio_obs::inc("repl.records_shipped");
                }
            }
            None => {
                // Pinned after the subscribe, so every later record is
                // either above this epoch or waiting in the channel.
                let snap = shared.snapshot();
                let db = match repl_codec::db_to_bytes(&snap.db) {
                    Ok(db) => db,
                    Err(e) => return send(&StreamMsg::Error(format!("encoding snapshot: {e}"))),
                };
                let rules = snap.dictionary.rules();
                let rules = (snap.rules_fresh && !rules.is_empty())
                    .then(|| rules_codec::rules_to_bytes(rules).ok())
                    .flatten();
                last_sent = snap.epoch;
                send(&StreamMsg::Snapshot {
                    epoch: snap.epoch,
                    data_version: snap.data_version,
                    term: snap.term,
                    db,
                    rules,
                })?;
                intensio_obs::inc("repl.snapshots_shipped");
            }
        }
        // Live tail: forward hub records (the bootstrap overlap dedupes
        // on `last_sent`), heartbeat the current epoch when idle.
        loop {
            if stop.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
                return send(&StreamMsg::Error("primary shutting down".to_string()));
            }
            if !shared.is_primary() {
                // Demoted mid-stream (a higher term was observed): end
                // the stream so the follower re-resolves the primary.
                return send(&StreamMsg::Error(format!(
                    "{}: this node was demoted to follower at term {}",
                    intensio_repl::STALE_TERM,
                    shared.current_term(),
                )));
            }
            match rx.recv_timeout(shared.cfg.repl_heartbeat) {
                Ok((rec, trace)) => {
                    if rec.epoch <= last_sent {
                        continue;
                    }
                    last_sent = rec.epoch;
                    send(&StreamMsg::Record { rec, trace })?;
                    intensio_obs::inc("repl.records_shipped");
                }
                Err(RecvTimeoutError::Timeout) => {
                    let snap = shared.snapshot();
                    send(&StreamMsg::Heartbeat {
                        epoch: snap.epoch,
                        term: snap.term,
                    })?;
                }
                Err(RecvTimeoutError::Disconnected) => {
                    return send(&StreamMsg::Error("record hub closed".to_string()));
                }
            }
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Final flight-recorder dump. The workspace forbids unsafe
        // code, so there is no signal handler to hook SIGTERM: orderly
        // shutdown (which a caught SIGTERM funnels into by dropping
        // the service) dumps here instead.
        let _ = intensio_obs::flight_record("shutdown");
        intensio_obs::flush_trace_sink();
        // Tell the supervisor this is a planned exit, then close the
        // queue; workers drain and exit, the supervisor joins them.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.poller.lock().unwrap_or_else(|e| e.into_inner()).take() {
            let _ = h.join();
        }
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(h) = self
            .supervisor
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = h.join();
        }
        // The replicator polls the shutdown flag on its read ticks and
        // between reconnect backoff steps; no wake needed.
        if let Some(h) = self
            .replicator
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = h.join();
        }
        {
            let mut flags = self.shared.induce.lock().unwrap_or_else(|e| e.into_inner());
            flags.shutdown = true;
            self.shared.induce_wake.notify_all();
        }
        if let Some(h) = self
            .inducer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = h.join();
        }
        // The checkpointer goes down last among the writers' helpers: a
        // cadence signal raised by the final writes or rule installs is
        // still honored, so the shutdown checkpoint bounds the next
        // boot's replay.
        {
            let mut flags = self.shared.ckpt.lock().unwrap_or_else(|e| e.into_inner());
            flags.shutdown = true;
            self.shared.ckpt_wake.notify_all();
        }
        if let Some(h) = self
            .checkpointer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = h.join();
        }
        // Final durability barrier: under a batch/off fsync policy the
        // tail of the log may still be in the page cache.
        if let Some(dur) = &self.shared.durability {
            let _ = dur.wal.lock().unwrap_or_else(|e| e.into_inner()).sync();
        }
    }
}

fn spawn_worker(
    name: &str,
    shared: &Arc<Shared>,
    rx: &Arc<Mutex<Receiver<Job>>>,
) -> std::io::Result<JoinHandle<()>> {
    let shared = shared.clone();
    let rx = rx.clone();
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || worker_loop(&shared, &rx))
}

/// Restart worker threads that die (a panic that escapes the
/// per-request `catch_unwind`, or the `serve.worker` failpoint). On
/// shutdown the queue closes, workers drain and exit on purpose, and
/// the supervisor joins them instead of resurrecting them.
fn supervise(
    shared: &Arc<Shared>,
    rx: &Arc<Mutex<Receiver<Job>>>,
    mut workers: Vec<JoinHandle<()>>,
) {
    let mut generation: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            for h in workers.drain(..) {
                let _ = h.join();
            }
            return;
        }
        for slot in workers.iter_mut() {
            if !slot.is_finished() || shared.shutdown.load(Ordering::SeqCst) {
                continue;
            }
            generation += 1;
            let name = format!("intensio-worker-r{generation}");
            let fresh = match spawn_worker(&name, shared, rx) {
                Ok(h) => h,
                Err(_) => continue, // out of threads: keep the dead slot, retry next tick
            };
            let dead = std::mem::replace(slot, fresh);
            let _ = dead.join();
            shared
                .counters
                .worker_restarts
                .fetch_add(1, Ordering::Relaxed);
            intensio_obs::inc("serve.worker_restarts");
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let job = match job {
            Ok(job) => job,
            Err(_) => return, // queue closed: shut down
        };
        shared.queue_depth.fetch_sub(1, Ordering::Relaxed);
        intensio_obs::record_stage(intensio_obs::Stage::QueueWait, job.enqueued.elapsed());
        // Worker-crash failpoint. Deliberately outside the catch_unwind
        // so the thread actually dies: the reply channel drops (the
        // client sees "worker dropped the request") and the supervisor
        // restarts the worker.
        if intensio_fault::fire("serve.worker").is_err() {
            return;
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Install the job's trace context for its whole run;
            // the guard restores the previous one (workers are
            // reused) even when the request panics.
            let _trace = intensio_obs::with_context(job.trace);
            match await_min_epoch(shared, job.min_epoch, job.deadline) {
                Some(reply) => reply,
                None => execute(shared, &job.request, job.deadline),
            }
        }));
        let reply = outcome.unwrap_or_else(|p| {
            let _ = intensio_obs::flight_record("request_panic");
            Reply::Error {
                message: format!("request panicked: {}", panic_message(p.as_ref())),
            }
        });
        if matches!(reply, Reply::Error { .. }) {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            intensio_obs::inc("serve.errors");
        }
        let _ = job.reply_to.send(reply);
    }
}

/// Best-effort human-readable payload of a caught panic.
fn panic_message(p: &(dyn std::any::Any + Send)) -> &str {
    p.downcast_ref::<&'static str>()
        .copied()
        .or_else(|| p.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("opaque panic payload")
}

/// How long a `min_epoch` request may wait for replication to catch up
/// when no per-request deadline is configured.
const MIN_EPOCH_WAIT: std::time::Duration = std::time::Duration::from_secs(2);

/// Read-your-writes barrier: block (briefly) until this node's epoch
/// reaches `min_epoch`. `None` means proceed; `Some(reply)` is the
/// ready-made answer for a node that stayed behind past the bound — a
/// follower redirects to its primary, a primary reports the requested
/// epoch as unknown (it is the commit point; a higher epoch does not
/// exist yet).
fn await_min_epoch(
    shared: &Shared,
    min_epoch: Option<u64>,
    deadline: Option<std::time::Instant>,
) -> Option<Reply> {
    let min_epoch = min_epoch?;
    let bound = deadline.unwrap_or_else(|| std::time::Instant::now() + MIN_EPOCH_WAIT);
    loop {
        let epoch = shared.snapshot().epoch;
        if epoch >= min_epoch {
            return None;
        }
        if std::time::Instant::now() >= bound {
            intensio_obs::inc("repl.min_epoch_timeouts");
            // Admission span: with tracing on, the REDIRECT leg of a
            // cross-node read shows up in this node's trace under the
            // same trace id the primary's execution will carry.
            let mut admission = intensio_obs::Span::enter("serve.admission");
            admission.field("epoch", epoch);
            admission.field("min_epoch", min_epoch);
            let message = if !shared.is_primary() {
                admission.field("outcome", "redirect");
                format!(
                    "REDIRECT {} term={}: epoch {min_epoch} not yet replicated here (follower at {epoch})",
                    shared.repl.primary_hint(),
                    shared.current_term(),
                )
            } else {
                admission.field("outcome", "unsatisfiable");
                format!(
                    "min_epoch {min_epoch} is ahead of the primary (epoch {epoch}); \
                     no node can satisfy it"
                )
            };
            return Some(error(message));
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
}

fn execute(shared: &Shared, request: &Request, deadline: Option<std::time::Instant>) -> Reply {
    let mut span = intensio_obs::Span::stage("serve.request", intensio_obs::Stage::Request)
        .with_field("verb", request.verb());
    if let Request::Sql(q) | Request::Explain(q) | Request::Quel(q) | Request::Profile(q) = request
    {
        // The query text makes the slow-request log actionable.
        span.field("query", truncate(q, 120));
    }
    match request {
        Request::Sql(sql) => exec_sql(shared, sql, deadline),
        Request::Quel(script) => exec_quel(shared, script),
        Request::Stats => Reply::Stats(Box::new(stats_reply(shared))),
        Request::Explain(sql) => exec_explain(shared, sql, deadline),
        Request::Fault(cmd) => exec_fault(shared, cmd),
        Request::Check(arg) => exec_check(shared, arg),
        Request::Profile(sql) => exec_profile(shared, sql, deadline),
        Request::Telemetry => Reply::Telemetry(Box::new(telemetry_reply(shared))),
    }
}

/// `CHECK`: static analysis against the pinned snapshot.
///
/// * No argument — lint the live rule set. Error-level findings mean
///   every answer inferred from these rules is suspect: the cache drops
///   all epochs up to the snapshot's, `rulesets_rejected` is bumped,
///   and the reply carries `rejected = true`.
/// * `CHECK <sql>` / `CHECK QUEL <script>` — lint a query against the
///   live catalog and rules without executing it (IC040–IC045,
///   including provably-empty conditions with the refuting rule as
///   provenance).
fn exec_check(shared: &Shared, arg: &str) -> Reply {
    let snap = shared.snapshot();
    let arg = arg.trim();
    let mut rejected = false;
    let report = if arg.is_empty() {
        let report = lint_rule_set(&shared.cfg, snap.dictionary.rules(), &snap.db);
        if report.has_errors() {
            shared
                .cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .reject_through(snap.epoch);
            shared.note_ruleset_rejected();
            rejected = true;
        }
        report
    } else {
        let mut report = match arg.split_once(char::is_whitespace) {
            Some((verb, script)) if verb.eq_ignore_ascii_case("quel") => {
                intensio_check::check_quel(script.trim(), &snap.db, snap.dictionary.rules())
            }
            _ => intensio_check::check_sql(arg, &snap.db, snap.dictionary.rules()),
        };
        report.sort();
        report
    };
    intensio_obs::inc("serve.checks");
    Reply::Check(CheckReply {
        epoch: snap.epoch,
        rules_fresh: snap.rules_fresh,
        rejected,
        report,
    })
}

/// `FAULT LIST` / `FAULT SET name=spec[;...]` / `FAULT CLEAR`: runtime
/// failpoint administration over the wire. On a follower only `LIST`
/// is allowed: arming or clearing failpoints mutates node state, and a
/// replica's state is owned by its primary's log.
fn exec_fault(shared: &Shared, cmd: &str) -> Reply {
    let cmd = cmd.trim();
    let (op, rest) = match cmd.split_once(char::is_whitespace) {
        Some((op, rest)) => (op, rest.trim()),
        None => (cmd, ""),
    };
    let op = op.to_ascii_uppercase();
    // Transport faults (`net.*`) are node-local link state, not
    // replicated knowledge: a partition drill must be able to sever a
    // follower's own links, so the READONLY guard exempts specs that
    // only touch the net registry.
    let net_only = !rest.is_empty()
        && rest.split(';').all(|part| {
            let name = part.trim().split('=').next().unwrap_or("");
            intensio_net::faults::is_net_name(name)
        });
    // (A follower CLEAR is allowed through, but only empties the net
    // registry — see the CLEAR arm below.)
    if !shared.is_primary() && op == "SET" && !net_only {
        return error(readonly_message(
            &shared.repl.primary_hint(),
            "FAULT administration",
        ));
    }
    // `FAULT LIST` merges both registries; SET routes each `name=spec`
    // by prefix; CLEAR empties both.
    let merged_list = || {
        let mut failpoints = intensio_fault::list();
        failpoints.extend(intensio_net::faults::list());
        failpoints
    };
    let route = |part: &str| -> Result<(), String> {
        let part = part.trim();
        if part.is_empty() {
            return Ok(());
        }
        let (name, spec) = part
            .split_once('=')
            .ok_or_else(|| format!("fault spec without '=': {part:?}"))?;
        if intensio_net::faults::is_net_name(name.trim()) {
            intensio_net::faults::configure(name, spec)
        } else {
            intensio_fault::configure(name.trim(), spec.trim())
        }
    };
    match op.as_str() {
        "" | "LIST" => Reply::Fault {
            failpoints: merged_list(),
        },
        "SET" if !rest.is_empty() => match rest.split(';').try_for_each(route) {
            Ok(()) => Reply::Fault {
                failpoints: merged_list(),
            },
            Err(e) => error(format!("fault: {e}")),
        },
        "SET" => error("FAULT SET requires name=spec[;...]".to_string()),
        "CLEAR" if !shared.is_primary() => {
            // A follower may clear only its transport faults (healing
            // its own links); the failpoint registry stays primary-run.
            intensio_net::faults::clear();
            Reply::Fault {
                failpoints: intensio_fault::list(),
            }
        }
        "CLEAR" => {
            intensio_fault::clear();
            intensio_net::faults::clear();
            Reply::Fault {
                failpoints: Vec::new(),
            }
        }
        other => error(format!(
            "unknown FAULT operation {other:?}; expected LIST, SET, or CLEAR"
        )),
    }
}

/// Truncate to at most `max` characters on a char boundary.
fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max).collect();
        format!("{cut}…")
    }
}

fn stats_reply(shared: &Shared) -> StatsReply {
    let snap = shared.snapshot();
    let c = &shared.counters;
    StatsReply {
        epoch: snap.epoch,
        data_version: snap.data_version,
        rules_fresh: snap.rules_fresh,
        queries: c.queries.load(Ordering::Relaxed),
        cache_hits: c.cache_hits.load(Ordering::Relaxed),
        cache_misses: c.cache_misses.load(Ordering::Relaxed),
        cache_len: shared.cache.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
        cache_capacity: shared.cfg.cache_capacity as u64,
        writes: c.writes.load(Ordering::Relaxed),
        inductions: c.inductions.load(Ordering::Relaxed),
        errors: c.errors.load(Ordering::Relaxed),
        requests_shed: c.shed.load(Ordering::Relaxed),
        worker_restarts: c.worker_restarts.load(Ordering::Relaxed),
        induction_retries: c.induction_retries.load(Ordering::Relaxed),
        rulesets_rejected: c.rulesets_rejected.load(Ordering::Relaxed),
        rules_pruned: c.rules_pruned.load(Ordering::Relaxed),
        degraded_answers: c.degraded.load(Ordering::Relaxed),
        workers: shared.cfg.workers.max(1) as u64,
        durability: shared.durability.as_ref().map(|dur| {
            let wal = dur.wal.lock().unwrap_or_else(|e| e.into_inner());
            let ws = wal.stats();
            DurabilityStats {
                fsync: wal.config().fsync.to_string(),
                wal_appends: ws.appends,
                wal_append_bytes: ws.append_bytes,
                wal_fsyncs: ws.fsyncs,
                wal_checkpoints: ws.checkpoints,
                wal_segment_seq: ws.segment_seq,
                recovered_epoch: dur.recovery.recovered_epoch,
                replayed_records: dur.recovery.replayed_records,
                discarded_records: dur.recovery.discarded_records,
                recovery_ms: dur.recovery.recovery_ms,
            }
        }),
        role: shared.role().as_str().to_string(),
        term: shared.current_term(),
        repl: (!shared.is_primary()).then(|| {
            let r = &shared.repl;
            let primary_epoch = r.primary_epoch.load(Ordering::Relaxed);
            ReplStats {
                primary: r.primary_hint(),
                connected: r.connected.load(Ordering::Relaxed),
                primary_epoch,
                lag_epochs: primary_epoch.saturating_sub(snap.epoch),
                records_applied: r.records_applied.load(Ordering::Relaxed),
                reconnects: r.reconnects.load(Ordering::Relaxed),
                half_open_drops: r.half_open_drops.load(Ordering::Relaxed),
                heartbeat_age_ms: r.heartbeat_age_ms(),
                stale_term_rejections: r.stale_term_rejections.load(Ordering::Relaxed),
            }
        }),
        metrics: intensio_obs::metrics().snapshot(),
        cluster: shared
            .cluster
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone(),
    }
}

/// The intensional side of one query, with its serving provenance.
struct Intension {
    q: intensio_sql::SelectQuery,
    answer: Arc<IntensionalAnswer>,
    cached: bool,
    degraded: bool,
}

/// Parse + analyze a SQL query and produce its intensional answer,
/// consulting the cache. Shared by [`exec_sql`] and [`exec_explain`];
/// also returns the parsed query so the caller can run the extensional
/// side. `Err` carries a ready-made error reply (parse/analyze errors
/// only — inference trouble degrades instead of failing):
///
/// 1. **Fresh**: current-epoch cache hit, or run inference (deadline
///    permitting) and cache the result.
/// 2. **Stale**: deadline expired or inference failed — serve the most
///    recent prior-epoch cached answer, flagged `degraded`.
/// 3. **Extensional-only**: nothing cached — serve an empty intensional
///    answer, flagged `degraded`. The caller still computes the rows.
fn intensional_for(
    shared: &Shared,
    snap: &Snapshot,
    sql: &str,
    deadline: Option<std::time::Instant>,
) -> Result<Intension, Box<Reply>> {
    let q = parse(sql).map_err(|e| Box::new(error(format!("sql parse: {e}"))))?;
    let analysis =
        analyze(&snap.db, &q).map_err(|e| Box::new(error(format!("sql analyze: {e}"))))?;

    let fingerprint = condition_fingerprint(&analysis);
    // Cache failpoint: an armed fault makes the cache unavailable for
    // this request (no lookup, no insert) — a miss, never a wrong hit.
    let cache_ok = intensio_fault::fire("serve.cache").is_ok();
    if cache_ok {
        let mut cache_span =
            intensio_obs::Span::enter("serve.cache").with_field("epoch", snap.epoch);
        let hit = shared
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&(fingerprint.clone(), snap.epoch));
        if let Some(answer) = hit {
            cache_span.field("outcome", "hit");
            shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            intensio_obs::inc("serve.cache_hits");
            return Ok(Intension {
                q,
                answer,
                cached: true,
                degraded: false,
            });
        }
        cache_span.field("outcome", "miss");
    }
    shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
    intensio_obs::inc("serve.cache_misses");

    let overdue = deadline.is_some_and(|d| std::time::Instant::now() >= d);
    if !overdue {
        let engine = InferenceEngine::new(
            snap.dictionary.model(),
            snap.dictionary.rules(),
            &snap.db,
            shared.cfg.inference,
        );
        match engine {
            Ok(engine) => {
                let answer = Arc::new(engine.infer(&analysis));
                if cache_ok {
                    shared
                        .cache
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert((fingerprint, snap.epoch), answer.clone());
                }
                return Ok(Intension {
                    q,
                    answer,
                    cached: false,
                    degraded: false,
                });
            }
            Err(_) => intensio_obs::inc("serve.inference_failures"),
        }
    }

    // Degraded path: stale cached answer, else extensional-only.
    let prev = shared.counters.degraded.fetch_add(1, Ordering::Relaxed);
    intensio_obs::inc("serve.degraded_answers");
    if prev == 0 {
        // First ladder descent since boot: capture the span ring while
        // the deadline pressure that forced it is still in view.
        let _ = intensio_obs::flight_record("degraded_onset");
    }
    let mut degrade = intensio_obs::Span::enter("serve.degrade").with_field("epoch", snap.epoch);
    if cache_ok {
        let stale = shared
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get_stale(&fingerprint, snap.epoch);
        if let Some(answer) = stale {
            degrade.field("step", "stale");
            return Ok(Intension {
                q,
                answer,
                cached: true,
                degraded: true,
            });
        }
    }
    degrade.field("step", "extensional");
    Ok(Intension {
        q,
        answer: Arc::new(IntensionalAnswer::default()),
        cached: false,
        degraded: true,
    })
}

fn exec_sql(shared: &Shared, sql: &str, deadline: Option<std::time::Instant>) -> Reply {
    let snap = shared.snapshot();
    let Intension {
        q,
        answer: intensional,
        cached,
        degraded,
    } = match intensional_for(shared, &snap, sql, deadline) {
        Ok(r) => r,
        Err(reply) => return *reply,
    };
    let extensional = match intensio_sql::execute(&snap.db, &q) {
        Ok(r) => r,
        Err(e) => return error(format!("sql execute: {e}")),
    };

    let summary = intensio_core::summarize(&extensional, snap.dictionary.model());
    shared.counters.queries.fetch_add(1, Ordering::Relaxed);
    intensio_obs::inc("serve.queries");
    let (columns, rows) = render_relation(&extensional);
    Reply::Query(QueryReply {
        epoch: snap.epoch,
        cached,
        rules_fresh: snap.rules_fresh,
        degraded,
        soundness: Soundness::of(&intensional),
        columns,
        rows,
        headline: intensional.headline(),
        intensional,
        summary: if summary.is_empty() {
            None
        } else {
            Some(summary.to_string().trim_end().to_string())
        },
        affected: None,
    })
}

/// `EXPLAIN`: the provenance of a query's intensional answer — rule
/// ids, supports, and inference directions — without enumerating the
/// extensional rows. Hits the same answer cache as `SQL`.
fn exec_explain(shared: &Shared, sql: &str, deadline: Option<std::time::Instant>) -> Reply {
    let snap = shared.snapshot();
    let Intension {
        answer: intensional,
        cached,
        degraded,
        ..
    } = match intensional_for(shared, &snap, sql, deadline) {
        Ok(r) => r,
        Err(reply) => return *reply,
    };
    shared.counters.queries.fetch_add(1, Ordering::Relaxed);
    intensio_obs::inc("serve.explains");
    Reply::Explain(ExplainReply {
        epoch: snap.epoch,
        cached,
        rules_fresh: snap.rules_fresh,
        degraded,
        soundness: Soundness::of(&intensional),
        headline: intensional.headline(),
        intensional,
    })
}

/// `PROFILE <sql>`: execute the query exactly as `SQL` would while a
/// per-thread span collector is active, then fold the collected spans
/// into an EXPLAIN-ANALYZE-style timing tree. A cache miss yields the
/// full ladder — parse → cache → inference (with per-rule attempts
/// grafted from the answer's provenance) → scan; a hit yields the
/// shorter parse → cache tree.
fn exec_profile(shared: &Shared, sql: &str, deadline: Option<std::time::Instant>) -> Reply {
    let collector = intensio_obs::trace::collect_spans();
    let started = std::time::Instant::now();
    let reply = exec_sql(shared, sql, deadline);
    let total_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
    let spans = collector.take();
    let q = match reply {
        Reply::Query(q) => q,
        // Parse/analyze errors (and shed/panic replies) have no tree.
        other => return other,
    };
    let mut children = build_profile_tree(&spans);
    graft_rule_attempts(&mut children, &q.intensional.provenance);
    intensio_obs::inc("serve.profiles");
    Reply::Profile(Box::new(ProfileReply {
        epoch: q.epoch,
        cached: q.cached,
        rules_fresh: q.rules_fresh,
        degraded: q.degraded,
        rows: q.rows.len() as u64,
        total_us,
        tree: vec![ProfileNode {
            name: "request".to_string(),
            duration_us: total_us,
            fields: vec![("rows".to_string(), q.rows.len().to_string())],
            children,
        }],
    }))
}

/// Fold completion-ordered span records into a tree. Spans close
/// children-first on one worker thread, so a node at depth `d` adopts
/// every already-closed node one level deeper. Depths are normalized
/// against the shallowest record (the collector starts inside the
/// already-open `serve.request` span).
fn build_profile_tree(spans: &[intensio_obs::SpanRecord]) -> Vec<ProfileNode> {
    let Some(min_depth) = spans.iter().map(|s| s.depth).min() else {
        return Vec::new();
    };
    let max_depth = spans.iter().map(|s| s.depth - min_depth).max().unwrap_or(0);
    let mut pending: Vec<Vec<ProfileNode>> = vec![Vec::new(); max_depth + 2];
    for s in spans {
        let d = s.depth - min_depth;
        let children = std::mem::take(&mut pending[d + 1]);
        pending[d].push(ProfileNode {
            name: s.name.to_string(),
            duration_us: s.duration_us,
            fields: s
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            children,
        });
    }
    // Orphans (a deeper span whose parent closed before collection
    // started) fold up a level rather than vanish.
    for d in (1..pending.len()).rev() {
        let orphans = std::mem::take(&mut pending[d]);
        pending[d - 1].extend(orphans);
    }
    std::mem::take(&mut pending[0])
}

/// Attach one child per rule application under the `inference.infer`
/// node, from the answer's provenance: rule id, direction (forward
/// conclusions vs backward characterizations), and support.
fn graft_rule_attempts(tree: &mut [ProfileNode], uses: &[intensio_inference::RuleUse]) {
    for node in tree.iter_mut() {
        if node.name == "inference.infer" {
            for u in uses {
                node.children.push(ProfileNode {
                    name: format!("rule R{}", u.rule_id),
                    duration_us: 0,
                    fields: vec![
                        ("direction".to_string(), u.direction.as_str().to_string()),
                        ("support".to_string(), u.support.to_string()),
                        ("conclusion".to_string(), u.conclusion.clone()),
                    ],
                    children: Vec::new(),
                });
            }
            return;
        }
        graft_rule_attempts(&mut node.children, uses);
    }
}

/// This node's own telemetry sample, for the `TELEMETRY` verb.
fn telemetry_reply(shared: &Shared) -> TelemetryReply {
    let snap = shared.snapshot();
    let c = &shared.counters;
    let m = intensio_obs::metrics();
    let (connected, lag_epochs, records_applied, reconnects) = if shared.is_primary() {
        (true, 0, 0, 0)
    } else {
        let r = &shared.repl;
        let primary_epoch = r.primary_epoch.load(Ordering::Relaxed);
        (
            r.connected.load(Ordering::Relaxed),
            primary_epoch.saturating_sub(snap.epoch),
            r.records_applied.load(Ordering::Relaxed),
            r.reconnects.load(Ordering::Relaxed),
        )
    };
    TelemetryReply {
        role: shared.role().as_str().to_string(),
        epoch: snap.epoch,
        term: shared.current_term(),
        rules_fresh: snap.rules_fresh,
        connected,
        lag_epochs,
        records_applied,
        reconnects,
        queries: c.queries.load(Ordering::Relaxed),
        degraded_answers: c.degraded.load(Ordering::Relaxed),
        requests_shed: c.shed.load(Ordering::Relaxed),
        worker_restarts: c.worker_restarts.load(Ordering::Relaxed),
        repl_apply_p99_us: m.stage(intensio_obs::Stage::ReplApply).snapshot().p99_us,
        wal_append_p99_us: m.stage(intensio_obs::Stage::WalAppend).snapshot().p99_us,
    }
}

/// How often the cluster poller samples its peers.
const POLL_PERIOD: std::time::Duration = std::time::Duration::from_millis(1000);

/// The cluster-telemetry poller: about once a second, round-trip the
/// `TELEMETRY` verb to every peer named by [`Service::set_peers`] and
/// merge the samples into this node's `STATS`/Prometheus view (the
/// `cluster` array plus `cluster.peer<i>.*` gauges). Runs on every
/// node but does nothing until peers are configured; a dead peer costs
/// one short connect timeout per round, never a query worker.
fn poller_loop(shared: &Shared) {
    let mut prev: std::collections::HashMap<String, (u64, std::time::Instant)> =
        std::collections::HashMap::new();
    let mut next_poll = std::time::Instant::now();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if std::time::Instant::now() < next_poll {
            std::thread::sleep(std::time::Duration::from_millis(50));
            continue;
        }
        next_poll = std::time::Instant::now() + POLL_PERIOD;
        let peers = shared
            .peers
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        if peers.is_empty() {
            continue;
        }
        let mut cluster = Vec::with_capacity(peers.len());
        for (i, addr) in peers.iter().enumerate() {
            let mut peer =
                poll_peer(&shared.cfg.net_label, addr).unwrap_or_else(|| PeerTelemetry {
                    addr: addr.clone(),
                    ok: false,
                    role: String::new(),
                    epoch: 0,
                    term: 0,
                    lag_epochs: 0,
                    records_applied: 0,
                    apply_rate: 0,
                    reconnects: 0,
                    degraded_answers: 0,
                    requests_shed: 0,
                    worker_restarts: 0,
                });
            if peer.ok {
                // Failover discovery: a peer serving as primary at a
                // term at least ours is where the write lineage lives —
                // re-point the replication rotation at it (a deposed
                // primary restarted with only `--peers` has no
                // replication targets until this fires). At a strictly
                // higher term it also means this node's lineage is
                // fenced: a (deposed) primary demotes.
                if peer.role == "primary" && peer.term >= shared.current_term() {
                    shared.repl.prefer_target(&peer.addr);
                    shared.demote(peer.term, &format!("telemetry poll of {}", peer.addr));
                }
                let now = std::time::Instant::now();
                if let Some(&(applied, at)) = prev.get(addr) {
                    let dt = now.duration_since(at).as_secs_f64();
                    if dt > 0.0 && peer.records_applied >= applied {
                        peer.apply_rate =
                            ((peer.records_applied - applied) as f64 / dt).round() as u64;
                    }
                }
                prev.insert(addr.clone(), (peer.records_applied, now));
                intensio_obs::gauge(&format!("cluster.peer{i}.epoch"), peer.epoch as i64);
                intensio_obs::gauge(
                    &format!("cluster.peer{i}.lag_epochs"),
                    peer.lag_epochs as i64,
                );
                intensio_obs::gauge(
                    &format!("cluster.peer{i}.apply_rate"),
                    peer.apply_rate as i64,
                );
                intensio_obs::gauge(
                    &format!("cluster.peer{i}.reconnects"),
                    peer.reconnects as i64,
                );
                intensio_obs::gauge(
                    &format!("cluster.peer{i}.degraded_answers"),
                    peer.degraded_answers as i64,
                );
            }
            intensio_obs::gauge(&format!("cluster.peer{i}.up"), i64::from(peer.ok));
            cluster.push(peer);
        }
        *shared.cluster.lock().unwrap_or_else(|e| e.into_inner()) = cluster;
    }
}

/// One `TELEMETRY` round trip, with short timeouts
/// ([`timeouts::PEER_CONNECT`], [`timeouts::PEER_REPLY`]) so an
/// unreachable peer delays the poll loop, not the serve path. Routed
/// through [`intensio_net`]: a severed link makes the peer look down,
/// which is exactly what a partitioned poller should see.
fn poll_peer(local_label: &str, addr: &str) -> Option<PeerTelemetry> {
    use std::io::{BufRead as _, Write as _};
    let stream = intensio_net::connect_timeout(local_label, addr, timeouts::PEER_CONNECT).ok()?;
    stream.set_read_timeout(Some(timeouts::PEER_REPLY)).ok()?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone().ok()?;
    writer.write_all(b"TELEMETRY\n").ok()?;
    writer.flush().ok()?;
    let mut line = String::new();
    std::io::BufReader::new(stream).read_line(&mut line).ok()?;
    let v = crate::json::parse(line.trim()).ok()?;
    if !v.get("ok")?.as_bool()? || v.get("kind")?.as_str()? != "telemetry" {
        return None;
    }
    let num = |k: &str| v.get(k).and_then(crate::json::Json::as_u64).unwrap_or(0);
    Some(PeerTelemetry {
        addr: addr.to_string(),
        ok: true,
        role: v
            .get("role")
            .and_then(crate::json::Json::as_str)
            .unwrap_or("")
            .to_string(),
        epoch: num("epoch"),
        term: num("term"),
        lag_epochs: num("lag_epochs"),
        records_applied: num("records_applied"),
        apply_rate: 0,
        reconnects: num("reconnects"),
        degraded_answers: num("degraded_answers"),
        requests_shed: num("requests_shed"),
        worker_restarts: num("worker_restarts"),
    })
}

fn exec_quel(shared: &Shared, script: &str) -> Reply {
    let stmts = match intensio_quel::parse_script(script) {
        Ok(s) => s,
        Err(e) => return error(format!("quel parse: {e}")),
    };
    if stmts.is_empty() {
        return error("empty QUEL script".to_string());
    }
    let writes = stmts.iter().any(|s| s.access() == AccessKind::Write);
    if writes {
        if !shared.is_primary() {
            return error(readonly_message(
                &shared.repl.primary_hint(),
                "mutating QUEL",
            ));
        }
        quel_write(shared, script)
    } else {
        quel_read(shared, script)
    }
}

/// The error a follower answers to any state-mutating verb. Starts with
/// the literal token `READONLY` so clients (and greps) can detect it,
/// and names the primary so they know where to go.
fn readonly_message(primary: &str, what: &str) -> String {
    format!("READONLY: this node is a follower of {primary}; {what} must go to the primary")
}

/// Read-only scripts run against a *private copy-on-write clone* of the
/// pinned snapshot's database: `retrieve into` scratch relations land
/// in the clone and are discarded with it, and shared relations are
/// never touched.
fn quel_read(shared: &Shared, script: &str) -> Reply {
    let snap = shared.snapshot();
    let mut db = snap.db.clone();
    let mut session = Session::new();
    let outputs = match session.run_script(&mut db, script) {
        Ok(o) => o,
        Err(e) => return error(format!("quel: {e}")),
    };
    shared.counters.queries.fetch_add(1, Ordering::Relaxed);
    Reply::Query(quel_reply(&snap, &outputs))
}

/// Mutating scripts are serialized, applied transactionally to a COW
/// clone, and installed as the next epoch. Readers keep answering from
/// the previous snapshot until the install; nothing blocks on the
/// background re-induction this triggers.
fn quel_write(shared: &Shared, script: &str) -> Reply {
    let _writer = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
    let snap = shared.snapshot();
    let mut db = snap.db.clone();
    let mut session = Session::new();
    let outputs = match session.run_script(&mut db, script) {
        Ok(o) => o,
        // The clone is discarded: a failing script mutates nothing.
        Err(e) => return error(format!("quel: {e}")),
    };
    let next = snap.after_write(db);
    // Durability barrier: the record must be on the log (under the
    // configured fsync policy) before the new epoch is published or the
    // client acknowledged. On failure nothing is installed — the writer
    // rewound the log, so the epoch is free for the client's retry.
    let mut committed = None;
    if let Some(dur) = &shared.durability {
        let record = Record::write(next.epoch, next.data_version, script).with_term(next.term);
        let span = intensio_obs::Span::stage("wal.append", intensio_obs::Stage::WalAppend)
            .with_field("epoch", next.epoch);
        let result = dur
            .wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .append(&record);
        // The commit span's ids ride the replication stream so a
        // follower's apply span joins this trace.
        let trace = span.trace_ids();
        drop(span);
        if let Err(e) = result {
            return error(format!("durability: {e}"));
        }
        committed = Some((record, trace));
    }
    let reply = {
        let mut r = quel_reply(&next, &outputs);
        r.cached = false;
        r
    };
    shared.install(next);
    // Fan the committed record out to replication streams after the
    // install, still under `write_lock`: every stream observes records
    // in strict epoch order.
    if let Some((record, trace)) = committed {
        shared.repl_hub.publish(&record, trace);
    }
    shared.counters.writes.fetch_add(1, Ordering::Relaxed);
    maybe_checkpoint(shared);
    shared.wake_inducer();
    Reply::Query(reply)
}

/// Hand the checkpoint to the background checkpointer when enough
/// records have accumulated. The request path only peeks at the cadence
/// counter under a briefly held WAL lock; the expensive full-state
/// materialization happens on the checkpointer thread, off the write
/// path (see [`checkpointer_loop`]).
fn maybe_checkpoint(shared: &Shared) {
    let Some(dur) = &shared.durability else {
        return;
    };
    let due = dur
        .wal
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .checkpoint_due();
    if due {
        shared.wake_checkpointer();
    }
}

/// Materialize `snap` as an on-disk checkpoint, with the same rule-less
/// fallback [`checkpoint_snapshot`] applies on the boot path.
fn write_snapshot_checkpoint(
    dir: &Path,
    snap: &Snapshot,
) -> Result<intensio_wal::CheckpointRef, intensio_wal::WalError> {
    let rules = snap.dictionary.rules();
    let with_rules = (snap.rules_fresh && !rules.is_empty()).then_some(rules);
    match write_checkpoint(
        dir,
        &snap.db,
        with_rules,
        snap.epoch,
        snap.data_version,
        snap.term,
    ) {
        Ok(c) => Ok(c),
        Err(_) if with_rules.is_some() => write_checkpoint(
            dir,
            &snap.db,
            None,
            snap.epoch,
            snap.data_version,
            snap.term,
        ),
        Err(e) => Err(e),
    }
}

/// One checkpointer pass: pin the current snapshot, materialize it into
/// a checkpoint directory with *no* locks held (appends, reads, and
/// STATS all keep flowing), then take the WAL lock just long enough to
/// delete the segments the checkpoint fully covers. Records appended
/// while the checkpoint was being written are above its epoch and are
/// never deleted ([`Wal::truncate_covered`]). Failure is not fatal: the
/// log keeps growing and the next due write re-signals.
fn checkpoint_once(shared: &Shared) {
    let Some(dur) = &shared.durability else {
        return;
    };
    let snap = shared.snapshot();
    let started = std::time::Instant::now();
    match write_snapshot_checkpoint(&dur.dir, &snap) {
        Ok(_) => {
            let truncated = dur
                .wal
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .truncate_covered(snap.epoch);
            match truncated {
                Ok(()) => {
                    intensio_obs::gauge("wal.checkpoint_ms", started.elapsed().as_millis() as i64);
                }
                Err(_) => intensio_obs::inc("wal.checkpoint_failures"),
            }
        }
        Err(_) => intensio_obs::inc("wal.checkpoint_failures"),
    }
}

/// The background checkpointer loop. Signaled by the write path when
/// the cadence counter comes due; coalesces bursts (a signal raised
/// mid-pass triggers one more pass against the then-newer snapshot). A
/// signal pending at shutdown still runs, so the final checkpoint
/// bounds the next boot's replay.
fn checkpointer_loop(shared: &Shared) {
    loop {
        let (dirty, shutdown) = {
            let mut flags = shared.ckpt.lock().unwrap_or_else(|e| e.into_inner());
            while !flags.dirty && !flags.shutdown {
                let (next, _) = shared
                    .ckpt_wake
                    .wait_timeout(flags, timeouts::BACKGROUND_WAIT_TICK)
                    .unwrap_or_else(|e| e.into_inner());
                flags = next;
            }
            let out = (flags.dirty, flags.shutdown);
            flags.dirty = false;
            out
        };
        if dirty {
            let outcome =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| checkpoint_once(shared)));
            if outcome.is_err() {
                intensio_obs::inc("wal.checkpoint_failures");
            }
        }
        if shutdown {
            return;
        }
    }
}

fn quel_reply(snap: &Snapshot, outputs: &[Output]) -> QueryReply {
    let mut affected = None;
    let mut result: Option<&Relation> = None;
    for out in outputs {
        match out {
            Output::Relation(r) => result = Some(r),
            Output::Affected(n) => *affected.get_or_insert(0) += n,
            Output::None | Output::Stored(_) => {}
        }
    }
    let (columns, rows) = match result {
        Some(r) => render_relation(r),
        None => (Vec::new(), Vec::new()),
    };
    QueryReply {
        epoch: snap.epoch,
        cached: false,
        rules_fresh: snap.rules_fresh,
        degraded: false,
        soundness: Soundness::None,
        columns,
        rows,
        intensional: Arc::new(IntensionalAnswer::default()),
        headline: None,
        summary: None,
        affected,
    }
}

fn render_relation(rel: &Relation) -> (Vec<String>, Vec<Vec<String>>) {
    let columns = rel
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let rows = rel
        .iter()
        .map(|t| t.values().iter().map(|v| v.render_bare()).collect())
        .collect();
    (columns, rows)
}

fn error(message: String) -> Reply {
    Reply::Error { message }
}

/// One attempt of the background inducer.
enum Induce {
    /// Rules were already fresh; nothing to do.
    Idle,
    /// A fresh rule set was installed.
    Installed,
    /// A write landed while learning; the rules describe old data.
    Raced,
    /// Induction failed (e.g. an injected fault); retry with backoff.
    Failed,
    /// The static-analysis gate found Error-level defects in the
    /// induced rules. Deterministic — re-inducing the same data yields
    /// the same rejection — so there is no retry; the service keeps its
    /// previous rules until the data changes again.
    Rejected,
}

fn induce_once(shared: &Shared) -> Induce {
    // Only a primary learns: follower rule sets arrive over the wire,
    // and a candidate must not fork the rule lineage pre-promotion.
    if !shared.is_primary() {
        return Induce::Idle;
    }
    let snap = shared.snapshot();
    if snap.rules_fresh {
        return Induce::Idle;
    }
    let ils = Ils::new(snap.dictionary.model(), shared.cfg.induction);
    let mut rules = match ils.induce_parallel(&snap.db, shared.cfg.induction_threads) {
        Ok(out) => out.rules,
        Err(_) => return Induce::Failed,
    };
    if shared.cfg.check_rulesets && lint_rule_set(&shared.cfg, &rules, &snap.db).has_errors() {
        shared.note_ruleset_rejected();
        return Induce::Rejected;
    }
    // Prune before the durable encode below: the WAL record and the
    // bytes shipped to followers must carry the set actually served.
    shared.note_rules_pruned(prune_rule_set(&mut rules));

    let _writer = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
    let current = shared.snapshot();
    if current.data_version != snap.data_version {
        return Induce::Raced;
    }
    // Durable mode: encode the rule set for the log *before* consuming
    // it. An install may not advance the epoch without a WAL record —
    // a silent gap would make every later record unreplayable.
    let rules_body = if shared.durability.is_some() {
        match rules_codec::rules_to_bytes(&rules) {
            Ok(body) => Some(body),
            Err(_) => {
                intensio_obs::inc("wal.unloggable_rulesets");
                return Induce::Failed;
            }
        }
    } else {
        None
    };
    let mut dictionary = current.dictionary.clone();
    dictionary.set_rules(rules);
    let next = current.after_induction(dictionary);
    let mut committed = None;
    if let (Some(dur), Some(body)) = (&shared.durability, rules_body) {
        let record = Record::rules(next.epoch, next.data_version, body).with_term(next.term);
        let span = intensio_obs::Span::stage("wal.append", intensio_obs::Stage::WalAppend)
            .with_field("epoch", next.epoch);
        let result = dur
            .wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .append(&record);
        // Inducer-thread appends run outside any request trace, so this
        // is normally `None` — the record then ships untraced.
        let trace = span.trace_ids();
        drop(span);
        if result.is_err() {
            return Induce::Failed;
        }
        committed = Some((record, trace));
    }
    shared.install(next);
    // Rule installs replicate like writes: publish after install, still
    // under `write_lock`, so followers see the same epoch order.
    if let Some((record, trace)) = committed {
        shared.repl_hub.publish(&record, trace);
    }
    shared.counters.inductions.fetch_add(1, Ordering::Relaxed);
    maybe_checkpoint(shared);
    Induce::Installed
}

/// The background induction loop: wake on write, learn from a pinned
/// snapshot, install only if the data did not move underneath. A failed
/// or panicking attempt self-heals: it retries with the capped,
/// jittered exponential backoff of [`intensio_fault::Backoff`] (the
/// same helper the follower reconnect loop uses) until induction
/// succeeds, so `rules_fresh` always recovers once the fault clears.
fn inducer_loop(shared: &Shared) {
    let mut backoff = intensio_fault::Backoff::new(
        shared.cfg.induction_backoff,
        shared.cfg.induction_backoff_cap,
        0,
    );
    loop {
        {
            let mut flags = shared.induce.lock().unwrap_or_else(|e| e.into_inner());
            while !flags.dirty && !flags.shutdown {
                let (next, _) = shared
                    .induce_wake
                    .wait_timeout(flags, timeouts::BACKGROUND_WAIT_TICK)
                    .unwrap_or_else(|e| e.into_inner());
                flags = next;
            }
            if flags.shutdown {
                return;
            }
            flags.dirty = false;
        }

        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| induce_once(shared)));
        match outcome {
            // Rejection is deterministic: retrying against unchanged
            // data cannot succeed, so wait for the next write instead.
            Ok(Induce::Idle) | Ok(Induce::Installed) | Ok(Induce::Rejected) => backoff.reset(),
            Ok(Induce::Raced) => {
                // Go around and learn against the newer data.
                backoff.reset();
                shared.wake_inducer();
            }
            Ok(Induce::Failed) | Err(_) => {
                shared
                    .counters
                    .induction_retries
                    .fetch_add(1, Ordering::Relaxed);
                intensio_obs::inc("serve.induction_retries");
                let delay = backoff.next_delay();
                let mut flags = shared.induce.lock().unwrap_or_else(|e| e.into_inner());
                if !flags.shutdown {
                    let (next, _) = shared
                        .induce_wake
                        .wait_timeout(flags, delay)
                        .unwrap_or_else(|e| e.into_inner());
                    flags = next;
                }
                if flags.shutdown {
                    return;
                }
                // Re-arm: the retry must happen even with no new write.
                flags.dirty = true;
            }
        }
    }
}

/// How a follower's stream attempt ended.
enum FollowEnd {
    /// The service is shutting down; exit the loop.
    Shutdown,
    /// The connection failed, broke, or the primary ended the stream;
    /// reconnect after a backoff.
    Lost,
    /// A candidate's failover deadline expired with no live stream;
    /// the replicator loop runs the promotion protocol.
    Deadline,
}

/// Whether a candidate's failover clock has expired. `deadline` is the
/// seeded per-node promotion deadline (see [`replicator_loop`]).
fn failover_due(shared: &Shared, deadline: std::time::Duration) -> bool {
    shared.role() == Role::Candidate
        && shared
            .repl
            .heartbeat_age_ms()
            .is_some_and(|age| std::time::Duration::from_millis(age) >= deadline)
}

/// The follower-side replication driver: connect to a primary out of
/// the target rotation, request the tail after the local epoch, apply
/// what arrives, and on any break reconnect (rotating to the next
/// target) with the capped jittered backoff of
/// [`intensio_fault::Backoff`]. A divergence (epoch gap, failed
/// replay) also lands here: the reconnect re-requests from the local
/// epoch, and the primary's snapshot fallback repairs the state.
///
/// On a **candidate**, this loop doubles as the failover watchdog: if
/// no stream frame arrives for the node's promotion deadline —
/// `failover_timeout/2` plus a jitter drawn seeded from
/// `[timeout/2, timeout)`, i.e. a deadline in `[timeout, 1.5*timeout)`
/// — it first sweeps the other targets for an already-promoted primary
/// (joining it instead of dueling), then promotes itself via
/// [`promote`]. Runs on every node; it idles while the node is
/// primary, so a demotion simply un-idles it.
fn replicator_loop(shared: &Shared) {
    let repl = &shared.repl;
    let mut backoff = intensio_fault::Backoff::new(
        std::time::Duration::from_millis(100),
        std::time::Duration::from_secs(5),
        shared.cfg.failover_seed,
    );
    // The promotion deadline is fixed per process: dueling candidates
    // with equal timeouts still diverge through their seeds.
    let deadline = shared.cfg.failover_timeout / 2
        + intensio_fault::Backoff::new(
            shared.cfg.failover_timeout,
            shared.cfg.failover_timeout,
            shared.cfg.failover_seed.wrapping_add(1),
        )
        .delay_for(0);
    // Arm the failover clock at boot: a candidate that never reaches
    // any primary must still promote after the deadline.
    repl.note_heartbeat();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.is_primary() {
            std::thread::sleep(std::time::Duration::from_millis(50));
            continue;
        }
        if failover_due(shared, deadline) {
            if let Some(primary) = discover_promoted_primary(shared) {
                // Someone else already won: join them instead of
                // splitting the cluster into dueling primaries.
                repl.prefer_target(&primary);
                repl.note_heartbeat();
            } else {
                promote(shared);
                continue;
            }
        }
        let end = follow_once(shared, repl, deadline);
        // `connected` doubles as the made-progress flag: a stream that
        // got as far as the handshake earns a backoff reset.
        let progressed = repl.connected.swap(false, Ordering::Relaxed);
        match end {
            FollowEnd::Shutdown => return,
            // Re-enter the loop head, which re-checks the clock.
            FollowEnd::Deadline => {}
            FollowEnd::Lost => {
                repl.reconnects.fetch_add(1, Ordering::Relaxed);
                intensio_obs::inc("repl.reconnects");
                if progressed {
                    backoff.reset();
                }
                let until = std::time::Instant::now() + backoff.next_delay();
                while std::time::Instant::now() < until {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if failover_due(shared, deadline) {
                        break; // don't sit out the backoff while due
                    }
                    std::thread::sleep(std::time::Duration::from_millis(25));
                }
            }
        }
    }
}

/// Pre-promotion sweep: poll every target's `TELEMETRY` for a node
/// already serving as primary at this node's term or higher. Returns
/// its address, or `None` when this candidate should promote itself.
fn discover_promoted_primary(shared: &Shared) -> Option<String> {
    let targets = shared
        .repl
        .targets
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone();
    let own_term = shared.current_term();
    targets
        .iter()
        .find(|addr| {
            poll_peer(&shared.cfg.net_label, addr)
                .is_some_and(|peer| peer.role == "primary" && peer.term >= own_term)
        })
        .cloned()
}

/// Promote this candidate to primary: bump the term, fsync a `TERM`
/// fencepost record into the local WAL *before* accepting any write,
/// install the new-term snapshot, and announce the term on every
/// replication stream (the fencepost ships like any record). The role
/// flips last, so no write can be acknowledged under the new term
/// until the term is durable.
fn promote(shared: &Shared) {
    let _writer = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
    if shared.role() != Role::Candidate {
        return; // demoted (or already promoted) while waiting for the lock
    }
    let current = shared.snapshot();
    let new_term = shared.current_term().max(current.term) + 1;
    let next = current.after_term(new_term);
    let mut committed = None;
    if let Some(dur) = &shared.durability {
        let record = Record::term_bump(new_term, next.epoch, next.data_version);
        let mut wal = dur.wal.lock().unwrap_or_else(|e| e.into_inner());
        // The fencepost is fsynced regardless of the configured policy:
        // a promotion that is not durable is not a promotion.
        if wal.append(&record).is_err() || wal.sync().is_err() {
            intensio_obs::inc("repl.promotion_failures");
            shared.repl.note_heartbeat(); // re-arm; retry after another deadline
            return;
        }
        committed = Some(record);
    }
    shared.install(next);
    if let Some(record) = committed {
        shared.repl_hub.publish(&record, None);
    }
    shared
        .role
        .store(Role::Primary.as_usize(), Ordering::SeqCst);
    shared.repl.connected.store(false, Ordering::Relaxed);
    intensio_obs::inc("repl.promotions");
    intensio_obs::gauge("repl.term", new_term as i64);
    intensio_obs::gauge("repl.lag_epochs", 0);
    let _ = intensio_obs::flight_record("promotion");
    // The rules may be stale (mid-induction primary death); the
    // inducer un-idles now that the node is primary.
    shared.wake_inducer();
    eprintln!(
        "intensio-serve: promoted to primary at term {new_term} \
         (heartbeat lost past the failover deadline)"
    );
}

/// One stream attempt: connect to the rotation's current target, send
/// `REPLICATE <local epoch> term=<own term>`, and apply messages until
/// the stream breaks, the failover deadline expires, or shutdown.
fn follow_once(shared: &Shared, repl: &ReplState, deadline: std::time::Duration) -> FollowEnd {
    use std::io::Write as _;
    let target = {
        let targets = repl.targets.lock().unwrap_or_else(|e| e.into_inner());
        if targets.is_empty() {
            return FollowEnd::Lost;
        }
        let idx = repl.target_idx.load(Ordering::Relaxed) % targets.len();
        targets[idx].clone()
    };
    // Rotate eagerly: any failure below tries the next target; a
    // healthy stream re-pins its own index on the next reconnect via
    // `prefer_target` or simply wraps around.
    let rotate = || {
        repl.target_idx.fetch_add(1, Ordering::Relaxed);
    };
    let Ok(stream) =
        intensio_net::connect_timeout(&shared.cfg.net_label, &target, timeouts::REPL_CONNECT)
    else {
        rotate();
        return FollowEnd::Lost;
    };
    let setup = stream
        .set_nodelay(true)
        .and_then(|()| stream.set_read_timeout(Some(timeouts::STREAM_READ_TICK)));
    if setup.is_err() {
        rotate();
        return FollowEnd::Lost;
    }
    let Ok(mut writer) = stream.try_clone() else {
        rotate();
        return FollowEnd::Lost;
    };
    // A suffix orphaned by a higher term can only be repaired by a
    // full snapshot shipped at the new term: request from epoch 0.
    let snap = shared.snapshot();
    let from = if repl.force_bootstrap.swap(false, Ordering::SeqCst) {
        0
    } else {
        snap.epoch
    };
    // Announce the term of the last *applied* record (the snapshot's
    // lineage), not the volatile term counter: a deposed primary whose
    // poller already learned the new term via demote() still carries a
    // divergent term-0 suffix, and only the lineage term lets the
    // upstream see that and force a snapshot bootstrap instead of
    // merging a log tail onto ghost records.
    // `node=` announces this follower's net label so the primary can
    // attribute the stream to a cluster link (and link faults can
    // target it from the primary side).
    let node = &shared.cfg.net_label;
    let hello = if node.is_empty() {
        format!("REPLICATE {from} term={}\n", snap.term)
    } else {
        format!("REPLICATE {from} term={} node={node}\n", snap.term)
    };
    if writer
        .write_all(hello.as_bytes())
        .and_then(|()| writer.flush())
        .is_err()
    {
        rotate();
        return FollowEnd::Lost;
    }
    *repl.primary.lock().unwrap_or_else(|e| e.into_inner()) = target;
    let mut reader = std::io::BufReader::new(stream);
    let mut line = String::new();
    // Half-open detection is per-stream: this clock starts at the
    // handshake and resets on every frame. It is NOT the promotion
    // clock (`repl.last_heartbeat`) — resetting that one per reconnect
    // attempt would postpone a candidate's failover deadline forever.
    let mut last_frame = std::time::Instant::now();
    let half_open_after = shared
        .cfg
        .repl_heartbeat
        .saturating_mul(HALF_OPEN_HEARTBEATS);
    loop {
        match std::io::BufRead::read_line(&mut reader, &mut line) {
            Ok(0) => {
                rotate();
                return FollowEnd::Lost;
            }
            Ok(_) => {
                last_frame = std::time::Instant::now();
                let stream_line = std::mem::take(&mut line);
                let msg = match StreamMsg::parse(&stream_line) {
                    Ok(msg) => msg,
                    Err(_) => {
                        intensio_obs::inc("repl.bad_stream_lines");
                        rotate();
                        return FollowEnd::Lost;
                    }
                };
                match apply_stream_msg(shared, repl, msg) {
                    Ok(true) => {}
                    Ok(false) => {
                        rotate();
                        return FollowEnd::Lost;
                    }
                    Err(_) => {
                        intensio_obs::inc("repl.apply_failures");
                        rotate();
                        return FollowEnd::Lost;
                    }
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    return FollowEnd::Shutdown;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle tick; a partial line survives in `line`.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return FollowEnd::Shutdown;
                }
                if let Some(age) = repl.heartbeat_age_ms() {
                    intensio_obs::gauge("repl.heartbeat_age_ms", age as i64);
                }
                if failover_due(shared, deadline) {
                    return FollowEnd::Deadline;
                }
                // Half-open stream: the socket is "connected" but no
                // frame (not even a heartbeat) has crossed it for 3×
                // the heartbeat cadence — a silent partition, a peer
                // frozen mid-write, or a NAT that dropped the mapping.
                // Blocking forever here would pin the follower to a
                // dead primary; drop and redial instead.
                if last_frame.elapsed() > half_open_after {
                    repl.half_open_drops.fetch_add(1, Ordering::Relaxed);
                    intensio_obs::inc("repl.half_open_drops");
                    rotate();
                    return FollowEnd::Lost;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                rotate();
                return FollowEnd::Lost;
            }
        }
    }
}

/// Apply one stream message on the follower. `Ok(true)` keeps the
/// stream, `Ok(false)` ends it cleanly (the primary said stop), `Err`
/// is a divergence that forces a reconnect-and-rebootstrap.
fn apply_stream_msg(shared: &Shared, repl: &ReplState, msg: StreamMsg) -> Result<bool, String> {
    // Every frame counts as a heartbeat: the failover clock measures
    // stream liveness, not write traffic.
    repl.note_heartbeat();
    match msg {
        StreamMsg::Ok { epoch, term } | StreamMsg::Heartbeat { epoch, term } => {
            if term < shared.snapshot().term {
                // A deposed primary's stream: its lineage is fenced.
                // Drop the stream; the rotation tries the next target.
                repl.note_stale_term();
                return Ok(false);
            }
            repl.primary_epoch.fetch_max(epoch, Ordering::Relaxed);
            repl.connected.store(true, Ordering::Relaxed);
            shared.update_lag();
            Ok(true)
        }
        StreamMsg::Error(_) => {
            intensio_obs::inc("repl.stream_errors");
            Ok(false)
        }
        StreamMsg::Snapshot {
            epoch,
            data_version,
            term,
            db,
            rules,
        } => {
            apply_wire_snapshot(
                shared,
                repl,
                epoch,
                data_version,
                term,
                &db,
                rules.as_deref(),
            )?;
            Ok(true)
        }
        StreamMsg::Record { rec, trace } => {
            if rec.term < shared.snapshot().term {
                repl.note_stale_term();
                return Ok(false);
            }
            apply_record(shared, repl, &rec, trace)?;
            Ok(true)
        }
    }
}

/// Install a full-state bootstrap shipped by the primary (the log no
/// longer covered this follower's epoch).
///
/// Term rules: a snapshot below this node's term is a deposed
/// primary's state and is refused outright (`stale_term_rejections`).
/// A same-term snapshot may never rewind the local epoch — that would
/// silently drop durably applied records — so an epoch regression is
/// an explicit wire error (`repl.snapshot_regressions`) and the
/// follower re-syncs from its own durable epoch on reconnect. Only a
/// *higher*-term snapshot may rewind: a failover legitimately
/// truncates the old lineage's unshipped suffix.
fn apply_wire_snapshot(
    shared: &Shared,
    repl: &ReplState,
    epoch: u64,
    data_version: u64,
    term: u64,
    db_bytes: &[u8],
    rules_bytes: Option<&[u8]>,
) -> Result<(), String> {
    let db = repl_codec::db_from_bytes(db_bytes).map_err(|e| e.to_string())?;
    let _writer = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
    let current = shared.snapshot();
    if term < current.term {
        repl.note_stale_term();
        return Err(format!(
            "shipped snapshot carries fenced term {term} (local term {})",
            current.term
        ));
    }
    repl.primary_epoch.fetch_max(epoch, Ordering::Relaxed);
    if epoch < current.epoch && term == current.term {
        intensio_obs::inc("repl.snapshot_regressions");
        return Err(format!(
            "shipped snapshot at epoch {epoch} would rewind local epoch {} within term {term}; \
             refusing silent rewind — re-syncing from the durable epoch",
            current.epoch
        ));
    }
    if epoch == current.epoch && term == current.term {
        shared.update_lag();
        return Ok(()); // already caught up (reconnect overlap)
    }
    let mut dictionary = DataDictionary::new(current.dictionary.model().clone());
    let mut rules_fresh = false;
    if let Some(bytes) = rules_bytes {
        match rules_codec::rules_from_bytes(bytes) {
            // Shipped rules pass the same static-analysis gate a local
            // install would: a primary/follower checker version skew
            // must not smuggle rejected rules into service.
            Ok(mut rules) => {
                if shared.cfg.check_rulesets && lint_rule_set(&shared.cfg, &rules, &db).has_errors()
                {
                    shared.note_ruleset_rejected();
                } else {
                    shared.note_rules_pruned(prune_rule_set(&mut rules));
                    dictionary.set_rules(rules);
                    rules_fresh = true;
                }
            }
            Err(_) => intensio_obs::inc("repl.undecodable_rulesets"),
        }
    }
    let snap = Snapshot::recovered(epoch, data_version, term, db, dictionary, rules_fresh);
    if let Some(dur) = &shared.durability {
        // A wire snapshot papers over exactly the records this
        // follower's own log is missing: persist it as a local
        // checkpoint so a restart recovers contiguously, then retire
        // the now-covered local segments.
        write_snapshot_checkpoint(&dur.dir, &snap)
            .map_err(|e| format!("follower checkpoint: {e}"))?;
        let _ = dur
            .wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .truncate_covered(epoch);
    }
    shared.install(snap);
    intensio_obs::inc("repl.snapshots_applied");
    shared.update_lag();
    Ok(())
}

/// Apply one shipped record on the follower: replay a write through the
/// same QUEL session a primary uses, or install a (re-gated) rule set.
/// Exactly-once by construction — a record at or below the local epoch
/// is the bootstrap/reconnect overlap and is skipped, a record further
/// ahead than `local + 1` is a chain break.
fn apply_record(
    shared: &Shared,
    repl: &ReplState,
    rec: &Record,
    trace: Option<(u64, u64)>,
) -> Result<(), String> {
    // Join the primary-side commit's trace (if the record shipped with
    // one): the apply span below cites the commit span as its parent,
    // so one trace covers a write from client admission on the primary
    // through its installation on this follower.
    let _trace = intensio_obs::with_context(trace.map(|(trace_id, parent_span)| {
        intensio_obs::TraceContext {
            trace_id,
            parent_span,
        }
    }));
    repl.primary_epoch.fetch_max(rec.epoch, Ordering::Relaxed);
    let _writer = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
    let current = shared.snapshot();
    if rec.epoch <= current.epoch {
        if rec.term > current.term {
            // A higher-term record at or below the local epoch means
            // this node's suffix belongs to a fenced lineage (it was
            // ahead of the new primary's fork point). Only a full
            // snapshot shipped at the new term may rewind it.
            repl.force_bootstrap.store(true, Ordering::SeqCst);
            return Err(format!(
                "term conflict: shipped record (term {}, epoch {}) fences local suffix \
                 (term {}, epoch {}); re-bootstrapping",
                rec.term, rec.epoch, current.term, current.epoch
            ));
        }
        shared.update_lag();
        return Ok(()); // duplicate from the bootstrap overlap: never re-applied
    }
    if rec.epoch != current.epoch + 1 {
        return Err(format!(
            "record chain gap: local epoch {}, shipped {}",
            current.epoch, rec.epoch
        ));
    }
    let mut apply_span = intensio_obs::Span::stage("repl.apply", intensio_obs::Stage::ReplApply);
    apply_span.field("epoch", rec.epoch);
    apply_span.field("kind", rec.kind.name());
    let next = match rec.kind {
        RecordKind::Write => {
            let script = rec
                .script()
                .ok_or_else(|| format!("write record at epoch {} is not UTF-8", rec.epoch))?;
            let mut db = current.db.clone();
            let mut session = Session::new();
            session
                .run_script(&mut db, script)
                .map_err(|e| format!("replaying shipped write at epoch {}: {e}", rec.epoch))?;
            Snapshot::recovered(
                rec.epoch,
                rec.data_version,
                rec.term,
                db,
                current.dictionary.clone(),
                false,
            )
        }
        // A promotion fencepost: adopt the new term; data, dictionary,
        // and rule freshness are unchanged (the epoch is consumed so
        // the bump ships through the exactly-once chain).
        RecordKind::Term => Snapshot::recovered(
            rec.epoch,
            rec.data_version,
            rec.term,
            current.db.clone(),
            current.dictionary.clone(),
            current.rules_fresh,
        ),
        RecordKind::Rules => {
            let mut dictionary = current.dictionary.clone();
            let mut rules_fresh = false;
            match rules_codec::rules_from_bytes(&rec.body) {
                Ok(mut rules) => {
                    // Re-gated like a local install; the epoch advances
                    // either way (contiguity with the primary), but
                    // rejected rules are never served.
                    if shared.cfg.check_rulesets
                        && lint_rule_set(&shared.cfg, &rules, &current.db).has_errors()
                    {
                        shared.note_ruleset_rejected();
                    } else {
                        shared.note_rules_pruned(prune_rule_set(&mut rules));
                        dictionary.set_rules(rules);
                        rules_fresh = true;
                    }
                }
                Err(_) => intensio_obs::inc("repl.undecodable_rulesets"),
            }
            Snapshot::recovered(
                rec.epoch,
                rec.data_version,
                rec.term,
                current.db.clone(),
                dictionary,
                rules_fresh,
            )
        }
    };
    // A durable follower logs the record before installing it, so a
    // restart recovers locally and re-joins from its recovered epoch.
    if let Some(dur) = &shared.durability {
        dur.wal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .append(rec)
            .map_err(|e| format!("follower wal append: {e}"))?;
    }
    shared.install(next);
    drop(apply_span);
    repl.records_applied.fetch_add(1, Ordering::Relaxed);
    intensio_obs::inc("repl.records_applied");
    maybe_checkpoint(shared);
    shared.update_lag();
    Ok(())
}
