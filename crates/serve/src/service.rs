//! The concurrent intensional query service.
//!
//! A [`Service`] owns one epoch-versioned [`Snapshot`] behind a
//! read/write lock, a worker pool draining a request queue, an LRU
//! [`AnswerCache`], and a background induction thread. The
//! concurrency story:
//!
//! * **Readers never block on writers or on induction.** A query pins
//!   the current `Arc<Snapshot>` under a briefly held read lock and
//!   computes against that immutable state.
//! * **Writers are serialized** by a dedicated mutation lock. A write
//!   clones the database (copy-on-write — only touched relations are
//!   deep-copied), applies the whole QUEL script to the clone, and
//!   installs the result as a new snapshot; a failing script installs
//!   nothing. The induced rules carry over, flagged stale
//!   (`rules_fresh = false`), and the background inducer is woken.
//! * **Induction runs off the request path** on its own thread, using
//!   the parallel ILS driver. It learns from a pinned snapshot and
//!   installs the new rule set only if the data version is unchanged —
//!   otherwise it simply goes around again.

use crate::cache::AnswerCache;
use crate::snapshot::Snapshot;
use intensio_core::DataDictionary;
use intensio_induction::{Ils, InductionConfig};
use intensio_inference::{
    condition_fingerprint, InferenceConfig, InferenceEngine, IntensionalAnswer,
};
use intensio_ker::model::KerModel;
use intensio_quel::{AccessKind, Output, Session};
use intensio_sql::{analyze, parse};
use intensio_storage::catalog::Database;
use intensio_storage::relation::Relation;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, SyncSender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

/// Tuning knobs for [`Service::with_config`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads executing requests.
    pub workers: usize,
    /// Maximum cached intensional answers.
    pub cache_capacity: usize,
    /// ILS configuration for (re-)induction.
    pub induction: InductionConfig,
    /// Threads for the parallel ILS driver.
    pub induction_threads: usize,
    /// Inference configuration for every query.
    pub inference: InferenceConfig,
    /// Induce rules synchronously before serving the first request.
    pub learn_on_open: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServiceConfig {
            workers: cores.clamp(2, 8),
            cache_capacity: 256,
            induction: InductionConfig::default(),
            induction_threads: cores.clamp(1, 4),
            inference: InferenceConfig::default(),
            learn_on_open: true,
        }
    }
}

/// A request to the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// A SQL query: extensional + intensional answer.
    Sql(String),
    /// A QUEL script (possibly multi-statement). Scripts with any
    /// mutating statement go through the serialized write path.
    Quel(String),
    /// Service statistics.
    Stats,
    /// Answer provenance for a SQL query: which rules fired, with what
    /// support, in which direction — without the extensional rows.
    Explain(String),
}

impl Request {
    /// The request's wire verb, for span labels and counters.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Sql(_) => "sql",
            Request::Quel(_) => "quel",
            Request::Stats => "stats",
            Request::Explain(_) => "explain",
        }
    }
}

/// Which soundness guarantee the intensional part of an answer carries
/// (paper §4): forward conclusions contain the answer set, backward
/// characterizations are contained in it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Soundness {
    /// Forward conclusions only: characterization ⊇ answer set.
    Superset,
    /// Backward characterizations only: characterization ⊆ answer set.
    Subset,
    /// Both kinds present.
    Mixed,
    /// No intensional characterization was derived.
    None,
}

impl Soundness {
    /// Classify an intensional answer.
    pub fn of(a: &IntensionalAnswer) -> Soundness {
        match (a.certain.is_empty(), a.partial.is_empty()) {
            (false, true) => Soundness::Superset,
            (true, false) => Soundness::Subset,
            (false, false) => Soundness::Mixed,
            (true, true) => Soundness::None,
        }
    }

    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Soundness::Superset => "superset",
            Soundness::Subset => "subset",
            Soundness::Mixed => "mixed",
            Soundness::None => "none",
        }
    }
}

/// A successful query answer plus serving metadata.
#[derive(Debug, Clone)]
pub struct QueryReply {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Whether the intensional part came from the cache.
    pub cached: bool,
    /// Whether the snapshot's rules matched its data version.
    pub rules_fresh: bool,
    /// Soundness class of the intensional part.
    pub soundness: Soundness,
    /// Output column names (empty for pure mutations).
    pub columns: Vec<String>,
    /// Extensional rows, values rendered bare.
    pub rows: Vec<Vec<String>>,
    /// The intensional answer (shared with the cache).
    pub intensional: Arc<IntensionalAnswer>,
    /// One-sentence intensional summary, if derivable.
    pub headline: Option<String>,
    /// Aggregate response over the type hierarchy, if any.
    pub summary: Option<String>,
    /// Tuples affected, for mutating QUEL scripts.
    pub affected: Option<usize>,
}

/// The provenance behind one query's intensional answer.
#[derive(Debug, Clone)]
pub struct ExplainReply {
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// Whether the intensional part came from the cache.
    pub cached: bool,
    /// Whether the snapshot's rules matched its data version.
    pub rules_fresh: bool,
    /// Soundness class of the intensional part.
    pub soundness: Soundness,
    /// The intensional answer; `intensional.provenance` lists every
    /// rule application (id, support, direction, conclusion) and
    /// `intensional.steps` the full inference trace.
    pub intensional: Arc<IntensionalAnswer>,
    /// One-sentence intensional summary, if derivable.
    pub headline: Option<String>,
}

/// A point-in-time view of service counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReply {
    /// Current knowledge epoch.
    pub epoch: u64,
    /// Current data version.
    pub data_version: u64,
    /// Whether current rules match the current data.
    pub rules_fresh: bool,
    /// Queries answered (SQL + read-only QUEL).
    pub queries: u64,
    /// Intensional cache hits.
    pub cache_hits: u64,
    /// Intensional cache misses.
    pub cache_misses: u64,
    /// Cached answers right now.
    pub cache_len: u64,
    /// Maximum cached answers (the LRU capacity).
    pub cache_capacity: u64,
    /// Mutating scripts applied.
    pub writes: u64,
    /// Background rule-set installs completed.
    pub inductions: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Worker threads.
    pub workers: u64,
    /// Full metrics snapshot: pipeline-stage latency histograms
    /// (p50/p95/p99) and every named counter/gauge.
    pub metrics: intensio_obs::MetricsSnapshot,
}

/// What the service hands back for one request.
#[derive(Debug, Clone)]
pub enum Reply {
    /// A query (or mutation) completed.
    Query(QueryReply),
    /// Statistics.
    Stats(StatsReply),
    /// Answer provenance.
    Explain(ExplainReply),
    /// The request failed; the service itself is unaffected.
    Error {
        /// Human-readable cause.
        message: String,
    },
}

impl Reply {
    /// The query payload, if this is a query reply.
    pub fn query(&self) -> Option<&QueryReply> {
        match self {
            Reply::Query(q) => Some(q),
            _ => None,
        }
    }

    /// The explain payload, if this is an explain reply.
    pub fn explain(&self) -> Option<&ExplainReply> {
        match self {
            Reply::Explain(e) => Some(e),
            _ => None,
        }
    }

    /// The error message, if this is an error reply.
    pub fn error(&self) -> Option<&str> {
        match self {
            Reply::Error { message } => Some(message),
            _ => None,
        }
    }
}

/// Service construction failure (initial induction).
#[derive(Debug)]
pub struct ServeError(pub String);

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serve: {}", self.0)
    }
}

impl std::error::Error for ServeError {}

#[derive(Default)]
struct Counters {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    writes: AtomicU64,
    inductions: AtomicU64,
    errors: AtomicU64,
}

#[derive(Default)]
struct InduceFlags {
    dirty: bool,
    shutdown: bool,
}

struct Shared {
    state: RwLock<Arc<Snapshot>>,
    /// Serializes the write path (QUEL mutations and rule installs), so
    /// epoch successors are computed from the snapshot they replace.
    write_lock: Mutex<()>,
    cache: Mutex<AnswerCache>,
    cfg: ServiceConfig,
    counters: Counters,
    induce: Mutex<InduceFlags>,
    induce_wake: Condvar,
}

impl Shared {
    /// Pin the current snapshot (brief read lock, then lock-free use).
    fn snapshot(&self) -> Arc<Snapshot> {
        self.state.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn install(&self, snapshot: Snapshot) {
        let epoch = snapshot.epoch;
        *self.state.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(snapshot);
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain_epoch(epoch);
        intensio_obs::inc("serve.epoch_swaps");
        intensio_obs::gauge("serve.epoch", epoch as i64);
    }

    fn wake_inducer(&self) {
        let mut flags = self.induce.lock().unwrap_or_else(|e| e.into_inner());
        flags.dirty = true;
        self.induce_wake.notify_all();
    }
}

struct Job {
    request: Request,
    reply_to: SyncSender<Reply>,
    /// When the job entered the queue, for queue-wait telemetry.
    enqueued: std::time::Instant,
}

/// The concurrent intensional query service. See the module docs for
/// the concurrency design; see [`crate::server`] for the TCP front end.
pub struct Service {
    shared: Arc<Shared>,
    queue: Mutex<Option<Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    inducer: Mutex<Option<JoinHandle<()>>>,
}

impl Service {
    /// Open a service over a database and its KER model with default
    /// configuration (induces rules before serving).
    pub fn open(db: Database, model: KerModel) -> Result<Service, ServeError> {
        Service::with_config(db, model, ServiceConfig::default())
    }

    /// Open a service with explicit configuration.
    pub fn with_config(
        db: Database,
        model: KerModel,
        cfg: ServiceConfig,
    ) -> Result<Service, ServeError> {
        let mut dictionary = DataDictionary::new(model);
        let mut rules_fresh = false;
        if cfg.learn_on_open {
            let ils = Ils::new(dictionary.model(), cfg.induction);
            let out = ils
                .induce_parallel(&db, cfg.induction_threads)
                .map_err(|e| ServeError(format!("initial induction failed: {e}")))?;
            dictionary.set_rules(out.rules);
            rules_fresh = true;
        }
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            state: RwLock::new(Arc::new(Snapshot::initial(db, dictionary, rules_fresh))),
            write_lock: Mutex::new(()),
            cache: Mutex::new(AnswerCache::new(cfg.cache_capacity)),
            cfg,
            counters: Counters::default(),
            induce: Mutex::new(InduceFlags::default()),
            induce_wake: Condvar::new(),
        });

        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = shared.clone();
            let rx = rx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("intensio-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .map_err(|e| ServeError(format!("spawning worker: {e}")))?,
            );
        }
        let inducer = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("intensio-inducer".to_string())
                .spawn(move || inducer_loop(&shared))
                .map_err(|e| ServeError(format!("spawning inducer: {e}")))?
        };

        Ok(Service {
            shared,
            queue: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            inducer: Mutex::new(Some(inducer)),
        })
    }

    /// Execute a request on the worker pool and wait for its reply.
    pub fn submit(&self, request: Request) -> Reply {
        let (reply_tx, reply_rx) = std::sync::mpsc::sync_channel(1);
        let sent = {
            let queue = self.queue.lock().unwrap_or_else(|e| e.into_inner());
            match queue.as_ref() {
                Some(tx) => tx
                    .send(Job {
                        request,
                        reply_to: reply_tx,
                        enqueued: std::time::Instant::now(),
                    })
                    .is_ok(),
                None => false,
            }
        };
        if !sent {
            return Reply::Error {
                message: "service is shut down".to_string(),
            };
        }
        reply_rx.recv().unwrap_or(Reply::Error {
            message: "worker dropped the request".to_string(),
        })
    }

    /// Current statistics (answered inline, not via the worker pool).
    pub fn stats(&self) -> StatsReply {
        stats_reply(&self.shared)
    }

    /// Current knowledge epoch.
    pub fn epoch(&self) -> u64 {
        self.shared.snapshot().epoch
    }

    /// Block until the current snapshot's rules match its data version
    /// (i.e. any triggered background induction has landed), up to
    /// `timeout`. Returns whether freshness was reached. Queries keep
    /// flowing while waiting — this is a test/ops convenience, not a
    /// barrier the request path ever takes.
    pub fn wait_rules_fresh(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.shared.snapshot().rules_fresh {
                return true;
            }
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        // Close the queue; workers drain and exit.
        self.queue.lock().unwrap_or_else(|e| e.into_inner()).take();
        for h in self
            .workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
        {
            let _ = h.join();
        }
        {
            let mut flags = self.shared.induce.lock().unwrap_or_else(|e| e.into_inner());
            flags.shutdown = true;
            self.shared.induce_wake.notify_all();
        }
        if let Some(h) = self
            .inducer
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let job = match job {
            Ok(job) => job,
            Err(_) => return, // queue closed: shut down
        };
        intensio_obs::record_stage(intensio_obs::Stage::QueueWait, job.enqueued.elapsed());
        let reply = execute(shared, &job.request);
        if matches!(reply, Reply::Error { .. }) {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            intensio_obs::inc("serve.errors");
        }
        let _ = job.reply_to.send(reply);
    }
}

fn execute(shared: &Shared, request: &Request) -> Reply {
    let mut span = intensio_obs::Span::stage("serve.request", intensio_obs::Stage::Request)
        .with_field("verb", request.verb());
    if let Request::Sql(q) | Request::Explain(q) | Request::Quel(q) = request {
        // The query text makes the slow-request log actionable.
        span.field("query", truncate(q, 120));
    }
    match request {
        Request::Sql(sql) => exec_sql(shared, sql),
        Request::Quel(script) => exec_quel(shared, script),
        Request::Stats => Reply::Stats(stats_reply(shared)),
        Request::Explain(sql) => exec_explain(shared, sql),
    }
}

/// Truncate to at most `max` characters on a char boundary.
fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max).collect();
        format!("{cut}…")
    }
}

fn stats_reply(shared: &Shared) -> StatsReply {
    let snap = shared.snapshot();
    let c = &shared.counters;
    StatsReply {
        epoch: snap.epoch,
        data_version: snap.data_version,
        rules_fresh: snap.rules_fresh,
        queries: c.queries.load(Ordering::Relaxed),
        cache_hits: c.cache_hits.load(Ordering::Relaxed),
        cache_misses: c.cache_misses.load(Ordering::Relaxed),
        cache_len: shared.cache.lock().unwrap_or_else(|e| e.into_inner()).len() as u64,
        cache_capacity: shared.cfg.cache_capacity as u64,
        writes: c.writes.load(Ordering::Relaxed),
        inductions: c.inductions.load(Ordering::Relaxed),
        errors: c.errors.load(Ordering::Relaxed),
        workers: shared.cfg.workers.max(1) as u64,
        metrics: intensio_obs::metrics().snapshot(),
    }
}

/// Parse + analyze a SQL query and produce its intensional answer,
/// consulting the cache. Shared by [`exec_sql`] and [`exec_explain`];
/// also returns the parsed query so the caller can run the extensional
/// side. `Err` carries a ready-made error reply.
#[allow(clippy::type_complexity)]
fn intensional_for(
    shared: &Shared,
    snap: &Snapshot,
    sql: &str,
) -> Result<(intensio_sql::SelectQuery, Arc<IntensionalAnswer>, bool), Box<Reply>> {
    let q = parse(sql).map_err(|e| Box::new(error(format!("sql parse: {e}"))))?;
    let analysis =
        analyze(&snap.db, &q).map_err(|e| Box::new(error(format!("sql analyze: {e}"))))?;

    let key = (condition_fingerprint(&analysis), snap.epoch);
    let hit = shared
        .cache
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&key);
    let (intensional, cached) = match hit {
        Some(answer) => {
            shared.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            intensio_obs::inc("serve.cache_hits");
            (answer, true)
        }
        None => {
            shared.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            intensio_obs::inc("serve.cache_misses");
            let engine = InferenceEngine::new(
                snap.dictionary.model(),
                snap.dictionary.rules(),
                &snap.db,
                shared.cfg.inference,
            )
            .map_err(|e| Box::new(error(format!("inference: {e}"))))?;
            let answer = Arc::new(engine.infer(&analysis));
            shared
                .cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(key, answer.clone());
            (answer, false)
        }
    };
    Ok((q, intensional, cached))
}

fn exec_sql(shared: &Shared, sql: &str) -> Reply {
    let snap = shared.snapshot();
    let (q, intensional, cached) = match intensional_for(shared, &snap, sql) {
        Ok(r) => r,
        Err(reply) => return *reply,
    };
    let extensional = match intensio_sql::execute(&snap.db, &q) {
        Ok(r) => r,
        Err(e) => return error(format!("sql execute: {e}")),
    };

    let summary = intensio_core::summarize(&extensional, snap.dictionary.model());
    shared.counters.queries.fetch_add(1, Ordering::Relaxed);
    intensio_obs::inc("serve.queries");
    let (columns, rows) = render_relation(&extensional);
    Reply::Query(QueryReply {
        epoch: snap.epoch,
        cached,
        rules_fresh: snap.rules_fresh,
        soundness: Soundness::of(&intensional),
        columns,
        rows,
        headline: intensional.headline(),
        intensional,
        summary: if summary.is_empty() {
            None
        } else {
            Some(summary.to_string().trim_end().to_string())
        },
        affected: None,
    })
}

/// `EXPLAIN`: the provenance of a query's intensional answer — rule
/// ids, supports, and inference directions — without enumerating the
/// extensional rows. Hits the same answer cache as `SQL`.
fn exec_explain(shared: &Shared, sql: &str) -> Reply {
    let snap = shared.snapshot();
    let (_, intensional, cached) = match intensional_for(shared, &snap, sql) {
        Ok(r) => r,
        Err(reply) => return *reply,
    };
    shared.counters.queries.fetch_add(1, Ordering::Relaxed);
    intensio_obs::inc("serve.explains");
    Reply::Explain(ExplainReply {
        epoch: snap.epoch,
        cached,
        rules_fresh: snap.rules_fresh,
        soundness: Soundness::of(&intensional),
        headline: intensional.headline(),
        intensional,
    })
}

fn exec_quel(shared: &Shared, script: &str) -> Reply {
    let stmts = match intensio_quel::parse_script(script) {
        Ok(s) => s,
        Err(e) => return error(format!("quel parse: {e}")),
    };
    if stmts.is_empty() {
        return error("empty QUEL script".to_string());
    }
    let writes = stmts.iter().any(|s| s.access() == AccessKind::Write);
    if writes {
        quel_write(shared, script)
    } else {
        quel_read(shared, script)
    }
}

/// Read-only scripts run against a *private copy-on-write clone* of the
/// pinned snapshot's database: `retrieve into` scratch relations land
/// in the clone and are discarded with it, and shared relations are
/// never touched.
fn quel_read(shared: &Shared, script: &str) -> Reply {
    let snap = shared.snapshot();
    let mut db = snap.db.clone();
    let mut session = Session::new();
    let outputs = match session.run_script(&mut db, script) {
        Ok(o) => o,
        Err(e) => return error(format!("quel: {e}")),
    };
    shared.counters.queries.fetch_add(1, Ordering::Relaxed);
    Reply::Query(quel_reply(&snap, &outputs))
}

/// Mutating scripts are serialized, applied transactionally to a COW
/// clone, and installed as the next epoch. Readers keep answering from
/// the previous snapshot until the install; nothing blocks on the
/// background re-induction this triggers.
fn quel_write(shared: &Shared, script: &str) -> Reply {
    let _writer = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
    let snap = shared.snapshot();
    let mut db = snap.db.clone();
    let mut session = Session::new();
    let outputs = match session.run_script(&mut db, script) {
        Ok(o) => o,
        // The clone is discarded: a failing script mutates nothing.
        Err(e) => return error(format!("quel: {e}")),
    };
    let next = snap.after_write(db);
    let reply = {
        let mut r = quel_reply(&next, &outputs);
        r.cached = false;
        r
    };
    shared.install(next);
    shared.counters.writes.fetch_add(1, Ordering::Relaxed);
    shared.wake_inducer();
    Reply::Query(reply)
}

fn quel_reply(snap: &Snapshot, outputs: &[Output]) -> QueryReply {
    let mut affected = None;
    let mut result: Option<&Relation> = None;
    for out in outputs {
        match out {
            Output::Relation(r) => result = Some(r),
            Output::Affected(n) => *affected.get_or_insert(0) += n,
            Output::None | Output::Stored(_) => {}
        }
    }
    let (columns, rows) = match result {
        Some(r) => render_relation(r),
        None => (Vec::new(), Vec::new()),
    };
    QueryReply {
        epoch: snap.epoch,
        cached: false,
        rules_fresh: snap.rules_fresh,
        soundness: Soundness::None,
        columns,
        rows,
        intensional: Arc::new(IntensionalAnswer::default()),
        headline: None,
        summary: None,
        affected,
    }
}

fn render_relation(rel: &Relation) -> (Vec<String>, Vec<Vec<String>>) {
    let columns = rel
        .schema()
        .attributes()
        .iter()
        .map(|a| a.name().to_string())
        .collect();
    let rows = rel
        .iter()
        .map(|t| t.values().iter().map(|v| v.render_bare()).collect())
        .collect();
    (columns, rows)
}

fn error(message: String) -> Reply {
    Reply::Error { message }
}

/// The background induction loop: wake on write, learn from a pinned
/// snapshot, install only if the data did not move underneath.
fn inducer_loop(shared: &Shared) {
    loop {
        {
            let mut flags = shared.induce.lock().unwrap_or_else(|e| e.into_inner());
            while !flags.dirty && !flags.shutdown {
                let (next, _) = shared
                    .induce_wake
                    .wait_timeout(flags, std::time::Duration::from_millis(200))
                    .unwrap_or_else(|e| e.into_inner());
                flags = next;
            }
            if flags.shutdown {
                return;
            }
            flags.dirty = false;
        }

        let snap = shared.snapshot();
        if snap.rules_fresh {
            continue;
        }
        let ils = Ils::new(snap.dictionary.model(), shared.cfg.induction);
        let learned = ils.induce_parallel(&snap.db, shared.cfg.induction_threads);
        let rules = match learned {
            Ok(out) => out.rules,
            Err(_) => continue, // e.g. a relation dropped mid-flight; retry on next wake
        };

        let _writer = shared.write_lock.lock().unwrap_or_else(|e| e.into_inner());
        let current = shared.snapshot();
        if current.data_version != snap.data_version {
            // Another write landed while learning: the rules describe
            // old data. Go around and learn again.
            shared.wake_inducer();
            continue;
        }
        let mut dictionary = current.dictionary.clone();
        dictionary.set_rules(rules);
        shared.install(current.after_induction(dictionary));
        shared.counters.inductions.fetch_add(1, Ordering::Relaxed);
    }
}
