//! # intensio-serve
//!
//! A concurrent serving layer for the intensional query processor —
//! what the paper's single-user EQUEL/C prototype would need to answer
//! many users at once without re-deriving the same characterizations:
//!
//! * **Versioned knowledge snapshots** ([`snapshot`]): database +
//!   dictionary pinned under an epoch; readers never block.
//! * **An intensional-answer cache** ([`cache`]): LRU over
//!   `(condition fingerprint, epoch)`; a hit returns the identical
//!   answer object a miss computed.
//! * **A worker-pool service** ([`service`]): SQL and QUEL requests,
//!   serialized copy-on-write mutations, and background re-induction
//!   that atomically swaps in fresh rules.
//! * **A wire protocol and TCP server** ([`protocol`], [`server`],
//!   [`json`]): one request per line, one JSON response per request.
//! * **Fault tolerance** ([`service`] + [`intensio_fault`]): bounded
//!   admission with `BUSY` shedding, per-request deadlines that degrade
//!   the intensional side (stale cache → extensional-only, always
//!   flagged `degraded`), supervised worker restarts, and self-healing
//!   background induction with capped, jittered retry backoff.
//! * **A static-analysis gate** ([`service`] + [`intensio_check`]):
//!   every induced rule set is linted before install; Error-level
//!   findings (conflicting rules, IC020) reject the set
//!   (`rulesets_rejected` in `STATS`). The `CHECK` protocol verb lints
//!   the live rule set — retroactively purging cached answers inferred
//!   from rejected knowledge — or lints a query without executing it.
//!
//! ```
//! use intensio_serve::{Reply, Request, Service, ServiceConfig};
//!
//! let db = intensio_shipdb::ship_database().unwrap();
//! let model = intensio_shipdb::ship_model().unwrap();
//! let service = Service::open(db, model).unwrap();
//!
//! let reply = service.submit(Request::Sql(
//!     "SELECT Class FROM CLASS WHERE Displacement > 8000".to_string(),
//! ));
//! let q = reply.query().expect("query reply");
//! assert_eq!(q.rows.len(), 2);
//! assert!(!q.cached);
//! let again = service.submit(Request::Sql(
//!     "SELECT CLASS.CLASS FROM CLASS WHERE CLASS.DISPLACEMENT > 8000".to_string(),
//! ));
//! assert!(again.query().unwrap().cached, "same conditions: cache hit");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The serve path must degrade, not die: panicking escape hatches are
// lint-visible so every one needs an explicit, justified exemption.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod json;
pub mod protocol;
pub mod server;
pub mod service;
pub mod snapshot;

pub use cache::AnswerCache;
pub use protocol::{
    encode_reply, encode_reply_with_trace, escape_script, format_trace_prefix, parse_request,
    parse_traced, WireRequest,
};
pub use server::{Client, Server};
pub use service::{
    CheckReply, DurabilityStats, PeerTelemetry, ProfileNode, ProfileReply, QueryReply, ReplStats,
    Reply, Request, ServeError, Service, ServiceConfig, Soundness, StatsReply, TelemetryReply,
};
pub use snapshot::Snapshot;
