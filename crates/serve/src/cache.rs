//! An LRU cache of intensional answers.
//!
//! Keys are `(condition fingerprint, epoch)` — see
//! [`intensio_inference::condition_fingerprint`] for why the
//! fingerprint canonicalizes exactly the query structure the inference
//! engine consumes, and [`crate::snapshot`] for why the epoch pins the
//! knowledge state. Values are `Arc<IntensionalAnswer>`, so a hit hands
//! back the *same* object a miss computed: cached and freshly inferred
//! answers are identical by construction, not merely equivalent.

use intensio_inference::IntensionalAnswer;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Cache key: canonical condition fingerprint + knowledge epoch.
pub type CacheKey = (String, u64);

/// A fixed-capacity LRU map from [`CacheKey`] to a shared intensional
/// answer. Not internally synchronized — the service wraps it in a
/// `Mutex` and holds the lock only for lookups/inserts, never while
/// inference runs.
#[derive(Debug)]
pub struct AnswerCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<CacheKey, (u64, Arc<IntensionalAnswer>)>,
    /// Recency index: tick -> key. Ticks are unique, so the first entry
    /// is always the least recently used.
    order: BTreeMap<u64, CacheKey>,
    /// Highest epoch whose rule set the checker rejected. Answers at or
    /// below this epoch were inferred from knowledge now known to be
    /// unsound, so they must never be served — not even through the
    /// degraded [`AnswerCache::get_stale`] path.
    rejected_floor: Option<u64>,
}

impl AnswerCache {
    /// An empty cache holding at most `capacity` answers (min 1).
    pub fn new(capacity: usize) -> AnswerCache {
        AnswerCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
            order: BTreeMap::new(),
            rejected_floor: None,
        }
    }

    fn rejected(&self, epoch: u64) -> bool {
        self.rejected_floor.is_some_and(|floor| epoch <= floor)
    }

    /// Mark every epoch up to and including `epoch` as rejected: purge
    /// their cached answers and refuse future lookups and inserts at
    /// those epochs. Called when static analysis finds Error-level
    /// defects in the rule set those answers were inferred from.
    pub fn reject_through(&mut self, epoch: u64) {
        let floor = self.rejected_floor.map_or(epoch, |f| f.max(epoch));
        self.rejected_floor = Some(floor);
        self.entries.retain(|k, _| k.1 > floor);
        let entries = &self.entries;
        self.order.retain(|_, k| entries.contains_key(k));
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Look up an answer, refreshing its recency on a hit. Rejected
    /// epochs never hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<IntensionalAnswer>> {
        if self.rejected(key.1) {
            return None;
        }
        let tick = self.next_tick();
        let (slot, answer) = match self.entries.get_mut(key) {
            Some((slot, answer)) => (slot, answer.clone()),
            None => return None,
        };
        let old = std::mem::replace(slot, tick);
        self.order.remove(&old);
        self.order.insert(tick, key.clone());
        Some(answer)
    }

    /// Insert (or refresh) an answer, evicting the least recently used
    /// entries beyond capacity. Inserts at rejected epochs are dropped.
    pub fn insert(&mut self, key: CacheKey, answer: Arc<IntensionalAnswer>) {
        if self.rejected(key.1) {
            return;
        }
        let tick = self.next_tick();
        if let Some((old, _)) = self.entries.insert(key.clone(), (tick, answer)) {
            self.order.remove(&old);
        }
        self.order.insert(tick, key);
        while self.entries.len() > self.capacity {
            match self.order.pop_first() {
                Some((_, key)) => {
                    self.entries.remove(&key);
                }
                None => break,
            }
        }
    }

    /// Drop every entry whose epoch is not `epoch`. Equivalent to
    /// [`AnswerCache::retain_recent`] with a window of zero.
    pub fn retain_epoch(&mut self, epoch: u64) {
        self.retain_recent(epoch, 0);
    }

    /// Drop entries more than `window` epochs behind `epoch`. Called
    /// after a new snapshot is installed. Entries inside the window can
    /// never be hit through [`AnswerCache::get`] (keys carry the epoch)
    /// but remain reachable via [`AnswerCache::get_stale`], which the
    /// service uses to serve a *flagged* stale answer when a deadline
    /// expires or inference fails.
    pub fn retain_recent(&mut self, epoch: u64, window: u64) {
        self.entries
            .retain(|k, _| k.1 <= epoch && epoch - k.1 <= window);
        let entries = &self.entries;
        self.order.retain(|_, k| entries.contains_key(k));
    }

    /// The most recent answer for `fingerprint` from an epoch strictly
    /// before `epoch`, refreshing its recency. This is the degraded
    /// path: the answer described an earlier knowledge state, so the
    /// caller must flag the reply accordingly.
    pub fn get_stale(&mut self, fingerprint: &str, epoch: u64) -> Option<Arc<IntensionalAnswer>> {
        let floor = self.rejected_floor;
        let best = self
            .entries
            .keys()
            .filter(|k| k.0 == fingerprint && k.1 < epoch)
            .filter(|k| floor.is_none_or(|f| k.1 > f))
            .map(|k| k.1)
            .max()?;
        self.get(&(fingerprint.to_string(), best))
    }

    /// Number of cached answers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(tag: &str) -> Arc<IntensionalAnswer> {
        Arc::new(IntensionalAnswer {
            steps: vec![tag.to_string()],
            ..IntensionalAnswer::default()
        })
    }

    fn key(s: &str, e: u64) -> CacheKey {
        (s.to_string(), e)
    }

    #[test]
    fn hit_returns_the_same_object() {
        let mut c = AnswerCache::new(4);
        let a = answer("x");
        c.insert(key("q", 1), a.clone());
        let hit = c.get(&key("q", 1)).unwrap();
        assert!(Arc::ptr_eq(&a, &hit), "hit is bit-for-bit the miss value");
        assert!(c.get(&key("q", 2)).is_none(), "other epoch never hits");
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = AnswerCache::new(2);
        c.insert(key("a", 1), answer("a"));
        c.insert(key("b", 1), answer("b"));
        assert!(c.get(&key("a", 1)).is_some(), "touch a; b is now LRU");
        c.insert(key("c", 1), answer("c"));
        assert_eq!(c.len(), 2);
        assert!(c.get(&key("b", 1)).is_none(), "b evicted");
        assert!(c.get(&key("a", 1)).is_some());
        assert!(c.get(&key("c", 1)).is_some());
    }

    #[test]
    fn retain_epoch_drops_stale_entries() {
        let mut c = AnswerCache::new(8);
        c.insert(key("a", 1), answer("a"));
        c.insert(key("b", 2), answer("b"));
        c.retain_epoch(2);
        assert_eq!(c.len(), 1);
        assert!(c.get(&key("a", 1)).is_none());
        assert!(c.get(&key("b", 2)).is_some());
    }

    #[test]
    fn retain_recent_keeps_a_stale_window() {
        let mut c = AnswerCache::new(8);
        c.insert(key("q", 1), answer("e1"));
        c.insert(key("q", 3), answer("e3"));
        c.insert(key("q", 4), answer("e4"));
        c.retain_recent(4, 1);
        assert_eq!(c.len(), 2, "epoch 1 is outside the window");
        assert!(c.get(&key("q", 3)).is_some());
        assert!(c.get(&key("q", 4)).is_some());
    }

    #[test]
    fn reject_through_purges_and_blocks_rejected_epochs() {
        let mut c = AnswerCache::new(8);
        c.insert(key("q", 1), answer("e1"));
        c.insert(key("q", 2), answer("e2"));
        c.insert(key("q", 3), answer("e3"));
        c.reject_through(2);
        assert_eq!(c.len(), 1, "epochs 1 and 2 purged");
        assert!(c.get(&key("q", 2)).is_none(), "rejected epoch never hits");
        assert!(c.get(&key("q", 3)).is_some(), "later epoch unaffected");
        c.insert(key("q", 2), answer("resurrect"));
        assert_eq!(c.len(), 1, "insert at a rejected epoch is dropped");
        // The floor is monotonic: a lower rejection cannot re-admit.
        c.reject_through(1);
        assert!(c.get(&key("q", 2)).is_none());
    }

    #[test]
    fn get_stale_skips_rejected_epochs() {
        let mut c = AnswerCache::new(8);
        c.insert(key("q", 1), answer("e1"));
        c.insert(key("q", 3), answer("e3"));
        assert!(c.get_stale("q", 5).is_some());
        c.reject_through(3);
        assert!(
            c.get_stale("q", 5).is_none(),
            "no degraded serving from rejected knowledge"
        );
    }

    #[test]
    fn get_stale_returns_most_recent_prior_epoch() {
        let mut c = AnswerCache::new(8);
        let e2 = answer("e2");
        let e3 = answer("e3");
        c.insert(key("q", 2), e2);
        c.insert(key("q", 3), e3.clone());
        c.insert(key("other", 4), answer("x"));
        let hit = c.get_stale("q", 5).expect("stale hit");
        assert!(Arc::ptr_eq(&hit, &e3), "most recent prior epoch wins");
        assert!(c.get_stale("q", 2).is_none(), "nothing strictly before 2");
        assert!(c.get_stale("missing", 9).is_none());
    }
}
