//! A minimal JSON encoder/parser for the wire protocol.
//!
//! The build environment vendors no serialization crates, and the
//! protocol needs only flat objects of strings, numbers, booleans, and
//! (nested) arrays — so this module implements exactly that subset of
//! RFC 8259. Strings are escaped/unescaped per the RFC (including
//! `\uXXXX` with surrogate pairs on the parsing side); numbers are
//! written from `u64`/`usize` and parsed as `f64`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap keeps iteration deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object member lookup (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Append a JSON string literal (with quotes) for `s`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// An incremental single-line JSON object writer.
#[derive(Debug, Default)]
pub struct ObjWriter {
    buf: String,
    any: bool,
}

impl ObjWriter {
    /// Start an object (`{`).
    pub fn new() -> ObjWriter {
        ObjWriter {
            buf: "{".to_string(),
            any: false,
        }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        push_str_literal(&mut self.buf, key);
        self.buf.push(':');
    }

    /// Add a raw (pre-encoded) member.
    pub fn raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(value);
        self
    }

    /// Add a string member.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        push_str_literal(&mut self.buf, value);
        self
    }

    /// Add an optional string member (`null` when absent).
    pub fn opt_str(&mut self, key: &str, value: Option<&str>) -> &mut Self {
        match value {
            Some(v) => self.str(key, v),
            None => self.raw(key, "null"),
        }
    }

    /// Add a boolean member.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Add an unsigned numeric member.
    pub fn num(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Add an array-of-strings member.
    pub fn str_array(&mut self, key: &str, items: &[String]) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        for (i, item) in items.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            push_str_literal(&mut self.buf, item);
        }
        self.buf.push(']');
        self
    }

    /// Add an array-of-arrays-of-strings member (result rows).
    pub fn rows(&mut self, key: &str, rows: &[Vec<String>]) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        for (i, row) in rows.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    self.buf.push(',');
                }
                push_str_literal(&mut self.buf, cell);
            }
            self.buf.push(']');
        }
        self.buf.push(']');
        self
    }

    /// Close the object and return the encoded line.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Parse a JSON document (object, array, or scalar).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        chars: src.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing input at offset {}", p.pos));
    }
    Ok(v)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            got => Err(format!("expected '{c}', got {got:?} at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => self.string().map(Json::Str),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('n') => self.literal("null", Json::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            got => Err(format!("unexpected {got:?} at {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some('}') => return Ok(Json::Obj(map)),
                got => return Err(format!("expected ',' or '}}', got {got:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => continue,
                Some(']') => return Ok(Json::Arr(items)),
                got => return Err(format!("expected ',' or ']', got {got:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".to_string()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let hi = self.hex4()?;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect \uDC00..\uDFFF next.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("invalid low surrogate".to_string());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(cp).ok_or_else(|| "invalid codepoint".to_string())?,
                        );
                    }
                    got => return Err(format!("bad escape {got:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump().ok_or("truncated \\u escape")?;
            v = v * 16 + c.to_digit(16).ok_or(format!("bad hex digit {c:?}"))?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.pos += 1;
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_an_object() {
        let mut w = ObjWriter::new();
        w.bool("ok", true)
            .num("epoch", 7)
            .str("note", "line1\nline\"2\"\t\\")
            .opt_str("summary", None)
            .str_array("cols", &["Id".to_string(), "Name".to_string()])
            .rows("rows", &[vec!["a".to_string(), "b".to_string()], vec![]]);
        let line = w.finish();
        assert!(!line.contains('\n'), "wire format is single-line");

        let v = parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(7));
        assert_eq!(
            v.get("note").unwrap().as_str(),
            Some("line1\nline\"2\"\t\\")
        );
        assert_eq!(v.get("summary"), Some(&Json::Null));
        assert_eq!(v.get("cols").unwrap().as_array().unwrap().len(), 2);
        let rows = v.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows[0].as_array().unwrap()[1].as_str(), Some("b"));
        assert!(rows[1].as_array().unwrap().is_empty());
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = parse(r#"{"a": [1, -2.5, "é😀"], "b": null}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1], Json::Num(-2.5));
        assert_eq!(arr[2].as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1, 2] trailing").is_err());
    }
}
