//! The line-based wire protocol.
//!
//! One request per line, one single-line JSON response per request:
//!
//! ```text
//! C: SQL SELECT Class FROM CLASS WHERE Displacement > 8000
//! S: {"ok":true,"kind":"query","epoch":0,"cached":false,...}
//! C: QUEL range of s is SUBMARINE\nretrieve (s.Name)
//! S: {"ok":true,"kind":"query",...}
//! C: EXPLAIN SELECT Class FROM CLASS WHERE Displacement > 8000
//! S: {"ok":true,"kind":"explain","provenance":[{"rule_id":3,...}],...}
//! C: STATS
//! S: {"ok":true,"kind":"stats",...,"metrics":{...}}
//! C: QUIT
//! ```
//!
//! Verbs are case-insensitive. Because requests are line-framed, a
//! multi-statement QUEL script is written on one line with the
//! two-character escape `\n` between statements (and `\\` for a
//! literal backslash) — [`parse_request`] unescapes before parsing.
//!
//! Query responses carry: `epoch` (the knowledge version that
//! answered), `cached` (intensional answer served from the LRU cache),
//! `rules_fresh` (false while a background re-induction is pending),
//! `soundness` (`"superset"` / `"subset"` / `"mixed"` / `"none"`, the
//! paper's §4 containment direction), `columns` + `rows` (the
//! extensional answer), `intensional` (rendered characterization
//! lines), `headline`, `summary`, and `affected` (mutations only).
//! `EXPLAIN` responses drop the rows and instead carry `provenance`: an
//! array of `{rule_id, support, direction, conclusion}` objects — the
//! rule applications behind the intensional answer. `STATS` responses
//! carry the service counters plus a `metrics` object (counters,
//! gauges, and per-stage latency histograms with p50/p95/p99 in µs).
//! Error responses are `{"ok":false,"error":"..."}`.
//!
//! Fault tolerance on the wire: query and explain responses carry
//! `degraded` (true when the intensional side fell back to a
//! stale-epoch cached answer or was dropped entirely); a shed request
//! answers `{"ok":false,"kind":"busy",...}` without executing; and the
//! `FAULT` verb (`FAULT LIST` / `FAULT SET name=spec[;...]` /
//! `FAULT CLEAR`) administers [`intensio_fault`] failpoints at runtime.
//!
//! Observability on the wire: `PROFILE <sql>` runs the query and
//! answers with an EXPLAIN-ANALYZE-style timing tree; `TELEMETRY`
//! returns one node's replication/latency sample (the cluster poller's
//! probe). A request line may carry a distributed-tracing prefix,
//! `#trace <trace-id>/<parent-span>` (two 16-digit lowercase hex
//! fields), before the verb — see [`parse_traced`]. Replies to traced
//! requests lead with a `"trace"` field echoing the trace id, so a
//! client that was REDIRECTed can re-issue under the same id and stitch
//! one trace across nodes.

use crate::json::ObjWriter;
use crate::service::{Reply, Request};

/// A decoded request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireRequest {
    /// Execute via [`crate::Service::submit`].
    Execute(Request),
    /// Execute once the node's epoch reaches the given minimum
    /// (read-your-writes on a follower), via [`crate::Service::submit_at`].
    ExecuteAt(Request, u64),
    /// Switch the connection into a replication stream from the given
    /// epoch, via [`crate::Service::replicate`]. The second field is
    /// the follower's highest durably observed primary term
    /// (`REPLICATE <from-epoch> [term=<t>] [node=<label>]`; a missing
    /// term means term 0, for pre-failover clients). The optional
    /// `node=` token names the follower (`--net-name`), so the primary
    /// can attribute the stream to a cluster link — that is what lets
    /// `net.dup=a->b`-style fault specs tear exactly this stream
    /// without touching any client connection.
    Replicate(u64, u64, Option<String>),
    /// Close the connection.
    Quit,
}

/// Decode one request line. Returns `Err` with a client-facing message
/// for unknown verbs or missing arguments.
pub fn parse_request(line: &str) -> Result<WireRequest, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let upper = verb.to_ascii_uppercase();
    // `SQL@7` / `QUEL@7` / `EXPLAIN@7`: don't answer from state older
    // than epoch 7 (read-your-writes against a lagging follower).
    let (base, min_epoch) = match upper.split_once('@') {
        Some((base, at)) => {
            let epoch: u64 = at
                .parse()
                .map_err(|_| format!("bad min-epoch in {verb:?}; expected e.g. SQL@7"))?;
            if !matches!(base, "SQL" | "QUEL" | "EXPLAIN") {
                return Err(format!(
                    "the @min-epoch suffix applies to SQL, QUEL, and EXPLAIN, not {base}"
                ));
            }
            (base.to_string(), Some(epoch))
        }
        None => (upper, None),
    };
    let execute = |req: Request| match min_epoch {
        Some(epoch) => WireRequest::ExecuteAt(req, epoch),
        None => WireRequest::Execute(req),
    };
    match base.as_str() {
        "SQL" if !rest.is_empty() => Ok(execute(Request::Sql(rest.to_string()))),
        "QUEL" if !rest.is_empty() => Ok(execute(Request::Quel(unescape_script(rest)))),
        "EXPLAIN" if !rest.is_empty() => Ok(execute(Request::Explain(rest.to_string()))),
        "PROFILE" if !rest.is_empty() => Ok(execute(Request::Profile(rest.to_string()))),
        "SQL" | "QUEL" | "EXPLAIN" | "PROFILE" => Err(format!("{base} requires a query argument")),
        "STATS" => Ok(WireRequest::Execute(Request::Stats)),
        "TELEMETRY" => Ok(WireRequest::Execute(Request::Telemetry)),
        "FAULT" => Ok(WireRequest::Execute(Request::Fault(rest.to_string()))),
        "CHECK" => Ok(WireRequest::Execute(Request::Check(unescape_script(rest)))),
        "REPLICATE" => {
            let mut tokens = rest.split_whitespace();
            let from = tokens
                .next()
                .unwrap_or("")
                .parse::<u64>()
                .map_err(|_| format!("REPLICATE requires a from-epoch argument, got {rest:?}"))?;
            let mut term = 0u64;
            let mut node = None;
            for suffix in tokens {
                if let Some(t) = suffix.strip_prefix("term=") {
                    term = t.parse::<u64>().map_err(|_| {
                        format!("bad REPLICATE suffix {suffix:?}; expected term=<n>")
                    })?;
                } else if let Some(label) = suffix.strip_prefix("node=") {
                    node = Some(label.to_string());
                } else {
                    return Err(format!(
                        "bad REPLICATE suffix {suffix:?}; expected term=<n> or node=<label>"
                    ));
                }
            }
            Ok(WireRequest::Replicate(from, term, node))
        }
        "QUIT" => Ok(WireRequest::Quit),
        "" => Err(
            "empty request; expected SQL, QUEL, EXPLAIN, PROFILE, CHECK, STATS, TELEMETRY, FAULT, REPLICATE, or QUIT"
                .to_string(),
        ),
        other => Err(format!(
            "unknown verb {other:?}; expected SQL, QUEL, EXPLAIN, PROFILE, CHECK, STATS, TELEMETRY, FAULT, REPLICATE, or QUIT"
        )),
    }
}

/// The request-line prefix that carries distributed-tracing context.
const TRACE_PREFIX: &str = "#trace ";

/// Decode one request line, honoring an optional `#trace
/// <trace-id>/<parent-span> ` prefix ahead of the verb. Returns the
/// trace context (if a well-formed prefix was present) alongside the
/// ordinary [`parse_request`] result. A malformed prefix fails the
/// whole line — silently dropping it would break the client's trace
/// stitching without telling anyone.
pub fn parse_traced(
    line: &str,
) -> (
    Option<intensio_obs::TraceContext>,
    Result<WireRequest, String>,
) {
    let trimmed = line.trim_start();
    let Some(rest) = trimmed.strip_prefix(TRACE_PREFIX) else {
        return (None, parse_request(line));
    };
    let Some((token, request)) = rest.trim_start().split_once(char::is_whitespace) else {
        return (None, Err("#trace prefix without a request".to_string()));
    };
    match parse_trace_token(token) {
        Some(ctx) => (Some(ctx), parse_request(request)),
        None => (
            None,
            Err(format!(
                "bad trace token {token:?}; expected <16-hex-trace-id>/<16-hex-span-id>"
            )),
        ),
    }
}

/// Parse `<trace:016x>/<span:016x>`. A zero trace id is reserved for
/// "untraced" and rejected.
fn parse_trace_token(token: &str) -> Option<intensio_obs::TraceContext> {
    let (t, s) = token.split_once('/')?;
    if t.len() != 16 || s.len() != 16 {
        return None;
    }
    let trace_id = u64::from_str_radix(t, 16).ok()?;
    let parent_span = u64::from_str_radix(s, 16).ok()?;
    if trace_id == 0 {
        return None;
    }
    Some(intensio_obs::TraceContext {
        trace_id,
        parent_span,
    })
}

/// Render a trace context as the client-side request prefix.
pub fn format_trace_prefix(ctx: intensio_obs::TraceContext) -> String {
    format!(
        "{TRACE_PREFIX}{:016x}/{:016x} ",
        ctx.trace_id, ctx.parent_span
    )
}

/// [`encode_reply`], but leading with a `"trace"` field echoing the
/// request's trace id when the request was traced. The echo is what
/// lets a client stitch a REDIRECTed read into one cross-node trace: it
/// re-issues against the primary under the id the reply confirmed.
pub fn encode_reply_with_trace(reply: &Reply, ctx: Option<intensio_obs::TraceContext>) -> String {
    let s = encode_reply(reply);
    match ctx {
        // `encode_reply` always produces `{"..."` — splice after the brace.
        Some(t) => format!("{{\"trace\":\"{:016x}\",{}", t.trace_id, &s[1..]),
        None => s,
    }
}

/// Turn the line-safe escapes back into script text: `\n` → newline,
/// `\\` → backslash. Unrecognized escapes pass through untouched.
pub fn unescape_script(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Escape script text for a one-line `QUEL` request (client side).
pub fn escape_script(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Encode a service reply as one JSON line (no trailing newline).
pub fn encode_reply(reply: &Reply) -> String {
    let mut w = ObjWriter::new();
    match reply {
        Reply::Query(q) => {
            let intensional: Vec<String> = if q.intensional.is_empty() {
                Vec::new()
            } else {
                q.intensional
                    .render()
                    .lines()
                    .map(str::to_string)
                    .filter(|l| !l.is_empty())
                    .collect()
            };
            w.bool("ok", true)
                .str("kind", "query")
                .num("epoch", q.epoch)
                .bool("cached", q.cached)
                .bool("rules_fresh", q.rules_fresh)
                .bool("degraded", q.degraded)
                .str("soundness", q.soundness.as_str())
                .str_array("columns", &q.columns)
                .rows("rows", &q.rows)
                .str_array("intensional", &intensional)
                .opt_str("headline", q.headline.as_deref())
                .opt_str("summary", q.summary.as_deref());
            match q.affected {
                Some(n) => w.num("affected", n as u64),
                None => w.raw("affected", "null"),
            };
        }
        Reply::Explain(e) => {
            let intensional: Vec<String> = if e.intensional.is_empty() {
                Vec::new()
            } else {
                e.intensional
                    .render()
                    .lines()
                    .map(str::to_string)
                    .filter(|l| !l.is_empty())
                    .collect()
            };
            w.bool("ok", true)
                .str("kind", "explain")
                .num("epoch", e.epoch)
                .bool("cached", e.cached)
                .bool("rules_fresh", e.rules_fresh)
                .bool("degraded", e.degraded)
                .str("soundness", e.soundness.as_str())
                .raw("provenance", &encode_provenance(&e.intensional.provenance))
                .str_array("intensional", &intensional)
                .opt_str("headline", e.headline.as_deref());
        }
        Reply::Check(c) => {
            use intensio_check::Severity;
            w.bool("ok", true)
                .str("kind", "check")
                .num("epoch", c.epoch)
                .bool("rules_fresh", c.rules_fresh)
                .bool("rejected", c.rejected)
                .num("errors", c.report.count(Severity::Error) as u64)
                .num("warnings", c.report.count(Severity::Warn) as u64)
                .num("infos", c.report.count(Severity::Info) as u64)
                .raw("diagnostics", &c.report.render_json());
        }
        Reply::Stats(s) => {
            w.bool("ok", true)
                .str("kind", "stats")
                .num("epoch", s.epoch)
                .num("data_version", s.data_version)
                .bool("rules_fresh", s.rules_fresh)
                .num("queries", s.queries)
                .num("cache_hits", s.cache_hits)
                .num("cache_misses", s.cache_misses)
                .num("cache_len", s.cache_len)
                .num("cache_capacity", s.cache_capacity)
                .num("writes", s.writes)
                .num("inductions", s.inductions)
                .num("errors", s.errors)
                .num("requests_shed", s.requests_shed)
                .num("worker_restarts", s.worker_restarts)
                .num("induction_retries", s.induction_retries)
                .num("rulesets_rejected", s.rulesets_rejected)
                .num("rules_pruned", s.rules_pruned)
                .num("degraded_answers", s.degraded_answers)
                .num("workers", s.workers)
                .str("role", &s.role)
                .num("term", s.term);
            match &s.repl {
                Some(r) => {
                    let mut rw = ObjWriter::new();
                    rw.str("primary", &r.primary)
                        .bool("connected", r.connected)
                        .num("primary_epoch", r.primary_epoch)
                        .num("lag_epochs", r.lag_epochs)
                        .num("records_applied", r.records_applied)
                        .num("reconnects", r.reconnects)
                        .num("half_open_drops", r.half_open_drops)
                        .num("stale_term_rejections", r.stale_term_rejections);
                    match r.heartbeat_age_ms {
                        Some(age) => rw.num("heartbeat_age_ms", age),
                        None => rw.raw("heartbeat_age_ms", "null"),
                    };
                    w.raw("repl", &rw.finish())
                }
                None => w.raw("repl", "null"),
            };
            match &s.durability {
                Some(d) => {
                    let mut dw = ObjWriter::new();
                    dw.str("fsync", &d.fsync)
                        .num("wal_appends", d.wal_appends)
                        .num("wal_append_bytes", d.wal_append_bytes)
                        .num("wal_fsyncs", d.wal_fsyncs)
                        .num("wal_checkpoints", d.wal_checkpoints)
                        .num("wal_segment_seq", d.wal_segment_seq)
                        .num("recovered_epoch", d.recovered_epoch)
                        .num("replayed_records", d.replayed_records)
                        .num("discarded_records", d.discarded_records)
                        .num("recovery_ms", d.recovery_ms);
                    w.raw("durability", &dw.finish())
                }
                None => w.raw("durability", "null"),
            };
            let mut cluster = String::from("[");
            for (i, p) in s.cluster.iter().enumerate() {
                if i > 0 {
                    cluster.push(',');
                }
                let mut pw = ObjWriter::new();
                pw.str("addr", &p.addr)
                    .bool("ok", p.ok)
                    .str("role", &p.role)
                    .num("epoch", p.epoch)
                    .num("term", p.term)
                    .num("lag_epochs", p.lag_epochs)
                    .num("records_applied", p.records_applied)
                    .num("apply_rate", p.apply_rate)
                    .num("reconnects", p.reconnects)
                    .num("degraded_answers", p.degraded_answers)
                    .num("requests_shed", p.requests_shed)
                    .num("worker_restarts", p.worker_restarts);
                cluster.push_str(&pw.finish());
            }
            cluster.push(']');
            w.raw("cluster", &cluster);
            w.raw("metrics", &s.metrics.to_json());
        }
        Reply::Profile(p) => {
            w.bool("ok", true)
                .str("kind", "profile")
                .num("epoch", p.epoch)
                .bool("cached", p.cached)
                .bool("rules_fresh", p.rules_fresh)
                .bool("degraded", p.degraded)
                .num("rows", p.rows)
                .num("total_us", p.total_us)
                .raw("tree", &encode_profile_nodes(&p.tree));
        }
        Reply::Telemetry(t) => {
            w.bool("ok", true)
                .str("kind", "telemetry")
                .str("role", &t.role)
                .num("epoch", t.epoch)
                .num("term", t.term)
                .bool("rules_fresh", t.rules_fresh)
                .bool("connected", t.connected)
                .num("lag_epochs", t.lag_epochs)
                .num("records_applied", t.records_applied)
                .num("reconnects", t.reconnects)
                .num("queries", t.queries)
                .num("degraded_answers", t.degraded_answers)
                .num("requests_shed", t.requests_shed)
                .num("worker_restarts", t.worker_restarts)
                .num("repl_apply_p99_us", t.repl_apply_p99_us)
                .num("wal_append_p99_us", t.wal_append_p99_us);
        }
        Reply::Busy => {
            w.bool("ok", false)
                .str("kind", "busy")
                .str("error", "server at capacity; retry later");
        }
        Reply::Fault { failpoints } => {
            w.bool("ok", true)
                .str("kind", "fault")
                .raw("failpoints", &encode_failpoints(failpoints));
        }
        Reply::Error { message } => {
            w.bool("ok", false).str("error", message);
        }
    }
    w.finish()
}

/// Encode armed failpoints as a JSON array of
/// `{"name":..,"spec":..,"hits":..,"triggered":..}`.
fn encode_failpoints(points: &[intensio_fault::FailpointStatus]) -> String {
    let mut out = String::from("[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut w = ObjWriter::new();
        w.str("name", &p.name)
            .str("spec", &p.spec)
            .num("hits", p.hits)
            .num("triggered", p.triggered);
        out.push_str(&w.finish());
    }
    out.push(']');
    out
}

/// Encode a profile timing tree as a JSON array of
/// `{"name":..,"us":..,"fields":{..},"children":[..]}` nodes.
fn encode_profile_nodes(nodes: &[crate::service::ProfileNode]) -> String {
    let mut out = String::from("[");
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut fields = ObjWriter::new();
        for (k, v) in &n.fields {
            fields.str(k, v);
        }
        let mut w = ObjWriter::new();
        w.str("name", &n.name)
            .num("us", n.duration_us)
            .raw("fields", &fields.finish())
            .raw("children", &encode_profile_nodes(&n.children));
        out.push_str(&w.finish());
    }
    out.push(']');
    out
}

/// Encode a provenance list as a JSON array of
/// `{"rule_id":..,"support":..,"direction":"forward","conclusion":".."}`.
fn encode_provenance(uses: &[intensio_inference::RuleUse]) -> String {
    let mut out = String::from("[");
    for (i, u) in uses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let mut w = ObjWriter::new();
        w.num("rule_id", u.rule_id as u64)
            .num("support", u.support as u64)
            .str("direction", u.direction.as_str())
            .str("conclusion", &u.conclusion);
        out.push_str(&w.finish());
    }
    out.push(']');
    out
}

/// Encode a protocol-level error (bad request line) as a JSON line.
pub fn encode_protocol_error(message: &str) -> String {
    let mut w = ObjWriter::new();
    w.bool("ok", false).str("error", message);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn parses_request_verbs() {
        assert_eq!(
            parse_request("sql SELECT 1 FROM T"),
            Ok(WireRequest::Execute(Request::Sql("SELECT 1 FROM T".into())))
        );
        assert_eq!(
            parse_request("QUEL range of s is S\\nretrieve (s.Id)"),
            Ok(WireRequest::Execute(Request::Quel(
                "range of s is S\nretrieve (s.Id)".into()
            )))
        );
        assert_eq!(
            parse_request(" stats "),
            Ok(WireRequest::Execute(Request::Stats))
        );
        assert_eq!(
            parse_request("explain SELECT 1 FROM T"),
            Ok(WireRequest::Execute(Request::Explain(
                "SELECT 1 FROM T".into()
            )))
        );
        assert_eq!(
            parse_request("FAULT SET storage.scan=10%error"),
            Ok(WireRequest::Execute(Request::Fault(
                "SET storage.scan=10%error".into()
            )))
        );
        assert_eq!(
            parse_request("fault"),
            Ok(WireRequest::Execute(Request::Fault(String::new())))
        );
        assert_eq!(
            parse_request("CHECK"),
            Ok(WireRequest::Execute(Request::Check(String::new())))
        );
        assert_eq!(
            parse_request("check SELECT 1 FROM T"),
            Ok(WireRequest::Execute(Request::Check(
                "SELECT 1 FROM T".into()
            )))
        );
        assert_eq!(parse_request("QUIT"), Ok(WireRequest::Quit));
        assert!(parse_request("SQL").is_err());
        assert!(parse_request("EXPLAIN").is_err());
        assert!(parse_request("BOGUS x").is_err());
        assert!(parse_request("").is_err());
    }

    #[test]
    fn parses_min_epoch_suffix_and_replicate() {
        assert_eq!(
            parse_request("SQL@7 SELECT 1 FROM T"),
            Ok(WireRequest::ExecuteAt(
                Request::Sql("SELECT 1 FROM T".into()),
                7
            ))
        );
        assert_eq!(
            parse_request("quel@12 range of s is S\\nretrieve (s.Id)"),
            Ok(WireRequest::ExecuteAt(
                Request::Quel("range of s is S\nretrieve (s.Id)".into()),
                12
            ))
        );
        assert_eq!(
            parse_request("EXPLAIN@0 SELECT 1 FROM T"),
            Ok(WireRequest::ExecuteAt(
                Request::Explain("SELECT 1 FROM T".into()),
                0
            ))
        );
        assert_eq!(
            parse_request("REPLICATE 42"),
            Ok(WireRequest::Replicate(42, 0, None))
        );
        assert_eq!(
            parse_request("replicate 0"),
            Ok(WireRequest::Replicate(0, 0, None))
        );
        assert_eq!(
            parse_request("REPLICATE 42 term=3"),
            Ok(WireRequest::Replicate(42, 3, None))
        );
        assert_eq!(
            parse_request("REPLICATE 42 term=3 node=b"),
            Ok(WireRequest::Replicate(42, 3, Some("b".into())))
        );
        assert_eq!(
            parse_request("REPLICATE 7 node=f1"),
            Ok(WireRequest::Replicate(7, 0, Some("f1".into())))
        );
        assert!(parse_request("REPLICATE 42 term=").is_err());
        assert!(parse_request("REPLICATE 42 epoch=3").is_err());
        assert!(parse_request("SQL@ SELECT 1 FROM T").is_err());
        assert!(parse_request("SQL@x SELECT 1 FROM T").is_err());
        assert!(parse_request("STATS@3").is_err());
        assert!(
            parse_request("SQL@7").is_err(),
            "suffix still needs a query"
        );
        assert!(parse_request("REPLICATE").is_err());
        assert!(parse_request("REPLICATE later").is_err());
    }

    #[test]
    fn parses_profile_and_telemetry_verbs() {
        assert_eq!(
            parse_request("profile SELECT 1 FROM T"),
            Ok(WireRequest::Execute(Request::Profile(
                "SELECT 1 FROM T".into()
            )))
        );
        assert_eq!(
            parse_request("TELEMETRY"),
            Ok(WireRequest::Execute(Request::Telemetry))
        );
        assert!(parse_request("PROFILE").is_err(), "PROFILE needs a query");
    }

    #[test]
    fn trace_prefix_round_trips_and_bad_tokens_fail_loudly() {
        let ctx = intensio_obs::TraceContext {
            trace_id: 0xdead_beef_cafe_f00d,
            parent_span: 0x2a,
        };
        let line = format!("{}SQL SELECT 1 FROM T", format_trace_prefix(ctx));
        let (parsed_ctx, req) = parse_traced(&line);
        assert_eq!(parsed_ctx, Some(ctx));
        assert_eq!(
            req,
            Ok(WireRequest::Execute(Request::Sql("SELECT 1 FROM T".into())))
        );
        // No prefix: plain parse, no context.
        let (none_ctx, req) = parse_traced("STATS");
        assert_eq!(none_ctx, None);
        assert_eq!(req, Ok(WireRequest::Execute(Request::Stats)));
        // Malformed prefixes fail the line instead of silently dropping
        // the trace.
        for bad in [
            "#trace deadbeef SQL SELECT 1 FROM T",
            "#trace 0000000000000000/000000000000002a SQL SELECT 1 FROM T",
            "#trace xyzc0ffee0000000/000000000000002a SQL SELECT 1 FROM T",
            "#trace deadbeefcafef00d/000000000000002a",
        ] {
            let (ctx, req) = parse_traced(bad);
            assert_eq!(ctx, None, "{bad:?}");
            assert!(req.is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn traced_replies_lead_with_the_trace_id() {
        let ctx = intensio_obs::TraceContext {
            trace_id: 0x1122_3344_5566_7788,
            parent_span: 0,
        };
        let reply = Reply::Error {
            message: "nope".to_string(),
        };
        let line = encode_reply_with_trace(&reply, Some(ctx));
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("trace").unwrap().as_str(), Some("1122334455667788"));
        assert_eq!(v.get("error").unwrap().as_str(), Some("nope"));
        // Untraced replies are byte-identical to `encode_reply`.
        assert_eq!(encode_reply_with_trace(&reply, None), encode_reply(&reply));
    }

    #[test]
    fn profile_reply_encodes_the_timing_tree() {
        use crate::service::{ProfileNode, ProfileReply};
        let reply = Reply::Profile(Box::new(ProfileReply {
            epoch: 2,
            cached: false,
            rules_fresh: true,
            degraded: false,
            rows: 3,
            total_us: 1200,
            tree: vec![ProfileNode {
                name: "request".to_string(),
                duration_us: 1200,
                fields: vec![("rows".to_string(), "3".to_string())],
                children: vec![ProfileNode {
                    name: "inference.infer".to_string(),
                    duration_us: 800,
                    fields: Vec::new(),
                    children: vec![ProfileNode {
                        name: "rule R5".to_string(),
                        duration_us: 0,
                        fields: vec![("direction".to_string(), "backward".to_string())],
                        children: Vec::new(),
                    }],
                }],
            }],
        }));
        let v = json::parse(&encode_reply(&reply)).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("profile"));
        assert_eq!(v.get("total_us").unwrap().as_u64(), Some(1200));
        let tree = v.get("tree").unwrap().as_array().unwrap();
        assert_eq!(tree[0].get("name").unwrap().as_str(), Some("request"));
        let children = tree[0].get("children").unwrap().as_array().unwrap();
        assert_eq!(
            children[0].get("name").unwrap().as_str(),
            Some("inference.infer")
        );
        let rules = children[0].get("children").unwrap().as_array().unwrap();
        assert_eq!(rules[0].get("name").unwrap().as_str(), Some("rule R5"));
        assert_eq!(
            rules[0]
                .get("fields")
                .unwrap()
                .get("direction")
                .unwrap()
                .as_str(),
            Some("backward")
        );
    }

    #[test]
    fn telemetry_reply_encodes_as_json() {
        use crate::service::TelemetryReply;
        let line = encode_reply(&Reply::Telemetry(Box::new(TelemetryReply {
            role: "follower".to_string(),
            epoch: 9,
            term: 2,
            rules_fresh: true,
            connected: true,
            lag_epochs: 1,
            records_applied: 42,
            reconnects: 2,
            queries: 100,
            degraded_answers: 3,
            requests_shed: 0,
            worker_restarts: 1,
            repl_apply_p99_us: 450,
            wal_append_p99_us: 90,
        })));
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("telemetry"));
        assert_eq!(v.get("role").unwrap().as_str(), Some("follower"));
        assert_eq!(v.get("term").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("lag_epochs").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("records_applied").unwrap().as_u64(), Some(42));
        assert_eq!(v.get("repl_apply_p99_us").unwrap().as_u64(), Some(450));
    }

    #[test]
    fn script_escaping_round_trips() {
        let script = "range of s is S\ndelete s where s.Id = \"a\\b\"";
        assert_eq!(unescape_script(&escape_script(script)), script);
    }

    #[test]
    fn stats_reply_carries_capacity_and_metrics() {
        let reg = intensio_obs::Registry::new();
        reg.inc("serve.queries");
        reg.add("serve.cache_hits", 2);
        reg.stage(intensio_obs::Stage::Parse).record_us(1500);
        let line = encode_reply(&Reply::Stats(Box::new(crate::service::StatsReply {
            epoch: 3,
            data_version: 4,
            rules_fresh: true,
            queries: 10,
            cache_hits: 6,
            cache_misses: 4,
            cache_len: 4,
            cache_capacity: 128,
            writes: 1,
            inductions: 2,
            errors: 0,
            requests_shed: 5,
            worker_restarts: 1,
            induction_retries: 3,
            rulesets_rejected: 1,
            rules_pruned: 3,
            degraded_answers: 2,
            workers: 4,
            role: "follower".to_string(),
            term: 6,
            repl: Some(crate::service::ReplStats {
                primary: "127.0.0.1:4050".to_string(),
                connected: true,
                primary_epoch: 5,
                lag_epochs: 2,
                records_applied: 3,
                reconnects: 1,
                half_open_drops: 1,
                heartbeat_age_ms: Some(120),
                stale_term_rejections: 1,
            }),
            durability: Some(crate::service::DurabilityStats {
                fsync: "batch:8".to_string(),
                wal_appends: 40,
                wal_append_bytes: 4096,
                wal_fsyncs: 5,
                wal_checkpoints: 2,
                wal_segment_seq: 3,
                recovered_epoch: 2,
                replayed_records: 7,
                discarded_records: 1,
                recovery_ms: 12,
            }),
            metrics: reg.snapshot(),
            cluster: vec![crate::service::PeerTelemetry {
                addr: "127.0.0.1:4061".to_string(),
                ok: true,
                role: "follower".to_string(),
                epoch: 3,
                term: 6,
                lag_epochs: 0,
                records_applied: 9,
                apply_rate: 4,
                reconnects: 0,
                degraded_answers: 0,
                requests_shed: 0,
                worker_restarts: 0,
            }],
        })));
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("stats"));
        let dur = v.get("durability").expect("stats reply embeds durability");
        assert_eq!(dur.get("fsync").unwrap().as_str(), Some("batch:8"));
        assert_eq!(dur.get("wal_appends").unwrap().as_u64(), Some(40));
        assert_eq!(dur.get("replayed_records").unwrap().as_u64(), Some(7));
        assert_eq!(dur.get("recovered_epoch").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("cache_capacity").unwrap().as_u64(), Some(128));
        assert_eq!(v.get("requests_shed").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("rulesets_rejected").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("rules_pruned").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("worker_restarts").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("induction_retries").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("degraded_answers").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("role").unwrap().as_str(), Some("follower"));
        assert_eq!(v.get("term").unwrap().as_u64(), Some(6));
        let repl = v.get("repl").expect("stats reply embeds repl");
        assert_eq!(
            repl.get("primary").unwrap().as_str(),
            Some("127.0.0.1:4050")
        );
        assert_eq!(repl.get("connected").unwrap().as_bool(), Some(true));
        assert_eq!(repl.get("lag_epochs").unwrap().as_u64(), Some(2));
        assert_eq!(repl.get("records_applied").unwrap().as_u64(), Some(3));
        assert_eq!(repl.get("reconnects").unwrap().as_u64(), Some(1));
        assert_eq!(repl.get("half_open_drops").unwrap().as_u64(), Some(1));
        assert_eq!(repl.get("heartbeat_age_ms").unwrap().as_u64(), Some(120));
        assert_eq!(repl.get("stale_term_rejections").unwrap().as_u64(), Some(1));
        let cluster = v.get("cluster").unwrap().as_array().unwrap();
        assert_eq!(cluster.len(), 1);
        assert_eq!(
            cluster[0].get("addr").unwrap().as_str(),
            Some("127.0.0.1:4061")
        );
        assert_eq!(cluster[0].get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(cluster[0].get("term").unwrap().as_u64(), Some(6));
        assert_eq!(cluster[0].get("apply_rate").unwrap().as_u64(), Some(4));
        let metrics = v.get("metrics").expect("stats reply embeds metrics");
        let counters = metrics.get("counters").unwrap();
        assert_eq!(counters.get("serve.queries").unwrap().as_u64(), Some(1));
        let hist = metrics.get("histograms").unwrap();
        let stages = ["parse", "inference", "induction", "scan", "request"];
        let missing: Vec<&str> = stages
            .iter()
            .copied()
            .filter(|s| hist.get(s).is_none())
            .collect();
        assert!(
            missing.is_empty(),
            "metrics missing stage histograms: {missing:?}"
        );
        for stage in stages {
            if let Some(h) = hist.get(stage) {
                assert!(h.get("p99_us").unwrap().as_u64().is_some());
            }
        }
    }

    #[test]
    fn busy_and_fault_replies_encode_as_json() {
        let line = encode_reply(&Reply::Busy);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("busy"));

        let line = encode_reply(&Reply::Fault {
            failpoints: vec![intensio_fault::FailpointStatus {
                name: "storage.scan".to_string(),
                spec: "10%error".to_string(),
                hits: 7,
                triggered: 1,
            }],
        });
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("fault"));
        let points = v.get("failpoints").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(
            points[0].get("name").unwrap().as_str(),
            Some("storage.scan")
        );
        assert_eq!(points[0].get("spec").unwrap().as_str(), Some("10%error"));
        assert_eq!(points[0].get("triggered").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn explain_reply_carries_provenance() {
        use intensio_inference::{Direction, IntensionalAnswer, RuleUse};
        let mut answer = IntensionalAnswer::default();
        answer.provenance.push(RuleUse {
            rule_id: 5,
            support: 7,
            direction: Direction::Backward,
            conclusion: "CLASS.Type = \"SSBN\"".to_string(),
        });
        let line = encode_reply(&Reply::Explain(crate::service::ExplainReply {
            epoch: 1,
            cached: true,
            rules_fresh: true,
            degraded: false,
            soundness: crate::service::Soundness::None,
            intensional: std::sync::Arc::new(answer),
            headline: None,
        }));
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("explain"));
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(true));
        let prov = v.get("provenance").unwrap().as_array().unwrap();
        assert_eq!(prov.len(), 1);
        assert_eq!(prov[0].get("rule_id").unwrap().as_u64(), Some(5));
        assert_eq!(prov[0].get("support").unwrap().as_u64(), Some(7));
        assert_eq!(prov[0].get("direction").unwrap().as_str(), Some("backward"));
        assert_eq!(
            prov[0].get("conclusion").unwrap().as_str(),
            Some("CLASS.Type = \"SSBN\"")
        );
    }

    #[test]
    fn check_reply_encodes_severity_counts_and_diagnostics() {
        use intensio_check::{Diagnostic, Report, Severity};
        let mut report = Report::new();
        report.push(
            Diagnostic::new(
                "IC020",
                Severity::Error,
                "R5",
                "conflicts with R24: premises overlap",
            )
            .with_note("R24: if ... then ..."),
        );
        report.push(Diagnostic::new(
            "IC022",
            Severity::Info,
            "rules",
            "gap between rules",
        ));
        let line = encode_reply(&Reply::Check(crate::service::CheckReply {
            epoch: 7,
            rules_fresh: true,
            rejected: true,
            report,
        }));
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("check"));
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("rejected").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("warnings").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("infos").unwrap().as_u64(), Some(1));
        let diags = v.get("diagnostics").unwrap().as_array().unwrap();
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].get("code").unwrap().as_str(), Some("IC020"));
        assert_eq!(diags[0].get("severity").unwrap().as_str(), Some("error"));
        assert_eq!(diags[0].get("origin").unwrap().as_str(), Some("R5"));
    }

    #[test]
    fn error_reply_encodes_as_json() {
        let line = encode_reply(&Reply::Error {
            message: "bad \"query\"".to_string(),
        });
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("error").unwrap().as_str(), Some("bad \"query\""));
    }
}
