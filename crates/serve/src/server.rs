//! The TCP front end: a listener thread accepting connections, one
//! handler thread per connection, speaking the line protocol of
//! [`crate::protocol`]. All handlers share one [`Service`] — the
//! worker pool, not the connection count, bounds execution
//! concurrency.

use crate::protocol::{encode_protocol_error, encode_reply, parse_request, WireRequest};
use crate::service::Service;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP server. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting new connections; established
/// connections finish their current request and close on their next
/// read.
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:7878"`, or port `0` for an
    /// ephemeral port) and start serving `service`.
    pub fn bind(service: Arc<Service>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = stop.clone();
        let accept_thread = std::thread::Builder::new()
            .name("intensio-accept".to_string())
            .spawn(move || accept_loop(&listener, &service, &accept_stop))?;
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<Service>, stop: &Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let service = service.clone();
        let stop = stop.clone();
        let _ = std::thread::Builder::new()
            .name("intensio-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, &service, &stop);
            });
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &Service,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    // One small request line begets one small response line: waiting to
    // coalesce segments (Nagle) only adds delayed-ACK latency.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let response = match parse_request(&line) {
            Ok(WireRequest::Quit) => return Ok(()),
            Ok(WireRequest::Execute(req)) => encode_reply(&service.submit(req)),
            Err(message) => encode_protocol_error(&message),
        };
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// A minimal blocking client for the line protocol, used by the shell's
/// `--connect` mode, the load generator, and tests.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Send one raw request line and read the one-line JSON response.
    pub fn roundtrip(&mut self, request_line: &str) -> std::io::Result<String> {
        self.writer.write_all(request_line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Send `QUIT` and close.
    pub fn quit(mut self) {
        let _ = self.writer.write_all(b"QUIT\n");
        let _ = self.writer.flush();
    }
}
