//! The TCP front end: a listener thread accepting connections, one
//! handler thread per connection, speaking the line protocol of
//! [`crate::protocol`]. All handlers share one [`Service`] — the
//! worker pool, not the connection count, bounds execution
//! concurrency.

use crate::protocol::{encode_protocol_error, encode_reply_with_trace, parse_traced, WireRequest};
use crate::service::Service;
use intensio_net::{NetConn, NetListener};
use std::io::{BufRead, BufReader, Write};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running TCP server. Dropping it (or calling
/// [`Server::shutdown`]) stops accepting new connections and then
/// *drains*: every established connection finishes its in-flight
/// request — the client always receives a complete reply line, never a
/// half-written frame — and closes on its next read (handlers poll the
/// stop flag every [`READ_TICK`]).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    /// Live connection-handler threads, for the shutdown drain.
    conns: Arc<AtomicUsize>,
    accept_thread: Option<JoinHandle<()>>,
}

/// How often a blocked connection read wakes up to check the stop flag.
const READ_TICK: std::time::Duration = std::time::Duration::from_millis(100);

/// How long [`Server::shutdown`] waits for established connections to
/// finish their in-flight request and close.
const DRAIN_WAIT: std::time::Duration = std::time::Duration::from_secs(5);

/// Bound on the shutdown self-connect that unblocks `accept()`. The
/// connect is fault-exempt ([`intensio_net::connect_raw`]): a node with
/// its links severed by an injected partition must still shut down.
const UNBLOCK_CONNECT_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(500);

/// Bound on a [`Client::connect`] attempt — the shell, the load
/// generator, and tests all go through it, and none of them may hang
/// forever on an unreachable address.
const CLIENT_CONNECT_TIMEOUT: std::time::Duration = std::time::Duration::from_secs(5);

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:7878"`, or port `0` for an
    /// ephemeral port) and start serving `service`.
    pub fn bind(service: Arc<Service>, addr: &str) -> std::io::Result<Server> {
        let listener = NetListener::bind(service.net_label(), addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(AtomicUsize::new(0));
        let accept_stop = stop.clone();
        let accept_conns = conns.clone();
        let accept_thread = std::thread::Builder::new()
            .name("intensio-accept".to_string())
            .spawn(move || accept_loop(&listener, &service, &accept_stop, &accept_conns))?;
        Ok(Server {
            addr,
            stop,
            conns,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections, join the accept thread, and wait up
    /// to [`DRAIN_WAIT`] for established connections to drain.
    pub fn shutdown(mut self) {
        self.stop_accepting();
    }

    fn stop_accepting(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return; // already stopped and drained (shutdown, then drop)
        }
        // Unblock the accept() call with a no-op connection. Fault
        // exempt: an injected `net.partition` isolating this node must
        // never turn its own shutdown into a deadlock.
        let _ = intensio_net::connect_raw(&self.addr.to_string(), UNBLOCK_CONNECT_TIMEOUT);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // Drain: every handler completes its in-flight request (a full
        // reply line) and exits on its next read tick.
        let deadline = std::time::Instant::now() + DRAIN_WAIT;
        while self.conns.load(Ordering::SeqCst) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_accepting();
    }
}

/// Decrements the live-connection count when a handler exits, however
/// it exits.
struct ConnGuard(Arc<AtomicUsize>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn accept_loop(
    listener: &NetListener,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<AtomicUsize>,
) {
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok(s) => s,
            Err(_) => continue,
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let service = service.clone();
        let stop = stop.clone();
        // Count the connection before the handler thread exists, so a
        // shutdown racing this accept still waits for it.
        conns.fetch_add(1, Ordering::SeqCst);
        let guard = ConnGuard(conns.clone());
        let spawned = std::thread::Builder::new()
            .name("intensio-conn".to_string())
            .spawn(move || {
                let _guard = guard;
                let _ = handle_connection(stream, &service, &stop);
            });
        if spawned.is_err() {
            // ConnGuard moved into the failed closure was dropped by
            // spawn's error path, so the count is already corrected.
            continue;
        }
    }
}

fn handle_connection(stream: NetConn, service: &Service, stop: &AtomicBool) -> std::io::Result<()> {
    // One small request line begets one small response line: waiting to
    // coalesce segments (Nagle) only adds delayed-ACK latency.
    stream.set_nodelay(true)?;
    // Wake periodically so a blocked read notices the stop flag; a
    // partial line survives timeouts in `line` below.
    stream.set_read_timeout(Some(READ_TICK))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // client closed
            Ok(_) => {
                let request = std::mem::take(&mut line);
                // Decode the optional `#trace` prefix; if the client
                // sent none, admission may still mint a sampled trace —
                // minting here (not in the worker) lets the reply echo
                // the id so the client can stitch REDIRECT hops.
                let (ctx, parsed) = parse_traced(&request);
                let response = match parsed {
                    Ok(WireRequest::Quit) => return Ok(()),
                    Ok(WireRequest::Execute(req)) => {
                        let ctx = ctx.or_else(intensio_obs::start_trace);
                        encode_reply_with_trace(&service.submit_traced(req, None, ctx), ctx)
                    }
                    Ok(WireRequest::ExecuteAt(req, min_epoch)) => {
                        let ctx = ctx.or_else(intensio_obs::start_trace);
                        encode_reply_with_trace(
                            &service.submit_traced(req, Some(min_epoch), ctx),
                            ctx,
                        )
                    }
                    Ok(WireRequest::Replicate(from, peer_term, node)) => {
                        // The connection stops being request/response and
                        // becomes a one-way record stream until the
                        // follower disconnects or the server stops. The
                        // handshake's `node=` token names the follower, so
                        // link faults (net.dup, net.torn_write, ...) can
                        // target exactly this stream from the primary side.
                        if let Some(label) = node {
                            writer.set_peer_label(&label);
                        }
                        return service.replicate(from, peer_term, &mut writer, stop);
                    }
                    Err(message) => encode_protocol_error(&message),
                };
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                // Drain semantics: the in-flight request just got its
                // complete reply; during shutdown, close instead of
                // waiting for another.
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle tick. On shutdown there is no complete request in
                // flight (a partial line is abandoned, never half-run).
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// A minimal blocking client for the line protocol, used by the shell's
/// `--connect` mode, the load generator, and tests. Connections go
/// through [`intensio_net`], so a chaos drill can sever, skew, or tear
/// a specific client's link like any cluster link.
pub struct Client {
    writer: NetConn,
    reader: BufReader<NetConn>,
}

impl Client {
    /// Connect to a running server under the default `client` label,
    /// bounded by [`CLIENT_CONNECT_TIMEOUT`].
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        Client::connect_as("client", addr)
    }

    /// Connect under an explicit net label — chaos harnesses label
    /// their probes so fault specs can hit (or spare) them by name.
    pub fn connect_as(label: &str, addr: &str) -> std::io::Result<Client> {
        let stream = intensio_net::connect_timeout(label, addr, CLIENT_CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Connect with bounded, jittered retry: up to the dialer's budget
    /// of attempts before the last error surfaces. The shell's
    /// failover-redirect follow uses this — a promotion can land a few
    /// hundred milliseconds after the `REDIRECT` that names it.
    pub fn connect_retrying(addr: &str) -> std::io::Result<Client> {
        let mut dialer = intensio_net::Dialer::new("client", addr);
        let stream = dialer.dial()?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Send one raw request line and read the one-line JSON response.
    pub fn roundtrip(&mut self, request_line: &str) -> std::io::Result<String> {
        self.writer.write_all(request_line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// Send `QUIT` and close.
    pub fn quit(mut self) {
        let _ = self.writer.write_all(b"QUIT\n");
        let _ = self.writer.flush();
    }
}
