//! Versioned, immutable knowledge snapshots.
//!
//! A [`Snapshot`] pins everything an answer depends on — the database
//! and the data dictionary (KER model + induced rules) — under a single
//! **epoch** number. Readers clone an `Arc<Snapshot>` and compute
//! against it without any further locking; writers build a *new*
//! snapshot (cheap, thanks to the storage layer's copy-on-write
//! catalog) and install it atomically. Two answers computed at the same
//! epoch are answers to the same knowledge state, which is what makes
//! `(condition fingerprint, epoch)` a sound cache key.
//!
//! The snapshot also carries the primary **term** under which it was
//! committed (see `intensio_wal`): answers computed at `(term, epoch)`
//! are answers on one authoritative lineage, so a failover that fences
//! the old term can never mix two primaries' knowledge states.

use intensio_core::DataDictionary;
use intensio_storage::catalog::Database;

/// One immutable knowledge state.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Monotonic version of the *knowledge state*: bumped by every data
    /// mutation and by every rule-set install. Cache keys include it.
    pub epoch: u64,
    /// Monotonic version of the *data* alone. Background induction
    /// records the data version it learned from and only installs its
    /// rules if the data has not moved since.
    pub data_version: u64,
    /// The primary term this state was committed under. Bumped only by
    /// a failover promotion; writes inherit it unchanged.
    pub term: u64,
    /// The database at this epoch.
    pub db: Database,
    /// The dictionary (KER model + rule set) at this epoch.
    pub dictionary: DataDictionary,
    /// Whether the dictionary's rules were induced from exactly this
    /// data version. `false` between a write and the completion of the
    /// background re-induction it triggered; intensional answers served
    /// in that window are flagged so clients can tell.
    pub rules_fresh: bool,
}

impl Snapshot {
    /// The initial snapshot (epoch 0, term 0) over a database and
    /// dictionary.
    pub fn initial(db: Database, dictionary: DataDictionary, rules_fresh: bool) -> Snapshot {
        Snapshot {
            epoch: 0,
            data_version: 0,
            term: 0,
            db,
            dictionary,
            rules_fresh,
        }
    }

    /// A snapshot rebuilt by boot recovery at an explicit epoch, data
    /// version, and term (checkpoint state plus the replayed WAL
    /// suffix).
    pub fn recovered(
        epoch: u64,
        data_version: u64,
        term: u64,
        db: Database,
        dictionary: DataDictionary,
        rules_fresh: bool,
    ) -> Snapshot {
        Snapshot {
            epoch,
            data_version,
            term,
            db,
            dictionary,
            rules_fresh,
        }
    }

    /// The successor snapshot after a data mutation: new database, same
    /// term, same (now possibly stale) rules.
    pub fn after_write(&self, db: Database) -> Snapshot {
        Snapshot {
            epoch: self.epoch + 1,
            data_version: self.data_version + 1,
            term: self.term,
            db,
            dictionary: self.dictionary.clone(),
            rules_fresh: false,
        }
    }

    /// The successor snapshot after installing a freshly induced rule
    /// set: same data, same term, new dictionary.
    pub fn after_induction(&self, dictionary: DataDictionary) -> Snapshot {
        Snapshot {
            epoch: self.epoch + 1,
            data_version: self.data_version,
            term: self.term,
            db: self.db.clone(),
            dictionary,
            rules_fresh: true,
        }
    }

    /// The successor snapshot after a failover promotion: same data and
    /// dictionary, new term. Consumes an epoch so the term bump ships
    /// through the ordinary exactly-once replication chain.
    pub fn after_term(&self, term: u64) -> Snapshot {
        Snapshot {
            epoch: self.epoch + 1,
            data_version: self.data_version,
            term,
            db: self.db.clone(),
            dictionary: self.dictionary.clone(),
            rules_fresh: self.rules_fresh,
        }
    }
}
