//! The `serve` binary: the intensional query service over TCP, loaded
//! with the paper's Appendix B/C naval ship test bed.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--cache N] [--no-learn]
//!       [--quiet] [--verbose] [--slow-ms N] [--slow-stage-ms STAGE=MS[,..]]
//!       [--queue N] [--deadline-ms N]
//!       [--trace-dir PATH] [--trace-sample F]
//!       [--data-dir PATH] [--fsync always|batch:N|off]
//!       [--checkpoint-every N] [--wal-segment-bytes N]
//!       [--replicate-from HOST:PORT[,HOST:PORT..]] [--peers HOST:PORT,..]
//!       [--candidate] [--failover-timeout-ms N] [--failover-seed N]
//!       [--repl-heartbeat-ms N]
//!       [--net-name LABEL] [--net-faults SPEC]
//! ```
//!
//! Observability: `--verbose` logs every completed span to stderr,
//! `--quiet` silences logging entirely, and `--slow-ms N` logs only
//! spans slower than `N` milliseconds (the slow-query log);
//! `--slow-stage-ms scan=2,inference=10` tightens the threshold for
//! individual stages. The `INTENSIO_LOG` environment variable
//! (`silent`/`normal`/`verbose`) sets the default level; the flags
//! override it.
//!
//! Tracing: `--trace-dir PATH` opens a bounded JSONL trace sink
//! (`PATH/trace-<pid>.jsonl`); `--trace-sample F` sets the fraction of
//! untraced requests that mint a fresh trace at admission (default
//! 0.01 once a trace dir is set — requests arriving with a `#trace`
//! prefix are always recorded). `PROFILE <query>` works regardless:
//! span collection for a profile is per-request, not sampled.
//!
//! Cluster telemetry: `--peers HOST:PORT[,HOST:PORT..]` makes this node
//! poll each listed peer's `TELEMETRY` verb about once a second and
//! fold per-node lag/apply-rate/health into its own `STATS` reply and
//! Prometheus export (typically set on the primary, listing followers).
//!
//! Fault tolerance: `--queue N` bounds the admission queue (overflow is
//! shed with a `BUSY` reply; `0` disables shedding) and `--deadline-ms N`
//! sets the per-request budget past which answers degrade their
//! intensional side. The `INTENSIO_FAILPOINTS` environment variable
//! arms fault-injection points at startup (e.g.
//! `storage.scan=1%error;inference.infer=5%delay:20`), and the `FAULT`
//! protocol verb administers them at runtime.
//!
//! Network chaos: `--net-name LABEL` names this node for link-fault
//! specs (the label also rides the `REPLICATE` handshake so the
//! primary can target a follower's stream by name), and `--net-faults
//! SPEC` arms link faults at startup — e.g.
//! `net.partition=a<->b;net.delay:25=client->a` severs the a↔b link
//! and skews client→a writes by 25ms. `INTENSIO_NET_FAULTS` is the
//! environment equivalent, and `FAULT SET net.…` adjusts links at
//! runtime (on any node, including read-only followers).
//! `INTENSIO_CHAOS_SEED` seeds the probabilistic (`P%`) triggers.
//!
//! Durability: `--data-dir PATH` turns on the write-ahead log — every
//! acknowledged mutation and rule-set install is appended to
//! `PATH/wal/` before the new snapshot becomes visible, and boot
//! recovers from the newest checkpoint plus the log tail. `--fsync`
//! picks the sync policy (`always` is the crash-safe default; `batch:N`
//! syncs every N appends; `off` leaves flushing to the OS),
//! `--checkpoint-every N` sets how many logged records trigger a
//! checkpoint, and `--wal-segment-bytes N` bounds segment size.
//!
//! Replication: `--replicate-from HOST:PORT` starts this node as a
//! read-only *follower* of the primary at that address — it bootstraps
//! over the wire (log tail or full snapshot), applies shipped records
//! into its own epoch chain, re-gates shipped rule sets through the
//! same static-analysis check a primary uses, and rejects mutating
//! requests with a `READONLY` error naming the primary. Combine with
//! `--data-dir` for a durable follower that recovers locally and
//! rejoins from its recovered epoch. `--replicate-from` accepts a
//! comma-separated rotation of upstream addresses, tried in order.
//!
//! Failover: `--candidate` makes a follower monitor the replication
//! stream's heartbeats and, when none arrives for the failover
//! deadline (`--failover-timeout-ms`, default 1000, plus a jitter
//! seeded by `--failover-seed` so dueling candidates tie-break
//! deterministically), promote itself to primary: it bumps the
//! monotonic **term**, fsyncs a `TERM` fencepost record into its WAL
//! before accepting any write, and announces the new term on its
//! `REPLICATE` streams. A deposed primary that wakes up is rejected
//! with a `STALE_TERM` wire error and demotes itself to follower of
//! the new primary. `--repl-heartbeat-ms` sets the primary's idle
//! heartbeat cadence (default 500).
//!
//! Talk to it with `examples/shell.rs --connect HOST:PORT`, or any
//! line client:
//!
//! ```text
//! $ printf 'SQL SELECT Class FROM CLASS WHERE Displacement > 8000\n' | nc localhost 7878
//! ```

use intensio_serve::{Server, Service, ServiceConfig};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--workers N] [--cache N] [--no-learn]\n\
         \x20            [--quiet] [--verbose] [--slow-ms N] [--slow-stage-ms STAGE=MS[,..]]\n\
         \x20            [--queue N] [--deadline-ms N]\n\
         \x20            [--trace-dir PATH] [--trace-sample F]\n\
         \x20            [--data-dir PATH] [--fsync always|batch:N|off]\n\
         \x20            [--checkpoint-every N] [--wal-segment-bytes N]\n\
         \x20            [--replicate-from HOST:PORT[,HOST:PORT..]] [--peers HOST:PORT,..]\n\
         \x20            [--candidate] [--failover-timeout-ms N] [--failover-seed N]\n\
         \x20            [--repl-heartbeat-ms N]\n\
         \x20            [--net-name LABEL] [--net-faults SPEC]"
    );
    std::process::exit(2);
}

/// Parse `STAGE=MS[,STAGE=MS...]` (stage names as they appear in
/// `STATS` histograms, e.g. `scan=2,inference=10`) into per-stage
/// slow-span thresholds.
fn apply_slow_stage_spec(spec: &str) -> Result<(), String> {
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (name, ms) = part
            .split_once('=')
            .ok_or_else(|| format!("bad --slow-stage-ms entry {part:?}; expected STAGE=MS"))?;
        let ms: u64 = ms
            .parse()
            .map_err(|_| format!("bad millisecond count in {part:?}"))?;
        let stage = intensio_obs::Stage::ALL
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| {
                let known: Vec<&str> = intensio_obs::Stage::ALL.iter().map(|s| s.name()).collect();
                format!(
                    "unknown stage {name:?}; expected one of {}",
                    known.join(", ")
                )
            })?;
        intensio_obs::set_stage_slow_threshold(stage, std::time::Duration::from_millis(ms));
    }
    Ok(())
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cfg = ServiceConfig::default();
    let mut trace_dir: Option<std::path::PathBuf> = None;
    let mut trace_sample = 0.01f64;
    let mut peers: Vec<String> = Vec::new();
    intensio_obs::init_from_env();
    intensio_fault::init_from_env();
    intensio_net::faults::init_from_env();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--workers" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--cache" => {
                cfg.cache_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--no-learn" => cfg.learn_on_open = false,
            "--queue" => {
                cfg.queue_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--deadline-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                cfg.deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--data-dir" => {
                cfg.data_dir = Some(std::path::PathBuf::from(
                    args.next().unwrap_or_else(|| usage()),
                ));
            }
            "--fsync" => {
                let spec = args.next().unwrap_or_else(|| usage());
                cfg.wal.fsync = intensio_wal::FsyncPolicy::parse(&spec).unwrap_or_else(|e| {
                    eprintln!("serve: {e}");
                    usage()
                });
            }
            "--checkpoint-every" => {
                cfg.wal.checkpoint_every = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--wal-segment-bytes" => {
                cfg.wal.segment_bytes = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--replicate-from" => {
                cfg.replicate_from = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--candidate" => cfg.candidate = true,
            "--failover-timeout-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&ms| ms > 0)
                    .unwrap_or_else(|| usage());
                cfg.failover_timeout = std::time::Duration::from_millis(ms);
            }
            "--failover-seed" => {
                cfg.failover_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--repl-heartbeat-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&ms| ms > 0)
                    .unwrap_or_else(|| usage());
                cfg.repl_heartbeat = std::time::Duration::from_millis(ms);
            }
            "--net-name" => {
                cfg.net_label = args.next().unwrap_or_else(|| usage());
            }
            "--net-faults" => {
                let spec = args.next().unwrap_or_else(|| usage());
                if let Err(e) = intensio_net::faults::configure_str(&spec) {
                    eprintln!("serve: bad --net-faults: {e}");
                    usage();
                }
            }
            "--peers" => {
                peers = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .filter(|p| !p.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--trace-dir" => {
                trace_dir = Some(std::path::PathBuf::from(
                    args.next().unwrap_or_else(|| usage()),
                ));
            }
            "--trace-sample" => {
                trace_sample = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|f| (0.0..=1.0).contains(f))
                    .unwrap_or_else(|| usage());
            }
            "--slow-stage-ms" => {
                let spec = args.next().unwrap_or_else(|| usage());
                if let Err(e) = apply_slow_stage_spec(&spec) {
                    eprintln!("serve: {e}");
                    usage();
                }
            }
            "--quiet" => intensio_obs::set_level(intensio_obs::Level::Silent),
            "--verbose" => intensio_obs::set_level(intensio_obs::Level::Verbose),
            "--slow-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                intensio_obs::set_slow_span_threshold(std::time::Duration::from_millis(ms));
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    // Distinct candidates must jitter differently or a dueling
    // promotion never tie-breaks: an unset (or zero) seed derives one
    // from the listen address (FNV-1a), which is unique per node.
    if cfg.failover_seed == 0 {
        cfg.failover_seed = addr
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
            })
            .max(1);
    }

    if let Some(dir) = &trace_dir {
        match intensio_obs::set_trace_sink(dir, trace_sample) {
            Ok(path) => println!(
                "intensio-serve tracing: {} (sample {trace_sample})",
                path.display()
            ),
            Err(e) => {
                eprintln!("serve: cannot open trace sink in {}: {e}", dir.display());
                std::process::exit(1);
            }
        }
    }

    let db = intensio_shipdb::ship_database().expect("ship database");
    let model = intensio_shipdb::ship_model().expect("ship model");
    let workers = cfg.workers;
    let durable = cfg.data_dir.clone().map(|dir| (dir, cfg.wal.fsync));
    let follower_of = cfg.replicate_from.clone();
    let candidate = cfg.candidate;
    let failover_timeout = cfg.failover_timeout;
    let service = match Service::with_config(db, model, cfg) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    };
    if !peers.is_empty() {
        println!("intensio-serve cluster: polling {} peer(s)", peers.len());
        service.set_peers(peers);
    }

    let server = match Server::bind(service, &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    if let Some((dir, fsync)) = durable {
        println!(
            "intensio-serve durable: data-dir {} (fsync {fsync})",
            dir.display()
        );
    }
    if let Some(primary) = follower_of {
        if candidate {
            println!(
                "intensio-serve candidate: replicating from {primary} (reads only; \
                 promotes after {}ms of heartbeat loss)",
                failover_timeout.as_millis()
            );
        } else {
            println!("intensio-serve follower: replicating from {primary} (reads only)");
        }
    }
    println!(
        "intensio-serve listening on {} ({} workers); protocol: SQL <q> | QUEL <script> | EXPLAIN <q> | CHECK [q] | STATS | QUIT",
        server.local_addr(),
        workers
    );

    // Serve until killed.
    loop {
        std::thread::park();
    }
}
