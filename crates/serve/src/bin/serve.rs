//! The `serve` binary: the intensional query service over TCP, loaded
//! with the paper's Appendix B/C naval ship test bed.
//!
//! ```text
//! serve [--addr HOST:PORT] [--workers N] [--cache N] [--no-learn]
//! ```
//!
//! Talk to it with `examples/shell.rs --connect HOST:PORT`, or any
//! line client:
//!
//! ```text
//! $ printf 'SQL SELECT Class FROM CLASS WHERE Displacement > 8000\n' | nc localhost 7878
//! ```

use intensio_serve::{Server, Service, ServiceConfig};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!("usage: serve [--addr HOST:PORT] [--workers N] [--cache N] [--no-learn]");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut cfg = ServiceConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = args.next().unwrap_or_else(|| usage()),
            "--workers" => {
                cfg.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--cache" => {
                cfg.cache_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--no-learn" => cfg.learn_on_open = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let db = intensio_shipdb::ship_database().expect("ship database");
    let model = intensio_shipdb::ship_model().expect("ship model");
    let workers = cfg.workers;
    let service = match Service::with_config(db, model, cfg) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("serve: {e}");
            std::process::exit(1);
        }
    };

    let server = match Server::bind(service, &addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "intensio-serve listening on {} ({} workers); protocol: SQL <q> | QUEL <script> | STATS | QUIT",
        server.local_addr(),
        workers
    );

    // Serve until killed.
    loop {
        std::thread::park();
    }
}
