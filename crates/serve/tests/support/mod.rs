//! Shared TCP harness for the serve integration suites: spawning real
//! `serve` child processes, a line-protocol connection, and the
//! polling/audit helpers the replication, crash-recovery, failover, and
//! partition drills all need. Each test binary pulls this in with
//! `mod support;` — keep helpers here instead of copy-pasting them.
//!
//! The connection type deliberately uses a raw `TcpStream`, not
//! `intensio_net`: harness probes are the tests' control plane and must
//! keep working while the suite injects link faults into the nodes
//! under test.
#![allow(dead_code)]

use intensio_serve::json::{self, Json};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A fresh, empty scratch directory, unique per process and call.
pub fn temp_dir(tag: &str) -> std::path::PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("intensio-serve-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reserve an address for a child that other children must know at
/// spawn time (e.g. a primary polling its peers): bind an ephemeral
/// port, note it, release it. The tiny window between release and the
/// child's own bind is an accepted test-harness race.
pub fn reserve_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    listener.local_addr().expect("reserved addr").to_string()
}

/// The reproducibility seed shared by the chaos suites: the
/// `INTENSIO_CHAOS_SEED` environment variable, or `default`.
pub fn chaos_seed(default: u64) -> u64 {
    std::env::var("INTENSIO_CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A running `serve` child on an ephemeral port.
pub struct ServeChild {
    pub child: Child,
    pub addr: String,
}

impl ServeChild {
    /// Spawn the serve binary in durable mode on an ephemeral port and
    /// wait for its "listening on" banner. `extra` appends flags after
    /// the `--addr 127.0.0.1:0 --data-dir … --workers 2 --quiet`
    /// baseline (pass `--no-learn` there when epochs must not move on
    /// their own).
    pub fn spawn(data_dir: &Path, extra: &[&str]) -> ServeChild {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve"));
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--data-dir")
            .arg(data_dir)
            .arg("--workers")
            .arg("2")
            .arg("--quiet")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn serve binary");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve exited before listening")
                .expect("read serve stdout");
            if let Some(rest) = line.split("listening on ").nth(1) {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address after 'listening on'")
                    .to_string();
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || while let Some(Ok(_)) = lines.next() {});
        ServeChild { child, addr }
    }

    /// Connect to the child, retrying while it boots.
    pub fn connect(&self) -> Conn {
        Conn::to(&self.addr)
    }

    /// SIGKILL — no flush, no clean shutdown.
    pub fn kill(mut self) {
        self.child.kill().expect("SIGKILL serve child");
        let _ = self.child.wait();
    }

    /// The protocol has no daemon shutdown; tests always kill.
    pub fn shutdown(self) {
        self.kill();
    }
}

/// One line-oriented protocol connection.
pub struct Conn {
    pub stream: TcpStream,
    pub reader: BufReader<TcpStream>,
}

impl Conn {
    /// Connect, retrying for up to 10 seconds (a just-spawned or
    /// just-restarted child may not be accepting yet).
    pub fn to(addr: &str) -> Conn {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match Conn::try_to(addr) {
                Ok(conn) => return conn,
                Err(e) => {
                    assert!(Instant::now() < deadline, "cannot connect {addr}: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// One connect attempt, no retry — availability probes under an
    /// injected partition want the refusal, not a stall.
    pub fn try_to(addr: &str) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Conn { stream, reader })
    }

    pub fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        self.stream.write_all(request.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        Ok(line)
    }

    pub fn json(&mut self, request: &str) -> Json {
        let reply = self.roundtrip(request).expect("roundtrip");
        json::parse(&reply).unwrap_or_else(|e| panic!("undecodable reply ({e}): {reply}"))
    }

    /// (epoch, role, term) from `STATS`.
    pub fn status(&mut self) -> (u64, String, u64) {
        let v = self.json("STATS");
        (
            v.get("epoch").and_then(Json::as_u64).expect("epoch"),
            v.get("role")
                .and_then(Json::as_str)
                .expect("role")
                .to_string(),
            v.get("term").and_then(Json::as_u64).expect("term"),
        )
    }

    /// (epoch, lag_epochs or MAX, records_applied or 0) from `STATS`.
    pub fn epoch_and_lag_and_applied(&mut self) -> (u64, u64, u64) {
        let v = self.json("STATS");
        let epoch = v.get("epoch").and_then(Json::as_u64).expect("epoch");
        let lag = v
            .get("repl")
            .and_then(|r| r.get("lag_epochs"))
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX);
        let applied = v
            .get("repl")
            .and_then(|r| r.get("records_applied"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        (epoch, lag, applied)
    }

    /// Append one SUBMARINE row; `Ok(epoch)` only when the server
    /// acknowledged the write with a well-formed reply. Panics on an
    /// explicit rejection — an I/O error (the kill, the partition) is
    /// the only acceptable failure.
    pub fn append(&mut self, id: &str) -> std::io::Result<u64> {
        let reply = self.roundtrip(&format!(
            "QUEL append to SUBMARINE (Id = \"{id}\", Name = \"Probe\", Class = \"0101\")"
        ))?;
        let v = json::parse(&reply).unwrap_or_else(|e| panic!("undecodable reply ({e}): {reply}"));
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "append rejected: {reply}"
        );
        Ok(v.get("epoch").and_then(Json::as_u64).expect("epoch in ack"))
    }

    /// All SUBMARINE ids currently visible.
    pub fn submarine_ids(&mut self) -> BTreeSet<String> {
        self.submarine_id_counts().into_keys().collect()
    }

    /// SUBMARINE ids with their multiplicities — the zero-loss/zero-dup
    /// audit needs to see a double application, which a set would hide.
    pub fn submarine_id_counts(&mut self) -> BTreeMap<String, usize> {
        let v = self.json("SQL SELECT Id FROM SUBMARINE");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let mut counts = BTreeMap::new();
        for row in v.get("rows").and_then(Json::as_array).expect("rows") {
            if let Some(id) = row
                .as_array()
                .and_then(|cells| cells.first())
                .and_then(Json::as_str)
            {
                *counts.entry(id.trim().to_string()).or_insert(0) += 1;
            }
        }
        counts
    }
}

/// Poll `addr` until its STATS shows `role`, returning elapsed time.
pub fn await_role(addr: &str, role: &str, within: Duration, what: &str) -> Duration {
    let start = Instant::now();
    let deadline = start + within;
    loop {
        let (_, r, _) = Conn::to(addr).status();
        if r == role {
            return start.elapsed();
        }
        assert!(
            Instant::now() < deadline,
            "{what}: {addr} never reached role {role} (still {r})"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Append `id`, retrying across the address rotation until some node
/// acks. Idempotent under lost acks: a presence probe runs before
/// every (re-)issue. Returns the acked epoch.
pub fn write_retrying(targets: &[&str], id: &str) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    let probe = format!("SQL SELECT Id FROM SUBMARINE WHERE Id = \"{id}\"");
    let append =
        format!("QUEL append to SUBMARINE (Id = \"{id}\", Name = \"Fo Probe\", Class = \"0101\")");
    loop {
        for addr in targets {
            let Ok(stream) = TcpStream::connect(addr) else {
                continue;
            };
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let mut conn = Conn {
                reader: BufReader::new(stream.try_clone().unwrap()),
                stream,
            };
            if let Ok(line) = conn.roundtrip(&probe) {
                if let Ok(v) = json::parse(&line) {
                    if v.get("ok").and_then(Json::as_bool) == Some(true)
                        && v.get("rows").and_then(Json::as_array).map(<[Json]>::len) == Some(1)
                    {
                        // A lost ack: the append already applied.
                        return v.get("epoch").and_then(Json::as_u64).unwrap_or(0);
                    }
                }
            }
            if let Ok(line) = conn.roundtrip(&append) {
                if let Ok(v) = json::parse(&line) {
                    if v.get("ok").and_then(Json::as_bool) == Some(true) {
                        return v.get("epoch").and_then(Json::as_u64).expect("epoch");
                    }
                }
            }
        }
        assert!(
            Instant::now() < deadline,
            "no target acked write {id} within 30s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Wait until `follower_addr` converges to the exact epoch of
/// `primary_addr` (which must be quiescent).
pub fn await_epoch_match(primary_addr: &str, follower_addr: &str, what: &str) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (pe, _, _) = Conn::to(primary_addr).status();
        let (fe, _, _) = Conn::to(follower_addr).status();
        if pe == fe {
            return pe;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: {follower_addr} stuck at {fe}, primary at {pe}"
        );
        std::thread::sleep(Duration::from_millis(15));
    }
}

/// Deterministic xorshift64 stream for workload shaping. Seed with a
/// non-zero value (`Rng(seed | 1)`) — zero is xorshift's fixed point.
pub struct Rng(pub u64);

impl Rng {
    pub fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}
