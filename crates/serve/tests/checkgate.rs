//! The static-analysis gate on the serve path.
//!
//! The `intensio-shipdb` conflict fixture induces two rules that
//! disagree about `G.Cat` over `V ∈ [3, 5]` (an `IC020` Error), so
//! these tests exercise the gate with *organically* bad knowledge, not
//! hand-built rule sets:
//!
//! 1. A rule set that fails the lint never installs — at open, or from
//!    background re-induction after a write.
//! 2. `CHECK` with no argument lints the *live* rules and, on Error,
//!    retroactively purges cached answers inferred from them: a stale
//!    cached answer derived from rejected knowledge must not be served
//!    again, even on the degraded fallback path.
//! 3. `CHECK <query>` lints without executing.
//! 4. Property: rule sets induced from a single relationship relation
//!    are structurally conflict-free and never trigger the gate.
//!
//! One test arms failpoints, which are process-global; every test
//! serializes on the same gate.

use intensio_check::{check_rules, RuleCheckConfig};
use intensio_induction::{Ils, InductionConfig};
use intensio_serve::{Reply, Request, Service, ServiceConfig};
use intensio_shipdb::{conflict_database, conflict_model};
use intensio_storage::catalog::Database;
use intensio_storage::domain::Domain;
use intensio_storage::relation::Relation;
use intensio_storage::schema::{Attribute, Schema};
use intensio_storage::tuple;
use intensio_storage::value::ValueType;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// One test at a time owns the global failpoint registry.
fn fault_gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = GATE
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    intensio_fault::clear();
    guard
}

fn conflict_service(tweak: impl FnOnce(&mut ServiceConfig)) -> Service {
    let db = conflict_database().unwrap();
    let model = conflict_model().unwrap();
    let mut cfg = ServiceConfig {
        workers: 2,
        induction_backoff: Duration::from_millis(10),
        induction_backoff_cap: Duration::from_millis(100),
        ..ServiceConfig::default()
    };
    tweak(&mut cfg);
    Service::with_config(db, model, cfg).unwrap()
}

#[test]
fn conflicting_rules_are_rejected_at_open_and_service_stays_up() {
    let _gate = fault_gate();
    let service = conflict_service(|_| {});

    let stats = service.stats();
    assert_eq!(stats.rulesets_rejected, 1, "open-time induction rejected");
    assert!(!stats.rules_fresh, "rejected rules must not read as fresh");

    // Extensional service is unaffected by the missing knowledge.
    match service.submit(Request::Sql("SELECT Gid FROM G".to_string())) {
        Reply::Query(q) => {
            assert_eq!(q.rows.len(), 2);
            assert!(!q.rules_fresh);
        }
        other => panic!("extensional query failed: {other:?}"),
    }
}

#[test]
fn background_reinduction_is_gated_after_a_write() {
    let _gate = fault_gate();
    let service = conflict_service(|cfg| cfg.learn_on_open = false);
    assert_eq!(service.stats().rulesets_rejected, 0);

    // A write marks the knowledge dirty; re-induction runs, conflicts,
    // and is rejected instead of installed.
    let reply = service.submit(Request::Quel(
        "append to E (Eid = \"E009\", V = 9)".to_string(),
    ));
    assert!(reply.query().is_some(), "the write itself succeeds");

    let deadline = Instant::now() + Duration::from_secs(5);
    while service.stats().rulesets_rejected == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = service.stats();
    assert!(stats.rulesets_rejected >= 1, "gate never fired");
    assert!(!stats.rules_fresh, "a rejected set must not install");

    // Rejection is deterministic, not transient: no retry storm. Give
    // the inducer a beat and confirm the count settled.
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(service.stats().rulesets_rejected, stats.rulesets_rejected);
}

#[test]
fn check_verb_purges_stale_cached_answers_from_rejected_rules() {
    let _gate = fault_gate();
    // Gate off: the conflicting rules *install*, poisoning answers.
    let service = conflict_service(|cfg| {
        cfg.check_rulesets = false;
        cfg.stale_epochs = 8;
    });
    assert!(service.wait_rules_fresh(Duration::from_secs(5)));

    const Q: &str = "SELECT Gid FROM G WHERE Cat = \"A\"";
    let first = service.submit(Request::Sql(Q.to_string()));
    assert!(!first.query().unwrap().cached);
    let second = service.submit(Request::Sql(Q.to_string()));
    assert!(second.query().unwrap().cached, "same epoch: cache hit");

    // Move the epoch past the cached entry, then break fresh inference
    // so the degraded path reaches for the stale answer.
    let reply = service.submit(Request::Quel(
        "append to E (Eid = \"E009\", V = 9)".to_string(),
    ));
    assert!(reply.query().is_some());
    assert!(service.wait_rules_fresh(Duration::from_secs(5)));
    intensio_fault::configure_str("inference.engine=error").unwrap();

    // The hazard: a stale answer inferred from conflicting rules serves.
    match service.submit(Request::Sql(Q.to_string())) {
        Reply::Query(q) => {
            assert!(q.degraded && q.cached, "expected a stale cache hit");
        }
        other => panic!("expected degraded stale reply, got {other:?}"),
    }

    // CHECK lints the live rules, finds the conflict, and rejects
    // through the current epoch — purging every poisoned entry.
    let check = service.submit(Request::Check(String::new()));
    let c = check.check().expect("check reply");
    assert!(c.report.has_errors(), "live rules are conflicting");
    assert!(c.rejected, "error-level lint rejects the epoch");
    assert!(service.stats().rulesets_rejected >= 1);

    // Regression: the stale answer from rejected knowledge is gone. The
    // degraded fallback now serves extensional-only instead.
    match service.submit(Request::Sql(Q.to_string())) {
        Reply::Query(q) => {
            assert!(q.degraded, "inference is still broken");
            assert!(!q.cached, "rejected-epoch answers must not serve");
            assert!(q.intensional.is_empty(), "extensional-only fallback");
        }
        other => panic!("expected degraded reply, got {other:?}"),
    }
    intensio_fault::clear();
}

#[test]
fn check_verb_lints_queries_without_rejecting() {
    let _gate = fault_gate();
    let service = conflict_service(|_| {});
    let before = service.stats().rulesets_rejected;

    let reply = service.submit(Request::Check("SELECT Gid FROM NOSUCH".to_string()));
    let c = reply.check().expect("check reply");
    assert!(c.report.has_errors(), "unknown relation is an error");
    assert!(!c.rejected, "query lints never reject rule sets");
    assert_eq!(service.stats().rulesets_rejected, before);
}

#[test]
fn check_verb_is_clean_on_the_ship_database() {
    let _gate = fault_gate();
    let db = intensio_shipdb::ship_database().unwrap();
    let model = intensio_shipdb::ship_model().unwrap();
    let service = Service::open(db, model).unwrap();
    assert!(service.wait_rules_fresh(Duration::from_secs(10)));

    let reply = service.submit(Request::Check(String::new()));
    let c = reply.check().expect("check reply");
    assert!(
        !c.report.has_errors(),
        "ship rules lint clean:\n{}",
        c.report.render_text()
    );
    assert!(!c.rejected);
    assert!(c.rules_fresh);
}

/// A database with one relationship relation mapping each entity to a
/// group chosen by `cats`. Induction over a single source partitions
/// the premise axis, so whatever rules come out can never conflict.
fn single_source_db(cats: &[usize]) -> Database {
    let mut db = Database::new();

    let g_schema = Schema::new(vec![
        Attribute::key("Gid", Domain::char_n(4)),
        Attribute::new("Cat", Domain::char_n(1)),
    ])
    .expect("static schema");
    let mut g = Relation::new("G", g_schema);
    g.insert(tuple!["G00A", "A"]).unwrap();
    g.insert(tuple!["G00B", "B"]).unwrap();
    db.create(g).unwrap();

    let e_schema = Schema::new(vec![
        Attribute::key("Eid", Domain::char_n(4)),
        Attribute::new("V", Domain::basic(ValueType::Int)),
    ])
    .expect("static schema");
    let mut e = Relation::new("E", e_schema);
    for v in 1..=cats.len() as i64 {
        e.insert(tuple![format!("E{v:03}"), v]).unwrap();
    }
    db.create(e).unwrap();

    let r_schema = Schema::new(vec![
        Attribute::key("Er", Domain::char_n(4)),
        Attribute::new("Gr", Domain::char_n(4)),
    ])
    .expect("static schema");
    let mut r1 = Relation::new("R1", r_schema);
    for (i, cat) in cats.iter().enumerate() {
        let gid = if *cat == 0 { "G00A" } else { "G00B" };
        r1.insert(tuple![format!("E{:03}", i + 1), gid]).unwrap();
    }
    db.create(r1).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever a single relationship relation teaches, the gate stays
    /// open: check-clean induction is the common case, and the install
    /// gate must never reject it.
    #[test]
    fn single_source_induction_never_triggers_the_gate(
        cats in prop::collection::vec(0usize..2, 1..9),
    ) {
        let _gate = fault_gate();
        let model = conflict_model().unwrap();
        let db = single_source_db(&cats);
        let cfg = InductionConfig::default();
        let rules = Ils::new(&model, cfg).induce(&db).unwrap().rules;
        let report = check_rules(
            &rules,
            Some(&db),
            &RuleCheckConfig { min_support: cfg.min_support },
        );
        prop_assert!(!report.has_errors(), "gate would reject:\n{}", report.render_text());
    }
}
