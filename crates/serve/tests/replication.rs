//! Replication contract tests.
//!
//! **Convergence property:** however a follower bootstraps — empty
//! against a full log, empty against a truncated log (wire snapshot),
//! or joining mid-workload — once the primary quiesces, the follower
//! reaches the primary's *exact* epoch and serves the *exact* same
//! relation contents. The property is exercised across a grid of
//! checkpoint cadences, segment sizes, and join points, so both the
//! log-tail and snapshot bootstrap paths are hit.
//!
//! **Seeded chaos:** SIGKILL a durable follower process mid-replay,
//! keep writing on the primary, restart the follower over the same
//! data directory, and hold it to the rejoin contract: it recovers
//! locally, re-requests the stream from its recovered epoch, skips the
//! overlap without re-applying any epoch (a double-applied append
//! would key-conflict and wedge the chain below the primary's epoch),
//! and converges with zero lost acked writes. `INTENSIO_CHAOS_SEED`
//! seeds the workload and kill timing for reproducible failures.

#![cfg(unix)]

mod support;

use intensio_serve::json::{self, Json};
use intensio_serve::{Client, Server, Service, ServiceConfig};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "intensio-replication-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn ship_service(cfg: ServiceConfig) -> Arc<Service> {
    let db = intensio_shipdb::ship_database().unwrap();
    let model = intensio_shipdb::ship_model().unwrap();
    Arc::new(Service::with_config(db, model, cfg).unwrap())
}

fn roundtrip_json(client: &mut Client, request: &str) -> json::Json {
    let reply = client.roundtrip(request).expect("roundtrip");
    json::parse(&reply).unwrap_or_else(|e| panic!("undecodable reply ({e}): {reply}"))
}

/// Append one SUBMARINE row, returning the acked epoch.
fn append(client: &mut Client, id: &str) -> u64 {
    let v = roundtrip_json(
        client,
        &format!(
            "QUEL append to SUBMARINE (Id = \"{id}\", Name = \"Repl Probe\", Class = \"0101\")"
        ),
    );
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "append {id} rejected"
    );
    v.get("epoch").and_then(Json::as_u64).expect("epoch in ack")
}

fn submarine_ids(client: &mut Client) -> BTreeSet<String> {
    let v = roundtrip_json(client, "SQL SELECT Id FROM SUBMARINE");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    v.get("rows")
        .and_then(Json::as_array)
        .expect("rows")
        .iter()
        .filter_map(|row| {
            row.as_array()
                .and_then(|cells| cells.first())
                .and_then(Json::as_str)
                .map(|id| id.trim().to_string())
        })
        .collect()
}

/// (epoch, role, lag_epochs or 0, records_applied or 0, rules_fresh).
fn stats(client: &mut Client) -> (u64, String, u64, u64, bool) {
    let v = roundtrip_json(client, "STATS");
    let epoch = v.get("epoch").and_then(Json::as_u64).expect("epoch");
    let role = v
        .get("role")
        .and_then(Json::as_str)
        .expect("role in stats")
        .to_string();
    let lag = v
        .get("repl")
        .and_then(|r| r.get("lag_epochs"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let applied = v
        .get("repl")
        .and_then(|r| r.get("records_applied"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let fresh = v.get("rules_fresh").and_then(Json::as_bool) == Some(true);
    (epoch, role, lag, applied, fresh)
}

/// Poll until the follower sits at the primary's exact epoch with the
/// primary quiescent (rules fresh, epoch stable across reads).
fn await_convergence(primary: &mut Client, follower: &mut Client, what: &str) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (pe, _, _, _, fresh) = stats(primary);
        let (fe, _, lag, _, _) = stats(follower);
        if fresh && pe == fe && lag == 0 {
            // Re-read the primary: convergence must not be a race with
            // a background induction that was about to bump the epoch.
            let (pe2, _, _, _, fresh2) = stats(primary);
            if fresh2 && pe2 == pe {
                return pe;
            }
        }
        assert!(
            Instant::now() < deadline,
            "{what}: follower stuck at epoch {fe} (lag {lag}), primary at {pe}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// One grid point of the convergence property: a primary with the
/// given WAL shape, `before` writes, then a follower joins, then
/// `after` writes; the follower must converge to identical state.
/// `tag` is at most two chars — ids must fit SUBMARINE's char(7) key.
fn converges(tag: &str, checkpoint_every: u64, segment_bytes: u64, before: u32, after: u32) {
    let pdir = temp_dir(&format!("{tag}-p"));
    let fdir = temp_dir(&format!("{tag}-f"));

    let mut pcfg = ServiceConfig {
        data_dir: Some(pdir.clone()),
        ..ServiceConfig::default()
    };
    pcfg.wal.checkpoint_every = checkpoint_every;
    pcfg.wal.segment_bytes = segment_bytes;
    let primary = Server::bind(ship_service(pcfg), "127.0.0.1:0").unwrap();
    let paddr = primary.local_addr().to_string();
    let mut pc = Client::connect(&paddr).unwrap();

    for i in 0..before {
        append(&mut pc, &format!("{tag}A{i:03}"));
    }

    let fcfg = ServiceConfig {
        data_dir: Some(fdir.clone()),
        replicate_from: Some(paddr.clone()),
        ..ServiceConfig::default()
    };
    let follower = Server::bind(ship_service(fcfg), "127.0.0.1:0").unwrap();
    let mut fc = Client::connect(&follower.local_addr().to_string()).unwrap();
    let (_, role, _, _, _) = stats(&mut fc);
    assert_eq!(role, "follower");

    for i in 0..after {
        append(&mut pc, &format!("{tag}B{i:03}"));
    }

    let epoch = await_convergence(&mut pc, &mut fc, tag);
    assert!(epoch > 0, "{tag}: nothing was ever committed");
    assert_eq!(
        submarine_ids(&mut pc),
        submarine_ids(&mut fc),
        "{tag}: follower contents diverge from primary at epoch {epoch}"
    );

    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&fdir);
}

#[test]
fn follower_converges_from_any_bootstrap_split() {
    // (checkpoint cadence, segment bytes, writes before join, after).
    // Late checkpoints + big segments → pure log-tail bootstrap; tight
    // checkpoints + tiny segments truncate the log under the joining
    // follower → wire-snapshot bootstrap; `before = 0` → empty-log
    // join; `after = 0` → nothing to tail after bootstrap.
    converges("TL", 10_000, 8 * 1024 * 1024, 6, 6);
    converges("EM", 10_000, 8 * 1024 * 1024, 0, 8);
    converges("SN", 2, 256, 14, 6);
    converges("QT", 3, 512, 10, 0);
}

#[test]
fn follower_serves_read_your_writes_via_min_epoch() {
    let pdir = temp_dir("ryw-p");
    let pcfg = ServiceConfig {
        data_dir: Some(pdir.clone()),
        ..ServiceConfig::default()
    };
    let primary = Server::bind(ship_service(pcfg), "127.0.0.1:0").unwrap();
    let paddr = primary.local_addr().to_string();
    let mut pc = Client::connect(&paddr).unwrap();

    let fcfg = ServiceConfig {
        replicate_from: Some(paddr.clone()),
        ..ServiceConfig::default()
    };
    let follower = Server::bind(ship_service(fcfg), "127.0.0.1:0").unwrap();
    let mut fc = Client::connect(&follower.local_addr().to_string()).unwrap();

    // Write on the primary, then immediately read *that epoch* on the
    // follower: the reply must contain the row, never a stale miss.
    let epoch = append(&mut pc, "RYW0001");
    let v = roundtrip_json(
        &mut fc,
        &format!("SQL@{epoch} SELECT Id FROM SUBMARINE WHERE Id = \"RYW0001\""),
    );
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "min-epoch read failed"
    );
    assert!(
        v.get("epoch").and_then(Json::as_u64).unwrap_or(0) >= epoch,
        "read answered below the requested epoch"
    );
    let rows = v.get("rows").and_then(Json::as_array).expect("rows");
    assert_eq!(rows.len(), 1, "read-your-writes missed the acked row");

    // An epoch no node has yet must redirect, not block forever.
    let v = roundtrip_json(
        &mut fc,
        &format!("SQL@{} SELECT Id FROM SUBMARINE", epoch + 1_000),
    );
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    let msg = v.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(
        msg.starts_with("REDIRECT") && msg.contains(&paddr),
        "unreachable min-epoch should redirect to the primary: {msg}"
    );

    // Writes and fault administration are refused with READONLY.
    let v = roundtrip_json(
        &mut fc,
        "QUEL append to SUBMARINE (Id = \"RYW0002\", Name = \"No\", Class = \"0101\")",
    );
    assert!(
        v.get("error")
            .and_then(Json::as_str)
            .unwrap_or("")
            .starts_with("READONLY"),
        "follower accepted a write"
    );
    let v = roundtrip_json(&mut fc, "FAULT SET storage.scan=1%error");
    assert!(
        v.get("error")
            .and_then(Json::as_str)
            .unwrap_or("")
            .starts_with("READONLY"),
        "follower accepted fault administration"
    );

    follower.shutdown();
    primary.shutdown();
    let _ = std::fs::remove_dir_all(&pdir);
}

// ---------------------------------------------------------------------
// Seeded chaos: SIGKILL a follower process mid-replay.
// ---------------------------------------------------------------------

mod chaos {
    use super::*;
    use crate::support::{chaos_seed, Conn, Rng, ServeChild};

    #[test]
    fn sigkill_follower_mid_replay_rejoins_without_duplicate_application() {
        let seed: u64 = chaos_seed(0xC0FFEE);
        println!("chaos seed: {seed} (set INTENSIO_CHAOS_SEED to reproduce)");
        let mut rng = Rng(seed | 1);

        let pdir = super::temp_dir("chaos-p");
        let fdir = super::temp_dir("chaos-f");
        let primary = ServeChild::spawn(&pdir, &["--fsync", "batch:4"]);
        let paddr = primary.addr.clone();
        let follower =
            ServeChild::spawn(&fdir, &["--fsync", "batch:4", "--replicate-from", &paddr]);

        let mut pc = primary.connect();
        let mut acked: Vec<(String, u64)> = Vec::new();
        let write = |pc: &mut Conn, rng: &mut Rng| {
            let id = format!("CH{:05}", rng.next() % 100_000);
            let v = pc.json(&format!(
                "QUEL append to SUBMARINE (Id = \"{id}\", Name = \"Chaos\", Class = \"0101\")"
            ));
            // Seeded ids can collide with an earlier insert; only a
            // key-conflict rejection is acceptable, and only acked
            // writes join the oracle.
            if v.get("ok").and_then(Json::as_bool) == Some(true) {
                let epoch = v.get("epoch").and_then(Json::as_u64).expect("epoch");
                (Some((id, epoch)), true)
            } else {
                (None, v.get("error").is_some())
            }
        };

        // Phase 1: write until the follower has demonstrably started
        // applying records, then a seeded handful more — the kill lands
        // mid-replay, not at a tidy boundary.
        let mut fprobe = follower.connect();
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let (ok, sane) = write(&mut pc, &mut rng);
            assert!(sane, "primary write errored without a message");
            if let Some(a) = ok {
                acked.push(a);
            }
            let (_, _, applied) = fprobe.epoch_and_lag_and_applied();
            if applied >= 3 && acked.len() >= 8 {
                break;
            }
            assert!(Instant::now() < deadline, "follower never started applying");
        }
        for _ in 0..(rng.next() % 5) {
            if let (Some(a), _) = write(&mut pc, &mut rng) {
                acked.push(a);
            }
        }
        drop(fprobe);
        follower.kill();

        // Phase 2: the primary keeps committing while the follower is a
        // corpse — this is the divergence window the rejoin must heal.
        for _ in 0..(6 + rng.next() % 6) {
            if let (Some(a), _) = write(&mut pc, &mut rng) {
                acked.push(a);
            }
        }
        let max_acked_epoch = acked.iter().map(|(_, e)| *e).max().unwrap_or(0);

        // Phase 3: restart over the same data dir; it recovers locally,
        // rejoins from its recovered epoch, and must converge.
        let follower =
            ServeChild::spawn(&fdir, &["--fsync", "batch:4", "--replicate-from", &paddr]);
        let mut fc = follower.connect();
        let deadline = Instant::now() + Duration::from_secs(30);
        let final_epoch = loop {
            let (pe, _, _) = pc.epoch_and_lag_and_applied();
            let (fe, lag, _) = fc.epoch_and_lag_and_applied();
            if lag == 0 && fe == pe && pe >= max_acked_epoch {
                break pe;
            }
            assert!(
                Instant::now() < deadline,
                "rejoined follower stuck at {fe} (lag {lag}), primary at {pe}"
            );
            std::thread::sleep(Duration::from_millis(25));
        };

        // Zero lost acked writes, and exact contents — a duplicate-epoch
        // application would have key-conflicted on replay and wedged the
        // chain below `final_epoch`, so convergence + equality is also
        // the no-duplicates proof.
        let on_follower = fc.submarine_ids();
        let on_primary = pc.submarine_ids();
        for (id, epoch) in &acked {
            assert!(
                on_follower.contains(id),
                "acked write {id} (epoch {epoch}) lost on rejoined follower [seed {seed}]"
            );
        }
        assert_eq!(
            on_primary, on_follower,
            "follower diverged from primary at epoch {final_epoch} [seed {seed}]"
        );

        follower.kill();
        primary.kill();
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&fdir);
    }
}
