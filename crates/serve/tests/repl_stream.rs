//! Robustness of the follower's `#repl` frame reader, driven over a
//! real TCP stream by a *scripted* fake primary — so the suite controls
//! exactly which malformed, duplicated, or gapped frames hit the
//! follower's apply loop.
//!
//! The contract under a hostile stream:
//!
//! 1. **No panic, ever.** Truncated frames, interleaved garbage, and
//!    duplicated records at worst cost the stream a reconnect.
//! 2. **Duplicate-epoch skip.** A record at or below the follower's
//!    epoch is the bootstrap/reconnect overlap: skipped in place, the
//!    stream stays up, and the row is never applied twice.
//! 3. **A torn frame never half-applies.** The follower's epoch only
//!    moves when a whole record applies; after the drop it re-requests
//!    from the same epoch.
//! 4. **An epoch gap forces a re-sync.** A record further ahead than
//!    `local + 1` is a chain break: the stream drops and the follower
//!    re-requests from its durable epoch (where a real primary would
//!    ship the missing tail or a snapshot).

mod support;

use intensio_repl::StreamMsg;
use intensio_serve::json::{self, Json};
use intensio_serve::{Client, Server, Service, ServiceConfig};
use intensio_wal::Record;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// The fake primary: a plain listener whose accept loop the test drives
/// by hand, one scripted connection at a time.
struct FakePrimary {
    listener: TcpListener,
    addr: String,
}

/// One accepted replication connection and the handshake it carried.
struct FakeStream {
    stream: TcpStream,
    /// The `<from-epoch>` the follower re-requested.
    from: u64,
}

impl FakePrimary {
    fn bind() -> FakePrimary {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        FakePrimary { listener, addr }
    }

    /// Block until the follower (re)connects and sends its
    /// `REPLICATE <from> …` hello.
    fn accept(&self) -> FakeStream {
        let (stream, _) = self.listener.accept().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut hello = String::new();
        reader.read_line(&mut hello).unwrap();
        let mut tokens = hello.split_whitespace();
        assert_eq!(tokens.next(), Some("REPLICATE"), "bad hello: {hello:?}");
        let from: u64 = tokens.next().expect("from epoch").parse().unwrap();
        FakeStream { stream, from }
    }
}

impl FakeStream {
    fn send_line(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        self.stream.flush().unwrap();
    }

    fn send(&mut self, msg: &StreamMsg) {
        self.send_line(&msg.encode());
    }

    fn send_ok(&mut self, epoch: u64) {
        self.send(&StreamMsg::Ok { epoch, term: 0 });
    }

    fn send_write(&mut self, epoch: u64, id: &str) {
        self.send(&StreamMsg::Record {
            rec: Record::write(
                epoch,
                epoch,
                &format!("append to SUBMARINE (Id = \"{id}\", Name = \"Wire\", Class = \"0101\")"),
            ),
            trace: None,
        });
    }

    /// Write a prefix of an encoded record frame — no newline, no rest —
    /// and flush. Followed by a close, this is a primary dying (or a
    /// link tearing) mid-frame.
    fn send_torn_write(&mut self, epoch: u64, id: &str, keep: usize) {
        let line = StreamMsg::Record {
            rec: Record::write(
                epoch,
                epoch,
                &format!("append to SUBMARINE (Id = \"{id}\", Name = \"Torn\", Class = \"0101\")"),
            ),
            trace: None,
        }
        .encode();
        let mut keep = keep.min(line.len().saturating_sub(1)).max(1);
        // Cutting exactly where the hex body starts would leave a
        // well-formed frame with an *empty* body — a different (valid)
        // record, not a torn one. Every other cut point yields a frame
        // the reader must reject.
        let hex_start = line.rfind(' ').unwrap() + 1;
        if keep == hex_start {
            keep += 1;
        }
        self.stream.write_all(&line.as_bytes()[..keep]).unwrap();
        self.stream.flush().unwrap();
    }
}

/// A follower whose only upstream is the fake primary. Heartbeat cadence
/// is set high so the per-stream half-open clock (3× cadence) never
/// fires under a deliberately silent scripted stream.
fn follower(upstream: &str) -> (Server, Client) {
    let db = intensio_shipdb::ship_database().unwrap();
    let model = intensio_shipdb::ship_model().unwrap();
    let cfg = ServiceConfig {
        workers: 2,
        learn_on_open: false,
        replicate_from: Some(upstream.to_string()),
        repl_heartbeat: Duration::from_secs(30),
        ..ServiceConfig::default()
    };
    let service = std::sync::Arc::new(Service::with_config(db, model, cfg).unwrap());
    let server = Server::bind(service, "127.0.0.1:0").unwrap();
    let client = Client::connect(&server.local_addr().to_string()).unwrap();
    (server, client)
}

fn epoch_of(client: &mut Client) -> u64 {
    let reply = client.roundtrip("STATS").expect("stats");
    let v = json::parse(&reply).unwrap_or_else(|e| panic!("undecodable reply ({e}): {reply}"));
    v.get("epoch").and_then(Json::as_u64).expect("epoch")
}

fn await_epoch(client: &mut Client, want: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    loop {
        let have = epoch_of(client);
        if have >= want {
            assert_eq!(have, want, "{what}: follower overshot epoch {want}");
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: follower stuck at epoch {have}, want {want}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn submarine_id_counts(client: &mut Client) -> BTreeMap<String, usize> {
    let reply = client
        .roundtrip("SQL SELECT Id FROM SUBMARINE")
        .expect("id query");
    let v = json::parse(&reply).expect("id query reply");
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{reply}");
    let mut counts = BTreeMap::new();
    for row in v.get("rows").and_then(Json::as_array).expect("rows") {
        if let Some(id) = row
            .as_array()
            .and_then(|cells| cells.first())
            .and_then(Json::as_str)
        {
            *counts.entry(id.trim().to_string()).or_insert(0) += 1;
        }
    }
    counts
}

#[test]
fn duplicated_records_are_skipped_in_place_without_reapplying() {
    let primary = FakePrimary::bind();
    let (server, mut client) = follower(&primary.addr);
    let mut conn = primary.accept();
    let base = conn.from;

    conn.send_ok(base);
    conn.send_write(base + 1, "WDUP001");
    // The stream stutters: the same frame again (net.dup does exactly
    // this), then twice more for good measure.
    conn.send_write(base + 1, "WDUP001");
    conn.send_write(base + 1, "WDUP001");
    // The stream must still be live after the skips — this next record
    // only applies if the duplicates didn't cost us the connection.
    conn.send_write(base + 2, "WDUP002");
    conn.send(&StreamMsg::Heartbeat {
        epoch: base + 2,
        term: 0,
    });

    await_epoch(&mut client, base + 2, "post-duplicate apply");
    let counts = submarine_id_counts(&mut client);
    assert_eq!(counts.get("WDUP001"), Some(&1), "duplicate was re-applied");
    assert_eq!(counts.get("WDUP002"), Some(&1));
    drop(conn);
    server.shutdown();
}

#[test]
fn interleaved_garbage_drops_the_stream_and_the_rejoin_heals() {
    let primary = FakePrimary::bind();
    let (server, mut client) = follower(&primary.addr);
    let mut conn = primary.accept();
    let base = conn.from;

    conn.send_ok(base);
    conn.send_write(base + 1, "WGBG001");
    await_epoch(&mut client, base + 1, "pre-garbage apply");
    // Three shapes of garbage a broken peer (or a torn earlier frame's
    // tail) could interleave: a non-stream line, a stream line with an
    // unknown verb, and a record whose body is not hex.
    conn.send_line("SQL SELECT 1");

    // The reader must drop the stream (never guess) and re-request from
    // the epoch it durably holds — not from 0, not past the garbage.
    let mut conn = primary.accept();
    assert_eq!(conn.from, base + 1, "rejoin must resume at the held epoch");
    conn.send_ok(base + 1);
    conn.send_line("#repl bogus 1 2");

    let mut conn = primary.accept();
    assert_eq!(conn.from, base + 1);
    conn.send_ok(base + 1);
    conn.send_line("#repl record write 0 2 2 zz");

    let mut conn = primary.accept();
    assert_eq!(conn.from, base + 1);
    conn.send_ok(base + 1);
    conn.send_write(base + 2, "WGBG002");
    conn.send(&StreamMsg::Heartbeat {
        epoch: base + 2,
        term: 0,
    });

    await_epoch(&mut client, base + 2, "post-garbage heal");
    let counts = submarine_id_counts(&mut client);
    assert_eq!(counts.get("WGBG001"), Some(&1));
    assert_eq!(counts.get("WGBG002"), Some(&1));
    drop(conn);
    server.shutdown();
}

#[test]
fn torn_frames_never_half_apply_across_any_cut_point() {
    let seed = support::chaos_seed(0x7EA6_F8A3);
    println!("torn-frame seed: {seed} (set INTENSIO_CHAOS_SEED to reproduce)");
    let mut rng = support::Rng(seed | 1);

    let primary = FakePrimary::bind();
    let (server, mut client) = follower(&primary.addr);

    // Property loop: each round tears the next record at a random byte
    // (flush, then close — the classic mid-frame peer death), and the
    // follower must come back asking for the epoch it actually holds.
    let mut expected = {
        let conn = primary.accept();
        conn.from
    };
    // Round 0's accept above consumed the handshake without serving it;
    // the follower will reconnect. Drive 6 torn rounds.
    let mut intact: Vec<String> = Vec::new();
    for round in 0..6u32 {
        let mut conn = primary.accept();
        assert_eq!(
            conn.from, expected,
            "round {round}: a torn frame moved the follower's epoch"
        );
        conn.send_ok(expected);
        let good = format!("WTORN{round:02}");
        conn.send_write(expected + 1, &good);
        await_epoch(&mut client, expected + 1, "intact record before the tear");
        intact.push(good);
        // Tear anywhere in the frame, including inside the hex body.
        conn.send_torn_write(expected + 2, &format!("XTORN{round:02}"), {
            (rng.next() % 90) as usize + 1
        });
        expected += 1;
        drop(conn); // close: the torn tail is all the follower ever gets
    }

    // Final intact connection: the chain continues from the held epoch.
    let mut conn = primary.accept();
    assert_eq!(conn.from, expected);
    conn.send_ok(expected);
    conn.send_write(expected + 1, "WTORNFI");
    await_epoch(&mut client, expected + 1, "post-tear heal");

    let counts = submarine_id_counts(&mut client);
    for id in &intact {
        assert_eq!(
            counts.get(id),
            Some(&1),
            "intact record {id} lost or doubled"
        );
    }
    assert_eq!(counts.get("WTORNFI"), Some(&1));
    for round in 0..6u32 {
        assert_eq!(
            counts.get(&format!("XTORN{round:02}")),
            None,
            "round {round}: a torn frame half-applied"
        );
    }
    drop(conn);
    server.shutdown();
}

#[test]
fn epoch_gap_forces_resync_from_the_durable_epoch() {
    let primary = FakePrimary::bind();
    let (server, mut client) = follower(&primary.addr);
    let mut conn = primary.accept();
    let base = conn.from;

    conn.send_ok(base);
    conn.send_write(base + 1, "WGAP001");
    await_epoch(&mut client, base + 1, "pre-gap apply");
    // Skip an epoch: a chain break the follower must refuse to jump.
    conn.send_write(base + 3, "WGAP003");

    let mut conn = primary.accept();
    assert_eq!(
        conn.from,
        base + 1,
        "the gap record must not advance the follower"
    );
    // Re-sync: ship the missing tail in order (a real primary would
    // pick log tail vs snapshot here).
    conn.send_ok(base + 1);
    conn.send_write(base + 2, "WGAP002");
    conn.send_write(base + 3, "WGAP003");

    await_epoch(&mut client, base + 3, "post-gap resync");
    let counts = submarine_id_counts(&mut client);
    for id in ["WGAP001", "WGAP002", "WGAP003"] {
        assert_eq!(counts.get(id), Some(&1), "{id} lost or doubled by the gap");
    }
    assert_eq!(epoch_of(&mut client), base + 3);
    drop(conn);
    server.shutdown();
}
