//! Term-fenced failover contract tests, against real `serve` child
//! processes (SIGKILL, never a clean shutdown).
//!
//! The failover contract:
//!
//! 1. **Promotion.** A `--candidate` that loses the primary's
//!    heartbeat stream past its seeded deadline promotes itself:
//!    bumps the term, fsyncs a `TERM` fencepost into its WAL, and
//!    starts accepting writes.
//! 2. **Fencing.** A deposed primary that wakes up is rejected with
//!    `STALE_TERM` the moment it meets anything that durably observed
//!    the new term, demotes itself, and rejoins as a follower — its
//!    acked-but-unshipped term-0 suffix is retracted by the new
//!    primary's snapshot bootstrap, never merged.
//! 3. **No split brain.** Dueling candidates with *equal* timeouts
//!    break the tie through their seeded jitter: exactly one promotes,
//!    the other discovers the winner in its pre-promotion sweep and
//!    joins it.
//! 4. **No acked-on-new-term write lost, no duplicate application.**
//!    The exact-set audit at the end of every round.

#![cfg(unix)]

mod support;

use std::collections::BTreeMap;
use std::path::Path;
use std::time::{Duration, Instant};
use support::{await_epoch_match, await_role, temp_dir, write_retrying, Conn};

/// These drills audit exact epochs, so learning must not move them on
/// its own.
struct ServeChild;

impl ServeChild {
    fn spawn(data_dir: &Path, extra: &[&str]) -> support::ServeChild {
        let mut args = vec!["--no-learn"];
        args.extend_from_slice(extra);
        support::ServeChild::spawn(data_dir, &args)
    }
}

/// The acceptance-criteria chaos drill, 20/20 rounds: primary
/// SIGKILLed mid-write-burst, candidate promotes within its deadline,
/// the restarted old primary is fenced via `STALE_TERM` and demotes,
/// and the final exact-set audit shows every acked write present on
/// both nodes with no duplicate application.
#[test]
fn seeded_failover_twenty_rounds() {
    const ROUNDS: usize = 20;
    const TIMEOUT_MS: u64 = 300;
    for round in 0..ROUNDS {
        let pdir = temp_dir(&format!("r{round}-p"));
        let cdir = temp_dir(&format!("r{round}-c"));
        let primary = ServeChild::spawn(&pdir, &["--fsync", "batch:4"]);
        let paddr = primary.addr.clone();
        let seed = format!("{}", 0xF0 + round as u64);
        let candidate = ServeChild::spawn(
            &cdir,
            &[
                "--fsync",
                "batch:4",
                "--candidate",
                "--replicate-from",
                &paddr,
                "--failover-timeout-ms",
                &format!("{TIMEOUT_MS}"),
                "--failover-seed",
                &seed,
                "--repl-heartbeat-ms",
                "50",
            ],
        );
        let caddr = candidate.addr.clone();
        await_epoch_match(&paddr, &caddr, "pre-burst catchup");

        // Mid-write-burst kill: 3 acked before, the rest ride the
        // retry loop through the outage. Replication is async and
        // single-copy, so an acked term-0 write is only *guaranteed*
        // once shipped — wait for the candidate to hold the prefix
        // before killing, then assert that guarantee end to end.
        let mut acked: Vec<String> = Vec::new();
        for i in 0..3 {
            let id = format!("R{round:02}A{i:02}");
            write_retrying(&[&paddr], &id);
            acked.push(id);
        }
        await_epoch_match(&paddr, &caddr, "prefix shipped");
        primary.kill();
        let killed = Instant::now();
        for i in 0..3 {
            let id = format!("R{round:02}B{i:02}");
            write_retrying(&[&caddr], &id);
            acked.push(id);
        }
        // The candidate promoted (the post-kill writes prove it); the
        // deadline contract: within 1.5*timeout plus polling slack.
        let (_, role, term) = Conn::to(&caddr).status();
        assert_eq!(role, "primary", "round {round}: candidate never promoted");
        assert_eq!(term, 1, "round {round}: promotion must bump the term to 1");
        let outage = killed.elapsed();
        assert!(
            outage < Duration::from_millis(10 * TIMEOUT_MS),
            "round {round}: writes unavailable for {outage:?}"
        );

        // The deposed primary wakes up over its old WAL with no peers
        // configured: it recovers as a term-0 primary and *stays* one
        // until something carrying the new term reaches it. A
        // higher-term handshake must hit the STALE_TERM fence, and the
        // fence itself must demote it (no poller involved here).
        let deposed = ServeChild::spawn(&pdir, &["--fsync", "batch:4"]);
        let daddr = deposed.addr.clone();
        let fence = Conn::to(&daddr)
            .roundtrip(&format!("REPLICATE 0 term={term}"))
            .expect("fence probe");
        assert!(
            fence.contains("STALE_TERM"),
            "round {round}: stale primary not fenced: {fence}"
        );
        await_role(
            &daddr,
            "follower",
            Duration::from_secs(30),
            "fence demotion",
        );
        deposed.kill();

        // Restarted again knowing only its peers, the telemetry poller
        // is the discovery path: it finds the new primary, demotes,
        // and a snapshot bootstrap rejoins it to the new lineage.
        let deposed = ServeChild::spawn(&pdir, &["--fsync", "batch:4", "--peers", &caddr]);
        let daddr = deposed.addr.clone();
        await_role(&daddr, "follower", Duration::from_secs(30), "poll demotion");
        await_epoch_match(&caddr, &daddr, "deposed rejoin");

        // Exact-set audit on both survivors.
        for addr in [&caddr, &daddr] {
            let counts = Conn::to(addr).submarine_id_counts();
            for id in &acked {
                assert_eq!(
                    counts.get(id).copied().unwrap_or(0),
                    1,
                    "round {round}: acked write {id} lost or duplicated on {addr}"
                );
            }
        }
        assert_eq!(
            Conn::to(&caddr).submarine_id_counts(),
            Conn::to(&daddr).submarine_id_counts(),
            "round {round}: survivors diverge"
        );

        deposed.kill();
        candidate.kill();
        let _ = std::fs::remove_dir_all(&pdir);
        let _ = std::fs::remove_dir_all(&cdir);
    }
    println!("failover chaos: {ROUNDS}/{ROUNDS} rounds passed");
}

/// Equal `--failover-timeout-ms`, distinct seeds: the seeded jitter is
/// the tie-break. Exactly one candidate promotes; the other's
/// pre-promotion sweep discovers the winner and joins it instead of
/// splitting the cluster into dueling primaries.
#[test]
fn dueling_candidates_tie_broken_by_seed() {
    const TIMEOUT_MS: u64 = 400;
    let timeout = Duration::from_millis(TIMEOUT_MS);
    // The promotion deadline is deterministic per seed (the same
    // Backoff construction replicator_loop uses): pick two seeds whose
    // deadlines are far enough apart that the loser's sweep always
    // sees the winner already promoted.
    let deadline_for = |seed: u64| {
        timeout / 2
            + intensio_fault::Backoff::new(timeout, timeout, seed.wrapping_add(1)).delay_for(0)
    };
    // Deadlines are jittered into a [timeout, 1.5*timeout) band, so
    // scan a pool and take the extremes — the widest gap the band
    // offers — rather than hoping two fixed seeds land far apart.
    let (a, b) = (1u64..=64)
        .flat_map(|x| (1u64..=64).map(move |y| (x, y)))
        .filter(|(x, y)| x != y && deadline_for(*x) < deadline_for(*y))
        .max_by_key(|(x, y)| deadline_for(*y) - deadline_for(*x))
        .expect("seed pool yields a winner/loser pair");
    assert!(
        deadline_for(b) - deadline_for(a) >= Duration::from_millis(150),
        "seed pool too narrow: {:?} vs {:?}",
        deadline_for(a),
        deadline_for(b)
    );
    println!(
        "seeds {a}/{b}: deadlines {:?} vs {:?}",
        deadline_for(a),
        deadline_for(b)
    );

    let pdir = temp_dir("duel-p");
    let adir = temp_dir("duel-a");
    let bdir = temp_dir("duel-b");
    let primary = ServeChild::spawn(&pdir, &["--fsync", "batch:4"]);
    let paddr = primary.addr.clone();
    let spawn_candidate = |dir: &Path, seed: u64, other: &str| {
        ServeChild::spawn(
            dir,
            &[
                "--fsync",
                "batch:4",
                "--candidate",
                "--replicate-from",
                // The rotation names the sibling so the pre-promotion
                // sweep can find an already-promoted winner.
                &format!("{paddr},{other}"),
                "--failover-timeout-ms",
                &format!("{TIMEOUT_MS}"),
                "--failover-seed",
                &format!("{seed}"),
                "--repl-heartbeat-ms",
                "50",
            ],
        )
    };
    let cand_a = spawn_candidate(&adir, a, "127.0.0.1:1");
    let cand_b = spawn_candidate(&bdir, b, &cand_a.addr);
    let (aaddr, baddr) = (cand_a.addr.clone(), cand_b.addr.clone());
    write_retrying(&[&paddr], "DUEL000");
    await_epoch_match(&paddr, &aaddr, "candidate A catchup");
    await_epoch_match(&paddr, &baddr, "candidate B catchup");

    primary.kill();
    // The earlier deadline (seed `a`) must win the promotion...
    await_role(&aaddr, "primary", Duration::from_secs(30), "duel winner");
    // ...and the later one must stay subordinate: its sweep finds the
    // winner, so it keeps tailing instead of promoting. Give it past
    // its own deadline (plus slack) to prove it held fire.
    std::thread::sleep(deadline_for(b) + Duration::from_millis(500));
    let (_, role_b, term_b) = Conn::to(&baddr).status();
    assert_eq!(
        role_b, "candidate",
        "the losing candidate must not also promote (split brain)"
    );
    let (_, role_a, term_a) = Conn::to(&aaddr).status();
    assert_eq!(role_a, "primary");
    assert_eq!(term_a, 1);
    assert_eq!(term_b, 1, "the loser must adopt the winner's term");

    // The loser serves the winner's lineage: a write on the winner is
    // readable on the loser at its exact epoch.
    write_retrying(&[&aaddr], "DUEL001");
    await_epoch_match(&aaddr, &baddr, "loser tails winner");
    assert_eq!(
        Conn::to(&baddr)
            .submarine_id_counts()
            .get("DUEL001")
            .copied(),
        Some(1),
        "post-duel write must replicate to the losing candidate"
    );

    cand_b.kill();
    cand_a.kill();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&adir);
    let _ = std::fs::remove_dir_all(&bdir);
}

/// A SIGKILLed primary with an acked-but-unshipped WAL suffix: those
/// term-0 writes never reached the candidate (single-copy acks do not
/// survive the primary), so after failover the rejoining node's
/// divergent suffix must be *retracted* by the new primary's snapshot
/// bootstrap — never merged — while every write acked on the new term
/// survives on both nodes. A final solo restart proves the retraction
/// is durable (the old suffix was physically truncated, not shadowed).
#[test]
fn stale_primary_sigkill_unshipped_suffix_truncated() {
    let pdir = temp_dir("suffix-p");
    let cdir = temp_dir("suffix-c");
    let primary = ServeChild::spawn(&pdir, &["--fsync", "always"]);
    let paddr = primary.addr.clone();
    let candidate_args = |paddr: &str| {
        vec![
            "--fsync".to_string(),
            "always".to_string(),
            "--candidate".to_string(),
            "--replicate-from".to_string(),
            paddr.to_string(),
            "--failover-timeout-ms".to_string(),
            "300".to_string(),
            "--failover-seed".to_string(),
            "9".to_string(),
            "--repl-heartbeat-ms".to_string(),
            "50".to_string(),
        ]
    };
    let args = candidate_args(&paddr);
    let argrefs: Vec<&str> = args.iter().map(String::as_str).collect();
    let candidate = ServeChild::spawn(&cdir, &argrefs);
    let caddr = candidate.addr.clone();

    // Shipped prefix: on both nodes.
    for i in 0..3 {
        write_retrying(&[&paddr], &format!("SHIP{i:03}"));
    }
    await_epoch_match(&paddr, &caddr, "shipped prefix");

    // Unshipped suffix: the candidate is a corpse while these ack, so
    // they exist only in the primary's WAL.
    candidate.kill();
    for i in 0..3 {
        write_retrying(&[&paddr], &format!("LOST{i:03}"));
    }
    primary.kill();

    // The candidate restarts over its own WAL, finds no primary, and
    // promotes. The unshipped suffix is not on it — by design.
    let candidate = ServeChild::spawn(&cdir, &argrefs);
    let caddr = candidate.addr.clone();
    await_role(&caddr, "primary", Duration::from_secs(30), "promotion");
    let (_, _, new_term) = Conn::to(&caddr).status();
    assert_eq!(new_term, 1);
    for i in 0..3 {
        write_retrying(&[&caddr], &format!("NEWT{i:03}"));
    }

    // The deposed primary wakes up carrying the divergent suffix.
    let deposed = ServeChild::spawn(&pdir, &["--fsync", "always", "--peers", &caddr]);
    let daddr = deposed.addr.clone();
    await_role(&daddr, "follower", Duration::from_secs(30), "demotion");
    await_epoch_match(&caddr, &daddr, "rejoin");

    let expect = |counts: &BTreeMap<String, usize>, addr: &str| {
        for i in 0..3 {
            assert_eq!(
                counts.get(&format!("SHIP{i:03}")).copied(),
                Some(1),
                "shipped prefix write missing on {addr}"
            );
            assert_eq!(
                counts.get(&format!("NEWT{i:03}")).copied(),
                Some(1),
                "acked-on-new-term write missing on {addr}"
            );
            assert_eq!(
                counts.get(&format!("LOST{i:03}")).copied(),
                None,
                "fenced unshipped suffix leaked back into the lineage on {addr}"
            );
        }
    };
    let ccounts = Conn::to(&caddr).submarine_id_counts();
    let dcounts = Conn::to(&daddr).submarine_id_counts();
    println!("new primary {caddr}: {ccounts:?}");
    println!("rejoined    {daddr}: {dcounts:?}");
    expect(&ccounts, &caddr);
    expect(&dcounts, &daddr);

    // Durability of the retraction: SIGKILL the rejoined node and
    // recover it standalone — the truncated suffix must not resurrect.
    deposed.kill();
    let solo = ServeChild::spawn(&pdir, &[]);
    let mut conn = solo.connect();
    let (_, _, term) = conn.status();
    assert_eq!(term, 1, "recovery must land on the adopted term");
    expect(&conn.submarine_id_counts(), "solo restart");

    solo.kill();
    candidate.kill();
    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&cdir);
}
