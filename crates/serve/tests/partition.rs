//! Partition-tolerance chaos drills over real `serve` child processes
//! and injected link faults (`intensio_net`): no process dies in these
//! tests — the *network* does.
//!
//! Topology per drill: primary `a` plus two follower-candidates `b`
//! and `c`, every node labeled (`--net-name`) so `FAULT SET net.*`
//! specs can address links by name. Each process carries its own
//! link-fault registry, so a drill administers the partition on every
//! node that borders it — the same way a real partition is visible
//! from both sides. The harness connections are raw `TcpStream`s (see
//! `support`): the control plane stays up while the cluster's links
//! are down, which is also what lets the drills probe the *minority*
//! side of a partition.
//!
//! Every drill ends in the exact-set audit: every acked write present
//! exactly once on every node (zero loss, zero duplicate
//! application), one primary, one term, healed at lag 0. Failover
//! seeds are chosen so the promotion winner is deterministic; the
//! chaos probability seeds come from `INTENSIO_CHAOS_SEED` (inherited
//! by the children — see `intensio_net::faults::init_from_env`).

#![cfg(unix)]

mod support;

use std::path::PathBuf;
use std::time::{Duration, Instant};
use support::{await_epoch_match, await_role, temp_dir, write_retrying, Conn};

const HEARTBEAT_MS: u64 = 50;
const TIMEOUT_MS: u64 = 400;

/// Failover seeds whose deterministic promotion deadlines are far
/// enough apart that the earlier one (the winner) always promotes
/// before the later one's sweep runs — the same scan the dueling-
/// candidates drill in `failover.rs` uses.
fn winner_loser_seeds() -> (u64, u64) {
    let timeout = Duration::from_millis(TIMEOUT_MS);
    let deadline_for = |seed: u64| {
        timeout / 2
            + intensio_fault::Backoff::new(timeout, timeout, seed.wrapping_add(1)).delay_for(0)
    };
    let (win, lose) = (1u64..=64)
        .flat_map(|x| (1u64..=64).map(move |y| (x, y)))
        .filter(|(x, y)| x != y && deadline_for(*x) < deadline_for(*y))
        .max_by_key(|(x, y)| deadline_for(*y) - deadline_for(*x))
        .expect("seed pool yields a winner/loser pair");
    assert!(
        deadline_for(lose) - deadline_for(win) >= Duration::from_millis(150),
        "seed pool too narrow for a deterministic winner"
    );
    (win, lose)
}

/// One 3-node drill cluster: primary `a` polling its peers, candidates
/// `b` (seeded to win any promotion race) and `c` (seeded to lose),
/// each replicating from `a` with the sibling in the rotation so the
/// pre-promotion sweep can find an already-promoted winner.
struct Cluster {
    a: support::ServeChild,
    b: support::ServeChild,
    c: support::ServeChild,
    dirs: Vec<PathBuf>,
}

fn spawn_cluster(tag: &str) -> Cluster {
    let (win, lose) = winner_loser_seeds();
    let dirs = vec![
        temp_dir(&format!("{tag}-a")),
        temp_dir(&format!("{tag}-b")),
        temp_dir(&format!("{tag}-c")),
    ];
    // `a` needs its peers' addresses at spawn time (the telemetry
    // poller is how a deposed primary discovers the new term after a
    // heal), so reserve them up front.
    let baddr = support::reserve_addr();
    let caddr = support::reserve_addr();
    let hb = format!("{HEARTBEAT_MS}");
    let timeout = format!("{TIMEOUT_MS}");
    let a = support::ServeChild::spawn(
        &dirs[0],
        &[
            "--no-learn",
            "--fsync",
            "batch:4",
            "--net-name",
            "a",
            "--repl-heartbeat-ms",
            &hb,
            "--peers",
            &format!("{baddr},{caddr}"),
        ],
    );
    let candidate = |dir: &PathBuf, addr: &str, name: &str, rotation: &str, seed: u64| {
        support::ServeChild::spawn(
            dir,
            &[
                "--no-learn",
                "--fsync",
                "batch:4",
                "--net-name",
                name,
                "--addr",
                addr,
                "--candidate",
                "--replicate-from",
                rotation,
                "--failover-timeout-ms",
                &timeout,
                "--failover-seed",
                &format!("{seed}"),
                "--repl-heartbeat-ms",
                &hb,
            ],
        )
    };
    let b = candidate(&dirs[1], &baddr, "b", &format!("{},{caddr}", a.addr), win);
    let c = candidate(&dirs[2], &caddr, "c", &format!("{},{baddr}", a.addr), lose);
    assert_eq!(b.addr, baddr, "b must bind its reserved address");
    assert_eq!(c.addr, caddr, "c must bind its reserved address");
    Cluster { a, b, c, dirs }
}

impl Cluster {
    fn addrs(&self) -> [&str; 3] {
        [&self.a.addr, &self.b.addr, &self.c.addr]
    }

    /// Administer link faults on one node over its control plane.
    fn fault(&self, addr: &str, specs: &str) {
        let reply = Conn::to(addr)
            .roundtrip(&format!("FAULT SET {specs}"))
            .expect("FAULT SET roundtrip");
        assert!(
            !reply.contains("\"ok\":false"),
            "FAULT SET {specs} on {addr} refused: {reply}"
        );
    }

    fn heal(&self, addr: &str) {
        let reply = Conn::to(addr)
            .roundtrip("FAULT CLEAR")
            .expect("FAULT CLEAR roundtrip");
        assert!(
            !reply.contains("\"ok\":false"),
            "FAULT CLEAR on {addr} refused: {reply}"
        );
    }

    fn heal_all(&self) {
        for addr in self.addrs() {
            self.heal(addr);
        }
    }

    /// Sever every link between `a` and the majority side, from both
    /// shores: on `a` by the followers' stream labels (the `node=`
    /// handshake names the writers) and poll addresses; on `b`/`c` by
    /// the primary's address (the endpoint they dial).
    fn isolate_a(&self) {
        self.fault(
            &self.a.addr,
            &format!(
                "net.partition=a<->b;net.partition#2=a<->c;\
                 net.partition#3=a<->{};net.partition#4=a<->{}",
                self.b.addr, self.c.addr
            ),
        );
        self.fault(&self.b.addr, &format!("net.partition=b<->{}", self.a.addr));
        self.fault(&self.c.addr, &format!("net.partition=c<->{}", self.a.addr));
    }

    /// Seed `n` writes through `a` and wait until both followers hold
    /// them, so later audits never race the initial catch-up.
    fn seed_writes(&self, prefix: &str, n: usize, acked: &mut Vec<String>) {
        for i in 0..n {
            let id = format!("{prefix}{i:03}");
            write_retrying(&[&self.a.addr], &id);
            acked.push(id);
        }
        await_epoch_match(&self.a.addr, &self.b.addr, "seed catch-up to b");
        await_epoch_match(&self.a.addr, &self.c.addr, "seed catch-up to c");
    }

    /// The end-of-drill audit: exactly one primary, one term
    /// everywhere, and the exact acked set — each id present exactly
    /// once on every node, identical multisets across the cluster.
    fn audit(&self, acked: &[String], want_term: u64, what: &str) {
        let mut primaries = Vec::new();
        let mut counts = Vec::new();
        for addr in self.addrs() {
            let (_, role, term) = Conn::to(addr).status();
            assert_eq!(term, want_term, "{what}: {addr} is not on term {want_term}");
            if role == "primary" {
                primaries.push(addr.to_string());
            }
            counts.push((addr.to_string(), Conn::to(addr).submarine_id_counts()));
        }
        assert_eq!(
            primaries.len(),
            1,
            "{what}: expected exactly one primary, found {primaries:?}"
        );
        for (addr, c) in &counts {
            for id in acked {
                assert_eq!(
                    c.get(id).copied().unwrap_or(0),
                    1,
                    "{what}: acked write {id} lost or duplicated on {addr}"
                );
            }
            assert_eq!(
                c, &counts[0].1,
                "{what}: {addr} diverges from {}",
                counts[0].0
            );
        }
    }

    fn teardown(self) {
        self.a.kill();
        self.b.kill();
        self.c.kill();
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Poll until `addr` has durably observed `term`.
fn await_term(addr: &str, term: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (_, _, t) = Conn::to(addr).status();
        if t == term {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "{what}: {addr} stuck at term {t}, want {term}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One `repl.*` counter from a follower's STATS (0 when absent).
fn repl_counter(addr: &str, field: &str) -> u64 {
    use intensio_serve::json::Json;
    Conn::to(addr)
        .json("STATS")
        .get("repl")
        .and_then(|r| r.get(field))
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

/// The flagship drill: a symmetric partition strands the primary in
/// the minority. The majority elects the seeded winner (`b`), the
/// loser's sweep joins it instead of dueling, the stranded primary
/// keeps serving stale reads but is fenced the moment anything
/// carrying the new term reaches it, and the heal rejoins it to the
/// new lineage at lag 0 with the exact acked set everywhere.
#[test]
fn symmetric_partition_promotes_majority_and_fences_the_stranded_primary() {
    let cluster = spawn_cluster("sym");
    let mut acked = Vec::new();
    cluster.seed_writes("SP", 3, &mut acked);

    cluster.isolate_a();
    let cut = Instant::now();

    // The stranded primary doesn't know yet: it still serves (stale)
    // reads and still calls itself a term-0 primary. That availability
    // is the point of the single-copy contract — and why writes must
    // not be sent to it while partitioned.
    let (_, role_a, term_a) = Conn::to(&cluster.a.addr).status();
    assert_eq!((role_a.as_str(), term_a), ("primary", 0));

    // The majority elects the seeded winner within the failover
    // deadline (plus generous CI slack).
    let took = await_role(
        &cluster.b.addr,
        "primary",
        Duration::from_secs(30),
        "winner promotion",
    );
    assert!(
        cut.elapsed() < Duration::from_millis(10 * TIMEOUT_MS),
        "majority unavailable for {took:?} after the cut"
    );
    let (_, _, term_b) = Conn::to(&cluster.b.addr).status();
    assert_eq!(term_b, 1, "promotion must bump the term");

    // Post-partition writes go to the majority side only.
    for i in 0..4 {
        let id = format!("SPM{i:03}");
        write_retrying(&[&cluster.b.addr], &id);
        acked.push(id);
    }
    // The loser adopts the winner's term without ever promoting: its
    // pre-promotion sweep found `b` already serving term 1.
    await_term(&cluster.c.addr, 1, "loser adopts the winner's term");
    let (_, role_c, _) = Conn::to(&cluster.c.addr).status();
    assert_ne!(role_c, "primary", "dueling primaries in the majority");
    await_epoch_match(&cluster.b.addr, &cluster.c.addr, "majority converges");

    // The silent stream to the dead link was dropped as half-open
    // (nothing crossed it for 3× the heartbeat cadence), not waited
    // on. Asserted on `c` — the winner's own drops vanish from STATS
    // once it serves as primary (`repl` is a follower-side object).
    assert!(
        repl_counter(&cluster.c.addr, "half_open_drops") >= 1,
        "the severed stream should have been dropped as half-open"
    );

    // The minority primary is still stranded on the old lineage: the
    // majority's writes must NOT be visible there.
    let stale = Conn::to(&cluster.a.addr).submarine_id_counts();
    assert!(
        !stale.contains_key("SPM000"),
        "a partitioned minority cannot hold majority-term writes"
    );

    // Fencing: the first thing carrying term 1 that reaches `a` — here
    // a replication handshake crossing the partition boundary — is
    // refused with STALE_TERM, and the refusal itself demotes.
    let fence = Conn::to(&cluster.a.addr)
        .roundtrip("REPLICATE 0 term=1")
        .expect("fence probe");
    assert!(
        fence.contains("STALE_TERM"),
        "stranded primary not fenced: {fence}"
    );
    await_role(
        &cluster.a.addr,
        "follower",
        Duration::from_secs(30),
        "fence demotion",
    );

    // Heal. The deposed node's telemetry poller finds the new primary,
    // re-points its replication rotation, and it rejoins at lag 0.
    cluster.heal_all();
    await_epoch_match(&cluster.b.addr, &cluster.a.addr, "deposed rejoin");
    let (_, role_a, term_a) = Conn::to(&cluster.a.addr).status();
    assert_eq!(
        (role_a.as_str(), term_a),
        ("follower", 1),
        "exactly one fenced deposed primary, rejoined on the new term"
    );

    cluster.audit(&acked, 1, "symmetric partition");
    cluster.teardown();
}

/// An asymmetric (one-way) partition: `a`'s frames to `b` vanish while
/// `b`'s packets to `a` still flow. `b` is starved into promoting; `c`
/// — which still hears `a` — never wavers. On heal the deposed
/// primary discovers the higher term through its poller, demotes, and
/// the whole cluster converges on the new lineage.
#[test]
fn oneway_partition_starves_one_follower_into_a_clean_takeover() {
    let cluster = spawn_cluster("oneway");
    let mut acked = Vec::new();
    cluster.seed_writes("OW", 3, &mut acked);

    // Sever only the a→b direction, from both shores: on `a` against
    // the labeled stream writer and the poll address; on `b` against
    // inbound traffic from the primary's address.
    cluster.fault(
        &cluster.a.addr,
        &format!("net.oneway=a->b;net.oneway#2=a->{}", cluster.b.addr),
    );
    cluster.fault(
        &cluster.b.addr,
        &format!("net.oneway={}->b", cluster.a.addr),
    );

    // `b` hears nothing — its redials connect (the b→a direction is
    // fine) but every read starves — so past its deadline, with its
    // sweep unable to hear `a` either, it promotes.
    await_role(
        &cluster.b.addr,
        "primary",
        Duration::from_secs(30),
        "starved follower promotes",
    );
    // Dueling primaries now exist by design; `c` stays loyal to the
    // one it can still hear.
    let (_, role_a, term_a) = Conn::to(&cluster.a.addr).status();
    assert_eq!((role_a.as_str(), term_a), ("primary", 0));
    let (_, role_c, term_c) = Conn::to(&cluster.c.addr).status();
    assert_ne!(role_c, "primary");
    assert_eq!(term_c, 0, "c must not adopt the new term while a is up");

    // The new lineage takes the writes.
    for i in 0..4 {
        let id = format!("OWN{i:03}");
        write_retrying(&[&cluster.b.addr], &id);
        acked.push(id);
    }

    // Heal. `a` polls `b`, sees a primary at a higher term, demotes,
    // and prefers it as replication target; `a`'s stream to `c` ends
    // with the demotion, and `c`'s rotation walks to `b`.
    cluster.heal(&cluster.a.addr);
    cluster.heal(&cluster.b.addr);
    await_role(
        &cluster.a.addr,
        "follower",
        Duration::from_secs(30),
        "deposed one-way primary demotes",
    );
    await_term(&cluster.c.addr, 1, "c crosses to the new lineage");
    await_epoch_match(&cluster.b.addr, &cluster.a.addr, "a rejoins");
    await_epoch_match(&cluster.b.addr, &cluster.c.addr, "c rejoins");

    cluster.audit(&acked, 1, "one-way partition");
    cluster.teardown();
}

/// Flapping links: short severs (well under the failover deadline)
/// with writes landing mid-sever. Each heal leaves the followers with
/// a hole where the blackholed records were; the next record forces
/// the gap detection → reconnect → durable-epoch resync path. No flap
/// may promote anyone.
#[test]
fn flapping_links_resync_without_ever_promoting() {
    let cluster = spawn_cluster("flap");
    let mut acked = Vec::new();
    cluster.seed_writes("FL", 3, &mut acked);

    for flap in 0..4 {
        // Sever from `a`'s shore only: follower redials still reach
        // the handshake, but every shipped frame is blackholed — the
        // nastiest variant, because the primary believes it shipped.
        cluster.fault(
            &cluster.a.addr,
            &format!(
                "net.partition=a<->b;net.partition#2=a<->c;\
                 net.partition#3=a<->{};net.partition#4=a<->{}",
                cluster.b.addr, cluster.c.addr
            ),
        );
        for i in 0..2 {
            let id = format!("FLAP{flap}{i:02}");
            write_retrying(&[&cluster.a.addr], &id);
            acked.push(id);
        }
        std::thread::sleep(Duration::from_millis(100));
        cluster.heal(&cluster.a.addr);
        // Heartbeats alone advertise the lag but never replay history;
        // the marker write is the record that trips the gap detector.
        let id = format!("FLAPM{flap:02}");
        write_retrying(&[&cluster.a.addr], &id);
        acked.push(id);
        await_epoch_match(&cluster.a.addr, &cluster.b.addr, "flap heal to b");
        await_epoch_match(&cluster.a.addr, &cluster.c.addr, "flap heal to c");
    }

    let (_, role_a, _) = Conn::to(&cluster.a.addr).status();
    assert_eq!(role_a, "primary", "flapping must never depose the primary");
    assert!(
        repl_counter(&cluster.b.addr, "reconnects") >= 1,
        "the gap detector should have forced at least one resync"
    );
    cluster.audit(&acked, 0, "flapping links");
    cluster.teardown();
}

/// Slow is not dead: heartbeats delayed past every candidate's
/// failover deadline make both candidates *due*, but the pre-promotion
/// sweep still reaches the primary and joins it instead of dueling —
/// the same tie-break that keeps two candidates from splitting the
/// cluster keeps a slow cluster from a false promotion.
#[test]
fn delayed_heartbeats_alone_never_cause_a_false_promotion() {
    let cluster = spawn_cluster("delay");
    let mut acked = Vec::new();
    cluster.seed_writes("DL", 3, &mut acked);

    // Delay every stream frame a ships by far more than the failover
    // deadline (the deadline is at most 1.5 × 400ms).
    cluster.fault(&cluster.a.addr, "net.delay:1000=a->b;net.delay:1000#2=a->c");
    // Several full deadline cycles under delay.
    std::thread::sleep(Duration::from_millis(4 * TIMEOUT_MS));
    for addr in [&cluster.b.addr, &cluster.c.addr] {
        let (_, role, term) = Conn::to(addr).status();
        assert_ne!(
            role, "primary",
            "{addr} promoted under delay while the primary was reachable"
        );
        assert_eq!(term, 0, "{addr} bumped the term under pure slowness");
    }
    // The primary stayed available for writes the whole time.
    write_retrying(&[&cluster.a.addr], "DLW000");
    acked.push("DLW000".to_string());

    cluster.heal(&cluster.a.addr);
    await_epoch_match(&cluster.a.addr, &cluster.b.addr, "delay heal to b");
    await_epoch_match(&cluster.a.addr, &cluster.c.addr, "delay heal to c");
    cluster.audit(&acked, 0, "delayed heartbeats");
    cluster.teardown();
}

/// Duplicated and torn `#repl` frames on live links, injected at the
/// primary's stream writers: the follower reader's dedup keeps `b`'s
/// stream alive through exact duplicates, and `c` recovers from torn
/// frames by dropping the stream and resyncing — with the exact-set
/// audit proving neither path ever double-applies or loses a record.
#[test]
fn duplicated_and_torn_frames_on_live_links_never_corrupt_a_follower() {
    let cluster = spawn_cluster("dirty");
    let mut acked = Vec::new();
    cluster.seed_writes("DT", 3, &mut acked);

    // 50% of frames to b ship twice (seeded by INTENSIO_CHAOS_SEED);
    // the first two writes to c tear mid-frame and kill the stream.
    cluster.fault(&cluster.a.addr, "net.dup=50%a->b;net.torn_write=a->c*2");
    for i in 0..20 {
        let id = format!("DTW{i:03}");
        write_retrying(&[&cluster.a.addr], &id);
        acked.push(id);
    }
    cluster.heal(&cluster.a.addr);
    await_epoch_match(&cluster.a.addr, &cluster.b.addr, "dup survivor converges");
    await_epoch_match(&cluster.a.addr, &cluster.c.addr, "torn survivor converges");

    let (_, role_a, _) = Conn::to(&cluster.a.addr).status();
    assert_eq!(role_a, "primary", "dirty links must not depose the primary");
    cluster.audit(&acked, 0, "duplicated and torn frames");
    cluster.teardown();
}
