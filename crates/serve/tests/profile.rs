//! `PROFILE` coverage: the timing tree of a cache-miss intensional
//! query carries every pipeline stage plus per-rule inference attempts,
//! a cache-hit profile shows the short path, and the wire encoding
//! round-trips through the TCP front end.

use intensio_serve::{json, Client, ProfileNode, Reply, Request, Server, Service, ServiceConfig};
use std::sync::Arc;

fn open_service() -> Service {
    let db = intensio_shipdb::ship_database().unwrap();
    let model = intensio_shipdb::ship_model().unwrap();
    let cfg = ServiceConfig {
        workers: 2,
        cache_capacity: 64,
        ..ServiceConfig::default()
    };
    Service::with_config(db, model, cfg).unwrap()
}

/// The paper's Example 1 conditions: fires induced rules, so the
/// profile must show inference work.
const STABLE: &str = "SELECT Class FROM CLASS WHERE Displacement > 8000";

fn stage_names(tree: &[ProfileNode], out: &mut Vec<String>) {
    for n in tree {
        out.push(n.name.clone());
        stage_names(&n.children, out);
    }
}

#[test]
fn cache_miss_profile_carries_all_stages_and_rule_attempts() {
    let service = open_service();
    let reply = service.submit(Request::Profile(STABLE.to_string()));
    let p = match reply {
        Reply::Profile(p) => p,
        other => panic!("expected a profile reply, got {other:?}"),
    };
    assert!(!p.cached, "first profile of a query is a cache miss");
    assert!(p.total_us > 0);
    assert_eq!(p.rows, 2);
    assert_eq!(p.tree.len(), 1, "one root node per request");
    assert_eq!(p.tree[0].name, "request");

    let mut names = Vec::new();
    stage_names(&p.tree, &mut names);
    for stage in [
        "parse.sql",
        "serve.cache",
        "inference.infer",
        "storage.scan",
    ] {
        assert!(
            names.iter().any(|n| n == stage),
            "profile tree missing stage {stage:?}; got {names:?}"
        );
    }
    // Per-rule inference attempts are grafted under inference.infer.
    let rules: Vec<&String> = names.iter().filter(|n| n.starts_with("rule R")).collect();
    assert!(
        !rules.is_empty(),
        "Example 1 conditions fire rules; got {names:?}"
    );
    // The cache stage recorded its outcome.
    fn find<'a>(tree: &'a [ProfileNode], name: &str) -> Option<&'a ProfileNode> {
        for n in tree {
            if n.name == name {
                return Some(n);
            }
            if let Some(hit) = find(&n.children, name) {
                return Some(hit);
            }
        }
        None
    }
    let cache = find(&p.tree, "serve.cache").unwrap();
    assert!(
        cache
            .fields
            .iter()
            .any(|(k, v)| k == "outcome" && v == "miss"),
        "cache span records the miss: {:?}",
        cache.fields
    );

    // Second profile of the same query: a hit — the short path, no
    // inference stage, outcome=hit.
    let p = match service.submit(Request::Profile(STABLE.to_string())) {
        Reply::Profile(p) => p,
        other => panic!("expected a profile reply, got {other:?}"),
    };
    assert!(p.cached);
    let mut names = Vec::new();
    stage_names(&p.tree, &mut names);
    assert!(
        !names.iter().any(|n| n == "inference.infer"),
        "a cache hit runs no inference; got {names:?}"
    );
    let cache = find(&p.tree, "serve.cache").unwrap();
    assert!(cache
        .fields
        .iter()
        .any(|(k, v)| k == "outcome" && v == "hit"));
}

#[test]
fn profile_of_a_bad_query_is_a_plain_error() {
    let service = open_service();
    let reply = service.submit(Request::Profile("SELEKT nope".to_string()));
    assert!(reply.error().is_some(), "got {reply:?}");
}

#[test]
fn profile_round_trips_over_the_wire() {
    let service = Arc::new(open_service());
    let server = Server::bind(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).unwrap();

    let line = client.roundtrip(&format!("PROFILE {STABLE}")).unwrap();
    let v = json::parse(&line).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("kind").unwrap().as_str(), Some("profile"));
    assert_eq!(v.get("cached").unwrap().as_bool(), Some(false));
    assert!(v.get("total_us").unwrap().as_u64().unwrap() > 0);
    let tree = v.get("tree").unwrap().as_array().unwrap();
    assert_eq!(tree[0].get("name").unwrap().as_str(), Some("request"));
    assert!(
        !tree[0]
            .get("children")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty(),
        "wire profile tree has stage children"
    );
    client.quit();
    server.shutdown();
}
