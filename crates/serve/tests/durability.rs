//! Durable-mode round trips at the service level: a write acknowledged
//! by a `--data-dir` service must still be there after the process
//! state is thrown away and the service is reopened over the same
//! directory — with the epoch having moved only forward.

use intensio_serve::{Reply, Request, Service, ServiceConfig};
use intensio_wal::{FsyncPolicy, WalConfig};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "intensio-serve-durability-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open_durable(dir: &Path, fsync: FsyncPolicy, checkpoint_every: u64) -> Service {
    let db = intensio_shipdb::ship_database().unwrap();
    let model = intensio_shipdb::ship_model().unwrap();
    let cfg = ServiceConfig {
        workers: 2,
        data_dir: Some(dir.to_path_buf()),
        wal: WalConfig {
            fsync,
            checkpoint_every,
            ..WalConfig::default()
        },
        ..ServiceConfig::default()
    };
    Service::with_config(db, model, cfg).unwrap()
}

fn append_sub(service: &Service, id: &str, name: &str) -> u64 {
    let reply = service.submit(Request::Quel(format!(
        "append to SUBMARINE (Id = \"{id}\", Name = \"{name}\", Class = \"0101\")"
    )));
    match reply {
        Reply::Query(q) => q.epoch,
        other => panic!("append not acknowledged: {other:?}"),
    }
}

fn count_subs(service: &Service, prefix: &str) -> usize {
    let reply = service.submit(Request::Sql("SELECT Id, Name FROM SUBMARINE".to_string()));
    match reply {
        Reply::Query(q) => q
            .rows
            .iter()
            .filter(|row| row.first().is_some_and(|id| id.starts_with(prefix)))
            .count(),
        other => panic!("query failed: {other:?}"),
    }
}

fn stats(service: &Service) -> intensio_serve::StatsReply {
    match service.submit(Request::Stats) {
        Reply::Stats(s) => *s,
        other => panic!("stats failed: {other:?}"),
    }
}

#[test]
fn acknowledged_writes_survive_reopen() {
    let dir = temp_dir("roundtrip");

    let mut last_epoch = 0;
    {
        let service = open_durable(&dir, FsyncPolicy::Always, 1_000);
        for i in 0..5 {
            let epoch = append_sub(&service, &format!("DUR{i:04}"), &format!("Durable {i}"));
            assert!(epoch > last_epoch, "epoch must advance on every ack");
            last_epoch = epoch;
        }
        assert_eq!(count_subs(&service, "DUR"), 5);

        let s = stats(&service);
        let d = s.durability.expect("durable mode must report wal stats");
        assert_eq!(d.fsync, "always");
        assert!(d.wal_appends >= 5, "five acked writes → ≥5 wal appends");
        assert!(d.wal_fsyncs >= 5, "fsync=always syncs before every ack");
    }

    // Reopen: everything acked above must be back, at an epoch at least
    // as large as the last one we were told about.
    let service = open_durable(&dir, FsyncPolicy::Always, 1_000);
    assert_eq!(
        count_subs(&service, "DUR"),
        5,
        "acked writes lost on reopen"
    );
    let s = stats(&service);
    assert!(
        s.epoch >= last_epoch,
        "recovered epoch {} ran backwards past acked epoch {last_epoch}",
        s.epoch
    );
    let d = s.durability.expect("durable stats after recovery");
    assert!(
        d.recovered_epoch >= last_epoch,
        "recovery reported epoch {} < acked {last_epoch}",
        d.recovered_epoch
    );

    // The recovered service keeps working: one more write, one more read.
    let epoch = append_sub(&service, "DUR9999", "Post-recovery");
    assert!(epoch > s.epoch);
    assert_eq!(count_subs(&service, "DUR"), 6);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoints_bound_replay_and_preserve_state() {
    let dir = temp_dir("checkpoint");

    {
        // Checkpoint every 3 records: 8 writes force at least two
        // checkpoints, so recovery starts from a checkpoint, not epoch 0.
        let service = open_durable(&dir, FsyncPolicy::Always, 3);
        for i in 0..8 {
            append_sub(&service, &format!("CKP{i:04}"), &format!("Ckpt {i}"));
        }
        // Checkpoints are materialized by a background thread; wait for
        // the cadence signals to land (the boot checkpoint counts too).
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            let d = stats(&service).durability.unwrap();
            if d.wal_checkpoints >= 2 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "8 writes @ every-3 → ≥2 checkpoints, saw {}",
                d.wal_checkpoints
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }

    let service = open_durable(&dir, FsyncPolicy::Always, 3);
    assert_eq!(count_subs(&service, "CKP"), 8);
    let d = stats(&service).durability.unwrap();
    assert!(
        d.recovered_epoch >= 8,
        "recovered epoch {} below the 8 acked writes",
        d.recovered_epoch
    );
    // Replay only covers the post-checkpoint suffix.
    assert!(
        d.replayed_records <= 3,
        "checkpointing should bound replay, got {} records",
        d.replayed_records
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn batch_and_off_policies_round_trip_on_clean_shutdown() {
    for (tag, fsync) in [("batch", FsyncPolicy::Batch(4)), ("off", FsyncPolicy::Off)] {
        let dir = temp_dir(tag);
        {
            let service = open_durable(&dir, fsync, 1_000);
            for i in 0..6 {
                append_sub(&service, &format!("POL{i:04}"), &format!("Policy {i}"));
            }
        } // Drop syncs the tail, so a clean shutdown loses nothing.
        let service = open_durable(&dir, fsync, 1_000);
        assert_eq!(
            count_subs(&service, "POL"),
            6,
            "clean shutdown under fsync={fsync} lost writes"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn recovered_rules_pass_the_install_gate() {
    let dir = temp_dir("rules");

    {
        let service = open_durable(&dir, FsyncPolicy::Always, 1_000);
        // Wait for boot induction's rule set to be installed and logged.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            if stats(&service).rules_fresh {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "boot induction never installed rules"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }

    let service = open_durable(&dir, FsyncPolicy::Always, 1_000);
    let s = stats(&service);
    assert!(
        s.rules_fresh,
        "recovered rule set should be installed without re-induction"
    );
    assert_eq!(
        s.rulesets_rejected, 0,
        "recovered rules must pass the same check gate they passed live"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn directly_subsumed_recovered_rules_are_pruned_on_install() {
    use intensio_rules::rule::{AttrId, Clause, Rule, RuleSet};
    use intensio_wal::record::Record;
    use intensio_wal::segment::{segment_file_name, WAL_SUBDIR};

    // A logged rule set carrying a redundant narrower duplicate of the
    // paper's R5: same conclusion, premise strictly inside the wider
    // rule. The install gate passes it (IC021 is a warning), and the
    // install path drops the duplicate before serving.
    let dir = temp_dir("prune");
    let wide = Rule::new(
        0,
        vec![Clause::between(
            AttrId::new("CLASS", "Displacement"),
            7250,
            30000,
        )],
        Clause::equals(AttrId::new("CLASS", "Type"), "SSBN"),
    )
    .with_subtype("SSBN")
    .with_support(5);
    let narrow = Rule::new(
        0,
        vec![Clause::between(
            AttrId::new("CLASS", "Displacement"),
            8000,
            9000,
        )],
        Clause::equals(AttrId::new("CLASS", "Type"), "SSBN"),
    )
    .with_subtype("SSBN")
    .with_support(3);
    let rules = RuleSet::from_rules([wide, narrow]);
    let body = intensio_wal::rules_codec::rules_to_bytes(&rules).unwrap();
    let wal_dir = dir.join(WAL_SUBDIR);
    std::fs::create_dir_all(&wal_dir).unwrap();
    std::fs::write(
        wal_dir.join(segment_file_name(1)),
        Record::rules(1, 0, body).encode(),
    )
    .unwrap();

    let service = open_durable(&dir, FsyncPolicy::Always, 1_000);
    let s = stats(&service);
    assert!(s.rules_fresh, "the recovered set installs");
    assert_eq!(s.rulesets_rejected, 0, "a redundant set is not rejected");
    assert_eq!(s.rules_pruned, 1, "the narrower duplicate is dropped");

    let _ = std::fs::remove_dir_all(&dir);
}
