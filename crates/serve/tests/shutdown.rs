//! Shutdown drain: `Server::shutdown` must let every in-flight request
//! finish with a complete reply line — never a half-written frame —
//! and close established connections cleanly.
//!
//! Failpoints make the race reproducible: `inference.infer` is armed
//! with a delay so requests are reliably in flight when shutdown
//! starts. This test owns the process-global failpoint registry, which
//! is why it lives in its own integration-test binary.

use intensio_serve::{json, Client, Server, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn open_service() -> Service {
    let db = intensio_shipdb::ship_database().unwrap();
    let model = intensio_shipdb::ship_model().unwrap();
    let cfg = ServiceConfig {
        workers: 4,
        cache_capacity: 16,
        ..ServiceConfig::default()
    };
    Service::with_config(db, model, cfg).unwrap()
}

/// Distinct conditions so the answer cache cannot absorb the delay.
fn slow_query(i: usize) -> String {
    format!(
        "SQL SELECT Class FROM CLASS WHERE Displacement > {}",
        4000 + i
    )
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let service = Arc::new(open_service());
    let server = Server::bind(service.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    // Every inference stalls 150ms: requests sent right before shutdown
    // are still executing when it begins.
    intensio_fault::configure("inference.infer", "delay:150").unwrap();

    const CLIENTS: usize = 6;
    let mut handles = Vec::new();
    for i in 0..CLIENTS {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connects before shutdown");
            let line = client
                .roundtrip(&slow_query(i))
                .expect("in-flight request still gets a complete reply");
            // The frame must be whole: one parseable JSON object.
            let v = json::parse(&line).unwrap_or_else(|e| {
                panic!("half-written frame? {e}: {line:?}");
            });
            assert!(
                v.get("ok").is_some(),
                "reply is a protocol object: {line:?}"
            );
        }));
    }

    // Let the requests reach the workers, then shut down underneath them.
    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();

    for h in handles {
        h.join().expect("client thread got its reply");
    }
    intensio_fault::clear();

    // Drained means drained: new connections are refused or closed
    // without a reply, but nobody observed a torn frame above.
    let refused = match Client::connect(&addr) {
        Err(_) => true,
        Ok(mut c) => c.roundtrip("STATS").is_err(),
    };
    assert!(refused, "server still serving after shutdown");
}

#[test]
fn shutdown_closes_idle_connections_cleanly() {
    let service = Arc::new(open_service());
    let server = Server::bind(service.clone(), "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    // An idle connection (no request in flight) and one that completed
    // a request earlier: both must see a clean close, not a stray or
    // partial frame.
    let idle = Client::connect(&addr).unwrap();
    let mut used = Client::connect(&addr).unwrap();
    let line = used.roundtrip("STATS").unwrap();
    assert!(json::parse(&line).is_ok());

    server.shutdown();

    // After the drain, the server side has closed: the next roundtrip
    // fails cleanly (EOF or reset), never returning a partial frame.
    used.roundtrip("STATS").expect_err("connection was closed");
    drop(idle);
}
