//! Concurrency tests for the serving layer: many threads hammering one
//! service with mixed reads and writes, cache identity, non-blocking
//! background re-induction, and the TCP front end.

use intensio_serve::{json, Client, Reply, Request, Server, Service, ServiceConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn open_service(workers: usize) -> Service {
    let db = intensio_shipdb::ship_database().unwrap();
    let model = intensio_shipdb::ship_model().unwrap();
    let cfg = ServiceConfig {
        workers,
        cache_capacity: 64,
        ..ServiceConfig::default()
    };
    Service::with_config(db, model, cfg).unwrap()
}

const EXAMPLE1: &str = "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
                        FROM SUBMARINE, CLASS \
                        WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000";

/// A query whose relations the hammer's writes never touch: its rows
/// are an oracle that must never change, whatever else is in flight.
const STABLE: &str = "SELECT Class FROM CLASS WHERE Displacement > 8000";

#[test]
fn hammer_mixed_reads_and_writes_from_eight_threads() {
    let service = Arc::new(open_service(4));
    let max_seen_epoch = Arc::new(AtomicU64::new(0));

    const THREADS: usize = 8;
    const ITERS: usize = 25;
    let mut handles = Vec::new();
    let mut expected_writes = 0u64;
    for t in 0..THREADS {
        let service = service.clone();
        let max_seen = max_seen_epoch.clone();
        // Two of the eight threads interleave writes with their reads.
        let writer = t < 2;
        if writer {
            expected_writes += (ITERS / 5) as u64;
        }
        handles.push(std::thread::spawn(move || {
            let mut last_epoch = 0u64;
            for i in 0..ITERS {
                let request = if writer && i % 5 == 4 {
                    // Unique 7-char Id per (thread, iteration): fits
                    // SUBMARINE.Id's char(7) domain, never collides.
                    Request::Quel(format!(
                        "append to SUBMARINE (Id = \"SSBT{t}{i:02}\", \
                         Name = \"Hammer {t}-{i}\", Class = \"0101\")"
                    ))
                } else {
                    match i % 3 {
                        0 => Request::Sql(STABLE.to_string()),
                        1 => Request::Sql(EXAMPLE1.to_string()),
                        _ => Request::Quel(
                            "range of c is CLASS\nretrieve (c.Class) where c.Type = \"SSBN\""
                                .to_string(),
                        ),
                    }
                };
                let is_stable_probe = matches!(&request, Request::Sql(s) if s == STABLE);
                match service.submit(request) {
                    Reply::Query(q) => {
                        // Epochs never run backwards within a thread.
                        assert!(
                            q.epoch >= last_epoch,
                            "epoch went backwards: {} after {last_epoch}",
                            q.epoch
                        );
                        last_epoch = q.epoch;
                        max_seen.fetch_max(q.epoch, Ordering::SeqCst);
                        if is_stable_probe {
                            // The oracle: writes touch only SUBMARINE,
                            // so this answer is invariant.
                            let mut classes: Vec<&str> =
                                q.rows.iter().map(|r| r[0].as_str()).collect();
                            classes.sort_unstable();
                            assert_eq!(classes, ["0101", "1301"], "incorrect answer under load");
                        }
                    }
                    Reply::Error { message } => panic!("request failed: {message}"),
                    Reply::Busy => panic!("shed with the default (large) queue capacity"),
                    Reply::Stats(_)
                    | Reply::Explain(_)
                    | Reply::Fault { .. }
                    | Reply::Check(_)
                    | Reply::Profile(_)
                    | Reply::Telemetry(_) => {
                        unreachable!()
                    }
                }
            }
            last_epoch
        }));
    }
    for h in handles {
        h.join().expect("no hammer thread may panic");
    }

    // No lock was poisoned: the service still answers, and the final
    // epoch is at least every epoch any thread observed.
    let stats = service.stats();
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.writes, expected_writes);
    assert!(stats.queries >= (THREADS * ITERS) as u64 - expected_writes);
    assert!(stats.epoch >= max_seen_epoch.load(Ordering::SeqCst));
    assert!(stats.cache_hits > 0, "repeated conditions must hit");
    let after = service.submit(Request::Sql(STABLE.to_string()));
    assert!(after.query().is_some(), "service healthy after the hammer");

    // All ten appended submarines landed (2 writer threads × 5 each).
    assert!(service.wait_rules_fresh(Duration::from_secs(10)));
    let count = service.submit(Request::Sql(
        "SELECT Id FROM SUBMARINE WHERE Name = \"Hammer\"".to_string(),
    ));
    assert!(count.query().is_some());
    let all = service.submit(Request::Sql("SELECT Id FROM SUBMARINE".to_string()));
    assert_eq!(
        all.query().unwrap().rows.len(),
        24 + expected_writes as usize
    );
}

#[test]
fn cache_hit_is_bit_for_bit_identical_to_the_miss() {
    let service = open_service(2);
    let miss = service.submit(Request::Sql(EXAMPLE1.to_string()));
    let miss = miss.query().unwrap().clone();
    assert!(!miss.cached);
    assert!(!miss.intensional.is_empty(), "Example 1 derives SSBN");

    // Different select list, spacing, case, and conjunct order — the
    // same conditions, so the canonical fingerprint matches.
    let hit = service.submit(Request::Sql(
        "SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS \
         WHERE class.displacement > 8000 AND CLASS.CLASS = SUBMARINE.CLASS"
            .to_string(),
    ));
    let hit = hit.query().unwrap().clone();
    assert!(hit.cached, "same conditions and epoch must hit the cache");
    assert!(
        Arc::ptr_eq(&miss.intensional, &hit.intensional),
        "a hit returns the very object the miss computed"
    );
    assert_eq!(miss.intensional.render(), hit.intensional.render());
    assert_eq!(miss.epoch, hit.epoch);

    // The extensional parts are *not* shared: each query's own rows.
    assert_ne!(miss.columns, hit.columns);
}

#[test]
fn writes_trigger_background_reinduction_without_blocking_readers() {
    let service = open_service(2);
    let before = service.submit(Request::Sql(EXAMPLE1.to_string()));
    let before = before.query().unwrap().clone();
    assert!(before.rules_fresh);
    assert_eq!(before.epoch, 0);

    let write = service.submit(Request::Quel(
        "append to SUBMARINE (Id = \"SSBT999\", Name = \"Epoch Probe\", Class = \"0101\")"
            .to_string(),
    ));
    let write = write.query().unwrap().clone();
    assert_eq!(write.epoch, 1, "the write installed a new epoch");
    assert_eq!(write.affected, Some(1));
    assert!(
        !write.rules_fresh,
        "rules are stale until background induction lands"
    );

    // Readers keep answering while (and after) induction runs; the
    // epoch advances again when the new rule set is swapped in.
    let during = service.submit(Request::Sql(STABLE.to_string()));
    assert!(during.query().is_some(), "reads never block on induction");
    assert!(
        service.wait_rules_fresh(Duration::from_secs(10)),
        "background induction must complete"
    );
    let stats = service.stats();
    assert!(stats.epoch >= 2, "induction bumps the epoch");
    assert!(stats.rules_fresh);
    assert!(stats.inductions >= 1);

    let after = service.submit(Request::Sql(EXAMPLE1.to_string()));
    let after = after.query().unwrap().clone();
    assert!(after.rules_fresh);
    assert!(
        after.intensional.subtypes().contains(&"SSBN"),
        "re-induced rules still derive the Example 1 characterization"
    );
    assert_eq!(
        after.rows.len(),
        before.rows.len() + 1,
        "the appended class-0101 submarine joins the answer"
    );
}

#[test]
fn read_only_quel_scratch_output_is_discarded() {
    let service = open_service(2);
    let reply = service.submit(Request::Quel(
        "range of s is SUBMARINE\nretrieve into T (s.Id)\nrange of t is T\nretrieve (t.Id)"
            .to_string(),
    ));
    let q = reply.query().unwrap().clone();
    assert_eq!(q.epoch, 0, "scratch writes do not make an epoch");
    assert_eq!(q.rows.len(), 24);

    let stats = service.stats();
    assert_eq!(stats.writes, 0);
    assert_eq!(stats.epoch, 0);
    let t = service.submit(Request::Sql("SELECT Id FROM T".to_string()));
    assert!(
        t.error().is_some(),
        "the scratch relation never entered the shared snapshot"
    );
}

#[test]
fn failing_write_script_installs_nothing() {
    let service = open_service(2);
    let reply = service.submit(Request::Quel(
        "append to SUBMARINE (Id = \"SSBT998\", Name = \"Ghost\", Class = \"0101\")\n\
         append to NO_SUCH_RELATION (X = 1)"
            .to_string(),
    ));
    assert!(reply.error().is_some(), "the script must fail as a whole");

    let stats = service.stats();
    assert_eq!(stats.epoch, 0, "failed write installs no epoch");
    assert_eq!(stats.writes, 0);
    let sub = service.submit(Request::Sql("SELECT Id FROM SUBMARINE".to_string()));
    assert_eq!(
        sub.query().unwrap().rows.len(),
        24,
        "the first statement's append was rolled back with the clone"
    );
}

#[test]
fn tcp_server_speaks_the_line_protocol() {
    let service = Arc::new(open_service(2));
    let server = Server::bind(service, "127.0.0.1:0").unwrap();
    let addr = server.local_addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    let line = client.roundtrip(&format!("SQL {STABLE}")).unwrap();
    let v = json::parse(&line).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("kind").unwrap().as_str(), Some("query"));
    assert_eq!(v.get("rows").unwrap().as_array().unwrap().len(), 2);
    assert_eq!(v.get("soundness").unwrap().as_str(), Some("mixed"));

    // One-line QUEL script with the \n escape.
    let line = client
        .roundtrip("QUEL range of c is CLASS\\nretrieve (c.Class) where c.Type = \"SSBN\"")
        .unwrap();
    let v = json::parse(&line).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("rows").unwrap().as_array().unwrap().len(), 4);

    // EXPLAIN returns provenance (rule ids, supports, directions) for
    // the same conditions, served from the answer cache.
    let line = client.roundtrip(&format!("EXPLAIN {STABLE}")).unwrap();
    let v = json::parse(&line).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    assert_eq!(v.get("kind").unwrap().as_str(), Some("explain"));
    assert_eq!(v.get("cached").unwrap().as_bool(), Some(true));
    let prov = v.get("provenance").unwrap().as_array().unwrap();
    assert!(!prov.is_empty(), "Example 1 conditions fire rules");
    for u in prov {
        assert!(u.get("rule_id").unwrap().as_u64().is_some());
        assert!(u.get("support").unwrap().as_u64().is_some());
        let dir = u.get("direction").unwrap().as_str().unwrap();
        assert!(dir == "forward" || dir == "backward", "direction {dir:?}");
        assert!(!u.get("conclusion").unwrap().as_str().unwrap().is_empty());
    }

    let line = client.roundtrip("STATS").unwrap();
    let v = json::parse(&line).unwrap();
    assert_eq!(v.get("kind").unwrap().as_str(), Some("stats"));
    assert!(v.get("queries").unwrap().as_u64().unwrap() >= 2);
    assert_eq!(v.get("cache_capacity").unwrap().as_u64(), Some(64));
    // The metrics snapshot rides along: per-stage histograms have
    // accumulated the requests this test already made.
    let metrics = v.get("metrics").expect("stats carries metrics");
    let hist = metrics.get("histograms").unwrap();
    for stage in [
        "parse",
        "inference",
        "induction",
        "scan",
        "request",
        "queue_wait",
    ] {
        assert!(hist.get(stage).is_some(), "missing histogram for {stage}");
    }
    assert!(
        hist.get("request")
            .unwrap()
            .get("count")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 3,
        "request stage observed this connection's traffic"
    );
    assert!(
        metrics
            .get("counters")
            .unwrap()
            .get("serve.cache_hits")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );

    let line = client.roundtrip("FROB x").unwrap();
    let v = json::parse(&line).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));

    // A second concurrent connection works while the first is open.
    let mut second = Client::connect(&addr).unwrap();
    let line = second.roundtrip(&format!("SQL {EXAMPLE1}")).unwrap();
    let v = json::parse(&line).unwrap();
    assert_eq!(v.get("cached").unwrap().as_bool(), Some(false));
    let intensional = v.get("intensional").unwrap().as_array().unwrap();
    assert!(!intensional.is_empty());
    second.quit();

    client.quit();
    server.shutdown();
}
