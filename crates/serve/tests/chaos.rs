//! Chaos tests: the ship-database workload (the paper's Examples 1–3
//! territory) under randomized failpoint schedules.
//!
//! The contract under faults, in order of importance:
//!
//! 1. **Never a wrong answer.** A query either errors/sheds explicitly
//!    or returns correct extensional rows; a weakened intensional side
//!    is always flagged `degraded`.
//! 2. **Never a deadlock.** Every request gets *some* reply and the
//!    test completes.
//! 3. **Recovery.** Once faults stop, `rules_fresh` returns within the
//!    retry backoff cap and answers stop degrading.
//!
//! Failpoints are process-global, so every test serializes on one gate
//! and this file is its own test binary. The schedule is deterministic
//! for a given `INTENSIO_CHAOS_SEED` (default 42).

mod support;

use intensio_serve::{Reply, Request, Service, ServiceConfig};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// One test at a time owns the global failpoint registry.
fn fault_gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = GATE
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    intensio_fault::clear();
    guard
}

fn chaos_seed() -> u64 {
    support::chaos_seed(42)
}

fn open_service(tweak: impl FnOnce(&mut ServiceConfig)) -> Service {
    let db = intensio_shipdb::ship_database().unwrap();
    let model = intensio_shipdb::ship_model().unwrap();
    let mut cfg = ServiceConfig {
        workers: 4,
        cache_capacity: 64,
        // Fast retries so recovery assertions run in test time.
        induction_backoff: Duration::from_millis(10),
        induction_backoff_cap: Duration::from_millis(200),
        ..ServiceConfig::default()
    };
    tweak(&mut cfg);
    Service::with_config(db, model, cfg).unwrap()
}

/// A query whose relations the chaos writes never touch: its rows are
/// an oracle that must hold in every non-error reply, faults or not.
const STABLE: &str = "SELECT Class FROM CLASS WHERE Displacement > 8000";

const JOIN: &str = "SELECT SUBMARINE.ID, CLASS.TYPE FROM SUBMARINE, CLASS \
                    WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000";

fn assert_stable_rows(rows: &[Vec<String>]) {
    let mut classes: Vec<&str> = rows.iter().map(|r| r[0].as_str()).collect();
    classes.sort_unstable();
    assert_eq!(classes, ["0101", "1301"], "wrong answer under faults");
}

#[test]
fn randomized_faults_never_produce_wrong_answers_and_recovery_follows() {
    let _gate = fault_gate();
    intensio_fault::set_seed(chaos_seed());
    let service = Arc::new(open_service(|_| {}));

    // The randomized schedule: every layer can fail, none too often to
    // finish the workload.
    intensio_fault::configure_str(
        "storage.scan=1%error;\
         induction.run=20%error;\
         inference.engine=5%error;\
         serve.cache=5%error;\
         serve.install=2%error;\
         serve.worker=0.3%error",
    )
    .unwrap();

    const THREADS: usize = 8;
    const ITERS: usize = 40;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let service = service.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..ITERS {
                let request = if t < 2 && i % 10 == 9 {
                    Request::Quel(format!(
                        "append to SUBMARINE (Id = \"CH{t}{i:03}\", \
                         Name = \"Chaos Probe\", Class = \"0101\")"
                    ))
                } else if i % 13 == 7 {
                    Request::Stats
                } else if i % 5 == 3 {
                    Request::Sql(JOIN.to_string())
                } else {
                    Request::Sql(STABLE.to_string())
                };
                let is_stable = matches!(&request, Request::Sql(s) if s == STABLE);
                match service.submit(request) {
                    Reply::Query(q) => {
                        if is_stable {
                            // Degraded or not, the rows must be right.
                            assert_stable_rows(&q.rows);
                        }
                    }
                    // Explicit failure modes are the contract working.
                    Reply::Error { .. } | Reply::Busy => {}
                    Reply::Stats(_) => {}
                    Reply::Explain(_)
                    | Reply::Fault { .. }
                    | Reply::Check(_)
                    | Reply::Profile(_)
                    | Reply::Telemetry(_) => unreachable!(),
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("chaos thread never panics");
    }

    // Faults stop; freshness must come back within the backoff cap.
    intensio_fault::clear();
    let reply = service.submit(Request::Quel(
        "append to SUBMARINE (Id = \"CHFIN01\", Name = \"Fin\", Class = \"1301\")".to_string(),
    ));
    assert!(
        reply.query().is_some(),
        "healthy write after faults clear, got {reply:?}"
    );
    assert!(
        service.wait_rules_fresh(Duration::from_secs(10)),
        "rules_fresh did not recover after faults stopped"
    );
    match service.submit(Request::Sql(STABLE.to_string())) {
        Reply::Query(q) => {
            assert_stable_rows(&q.rows);
            assert!(!q.degraded, "no reason to degrade once faults stop");
            assert!(q.rules_fresh);
        }
        other => panic!("healthy query failed: {other:?}"),
    }
}

#[test]
fn dead_workers_are_restarted_by_the_supervisor() {
    let _gate = fault_gate();
    let service = Arc::new(open_service(|_| {}));

    // The next two requests kill their worker outright.
    intensio_fault::configure("serve.worker", "error*2").unwrap();
    for _ in 0..2 {
        let reply = service.submit(Request::Sql(STABLE.to_string()));
        assert!(
            reply.error().is_some(),
            "a dropped request reports an error, got {reply:?}"
        );
    }

    // The supervisor notices and respawns.
    let deadline = Instant::now() + Duration::from_secs(5);
    while service.stats().worker_restarts < 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        service.stats().worker_restarts >= 2,
        "supervisor never restarted the dead workers"
    );
    // CI greps `serve.worker_restarts` out of this snapshot line.
    println!(
        "chaos metrics snapshot: {}",
        service.stats().metrics.to_json()
    );

    // Full strength again: the pool still answers correctly.
    match service.submit(Request::Sql(STABLE.to_string())) {
        Reply::Query(q) => assert_stable_rows(&q.rows),
        other => panic!("post-restart query failed: {other:?}"),
    }
}

#[test]
fn failed_induction_retries_with_backoff_until_fresh() {
    let _gate = fault_gate();
    let service = Arc::new(open_service(|_| {}));

    // The next 4 induction runs fail; the 5th (a backoff retry) succeeds.
    intensio_fault::configure("induction.run", "error*4").unwrap();
    let reply = service.submit(Request::Quel(
        "append to SUBMARINE (Id = \"RETRY01\", Name = \"Retry\", Class = \"0101\")".to_string(),
    ));
    assert!(reply.query().is_some(), "the write itself succeeds");

    assert!(
        service.wait_rules_fresh(Duration::from_secs(10)),
        "induction never self-healed"
    );
    let stats = service.stats();
    assert!(
        stats.induction_retries >= 4,
        "expected 4 retries, saw {}",
        stats.induction_retries
    );
    assert!(stats.rules_fresh);
}

#[test]
fn expired_deadline_degrades_but_rows_stay_correct() {
    let _gate = fault_gate();
    // A zero budget: every request is overdue on arrival.
    let service = open_service(|cfg| cfg.deadline = Some(Duration::ZERO));

    match service.submit(Request::Sql(STABLE.to_string())) {
        Reply::Query(q) => {
            assert!(q.degraded, "over-budget answer must be flagged");
            assert!(!q.cached, "nothing was cached yet");
            assert_stable_rows(&q.rows);
            assert!(
                q.intensional.is_empty(),
                "extensional-only degradation carries no characterization"
            );
        }
        other => panic!("expected degraded query reply, got {other:?}"),
    }
    assert!(service.stats().degraded_answers >= 1);
}

#[test]
fn failed_inference_falls_back_to_stale_cached_answer() {
    let _gate = fault_gate();
    let service = open_service(|_| {});

    // Prime the cache at the current epoch.
    let primed = match service.submit(Request::Sql(STABLE.to_string())) {
        Reply::Query(q) => q,
        other => panic!("priming query failed: {other:?}"),
    };
    assert!(!primed.degraded);

    // Break fresh inference, then move the epoch with a write.
    intensio_fault::configure("inference.engine", "error").unwrap();
    let reply = service.submit(Request::Quel(
        "append to SUBMARINE (Id = \"STALE01\", Name = \"Stale\", Class = \"0101\")".to_string(),
    ));
    assert!(reply.query().is_some());

    // The stale-epoch cached answer serves, flagged degraded; the rows
    // are computed fresh and stay correct.
    match service.submit(Request::Sql(STABLE.to_string())) {
        Reply::Query(q) => {
            assert!(q.degraded, "stale fallback must be flagged");
            assert!(q.cached, "the fallback came from the cache");
            assert_stable_rows(&q.rows);
            assert_eq!(
                q.intensional.render(),
                primed.intensional.render(),
                "stale answer is the primed characterization"
            );
        }
        other => panic!("expected degraded stale reply, got {other:?}"),
    }
    assert!(service.stats().degraded_answers >= 1);
}

#[test]
fn rejected_rule_sets_show_up_in_the_metrics_snapshot() {
    let _gate = fault_gate();
    // The conflict fixture's induced rules clash (IC020); the install
    // gate rejects them at open without taking the service down.
    let db = intensio_shipdb::conflict_database().unwrap();
    let model = intensio_shipdb::conflict_model().unwrap();
    let service = Service::with_config(db, model, ServiceConfig::default()).unwrap();

    let stats = service.stats();
    assert_eq!(stats.rulesets_rejected, 1);
    assert!(!stats.rules_fresh);
    // CI greps `serve.rulesets_rejected` out of this snapshot line.
    println!("chaos metrics snapshot: {}", stats.metrics.to_json());

    match service.submit(Request::Sql("SELECT Gid FROM G".to_string())) {
        Reply::Query(q) => assert_eq!(q.rows.len(), 2),
        other => panic!("extensional query failed: {other:?}"),
    }
}

#[test]
fn queue_overflow_sheds_with_busy() {
    let _gate = fault_gate();
    let service = Arc::new(open_service(|cfg| {
        cfg.workers = 2;
        cfg.queue_capacity = 2;
    }));

    // Slow every inference so the tiny queue backs up.
    intensio_fault::configure("inference.infer", "delay:50").unwrap();

    const THREADS: usize = 16;
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut saw_busy = false;
    while !saw_busy && Instant::now() < deadline {
        let mut handles = Vec::new();
        for t in 0..THREADS {
            let service = service.clone();
            handles.push(std::thread::spawn(move || {
                let mut busy = 0u64;
                for i in 0..4 {
                    // Unique conditions defeat the cache: every request
                    // pays the injected delay.
                    let sql = format!(
                        "SELECT Class FROM CLASS WHERE Displacement > {}",
                        t * 64 + i
                    );
                    match service.submit(Request::Sql(sql)) {
                        Reply::Busy => busy += 1,
                        Reply::Query(_) | Reply::Error { .. } => {}
                        other => panic!("unexpected reply: {other:?}"),
                    }
                }
                busy
            }));
        }
        let busy: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        saw_busy = busy > 0;
    }
    assert!(saw_busy, "an overloaded bounded queue never shed");
    assert!(service.stats().requests_shed > 0);
    // CI greps `serve.requests_shed` out of this snapshot line.
    println!(
        "chaos metrics snapshot: {}",
        service.stats().metrics.to_json()
    );

    // Shedding is not sticking: once the burst passes, requests flow.
    intensio_fault::clear();
    match service.submit(Request::Sql(STABLE.to_string())) {
        Reply::Query(q) => assert_stable_rows(&q.rows),
        other => panic!("post-shed query failed: {other:?}"),
    }
}

#[test]
fn flight_recorder_dumps_on_request_panic_and_shutdown() {
    let _gate = fault_gate();
    // A durable service arms the flight recorder at its data dir.
    let dir = std::env::temp_dir().join(format!("intensio-flightrec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let service = open_service(|cfg| {
        cfg.data_dir = Some(dir.clone());
        cfg.wal.fsync = intensio_wal::FsyncPolicy::Off;
    });

    // A panic mid-install: the worker's catch_unwind turns it into an
    // error reply AND dumps the span ring for the post-mortem.
    intensio_fault::configure_str("serve.install=panic*1").unwrap();
    let reply = service.submit(Request::Quel(
        "append to SUBMARINE (Id = \"FR00001\", Name = \"Doomed\", Class = \"0101\")".to_string(),
    ));
    assert!(
        reply.error().is_some(),
        "panicked request must error, got {reply:?}"
    );
    intensio_fault::clear();

    let dumps = |reason: &str| -> Vec<std::path::PathBuf> {
        std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(&format!("flightrec-{reason}-")))
            })
            .collect()
    };
    let panic_dumps = dumps("request_panic");
    assert_eq!(panic_dumps.len(), 1, "one dump per panic onset");
    let body = std::fs::read_to_string(&panic_dumps[0]).unwrap();
    let v = intensio_serve::json::parse(&body).expect("dump is valid JSON");
    assert_eq!(
        v.get("reason").and_then(intensio_serve::json::Json::as_str),
        Some("request_panic")
    );
    assert!(
        !v.get("spans")
            .and_then(intensio_serve::json::Json::as_array)
            .expect("dump carries the span ring")
            .is_empty(),
        "span ring in the dump is not empty"
    );
    assert!(
        v.get("metrics").is_some(),
        "dump carries a metrics snapshot"
    );

    // Shutdown (the SIGTERM stand-in under forbid(unsafe_code): the
    // service's Drop) leaves a second dump behind.
    drop(service);
    assert_eq!(dumps("shutdown").len(), 1, "shutdown leaves a dump");
    // CI greps this line, then checks the files exist on disk.
    println!(
        "flight-recorder dumps: {} at {}",
        dumps("request_panic").len() + dumps("shutdown").len(),
        dir.display()
    );
}

#[test]
fn promotion_dumps_a_flight_record() {
    let _gate = fault_gate();
    let pdir = std::env::temp_dir().join(format!("intensio-fr-promo-p-{}", std::process::id()));
    let cdir = std::env::temp_dir().join(format!("intensio-fr-promo-c-{}", std::process::id()));
    for dir in [&pdir, &cdir] {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir).unwrap();
    }
    let primary = Arc::new(open_service(|cfg| {
        cfg.data_dir = Some(pdir.clone());
        cfg.wal.fsync = intensio_wal::FsyncPolicy::Off;
    }));
    let pserver = intensio_serve::Server::bind(primary.clone(), "127.0.0.1:0").unwrap();
    let paddr = pserver.local_addr().to_string();
    let candidate = open_service(|cfg| {
        cfg.data_dir = Some(cdir.clone());
        cfg.wal.fsync = intensio_wal::FsyncPolicy::Off;
        cfg.replicate_from = Some(paddr);
        cfg.candidate = true;
        cfg.failover_timeout = Duration::from_millis(200);
        cfg.failover_seed = 7;
        cfg.repl_heartbeat = Duration::from_millis(40);
    });

    // Silence the heartbeat stream: the candidate's deadline elapses
    // and the promotion path — which dumps the span ring — fires.
    pserver.shutdown();
    drop(primary);
    let deadline = Instant::now() + Duration::from_secs(20);
    while candidate.stats().role != "primary" {
        assert!(Instant::now() < deadline, "candidate never promoted");
        std::thread::sleep(Duration::from_millis(10));
    }

    let dump = std::fs::read_dir(&cdir)
        .unwrap()
        .flatten()
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("flightrec-promotion-"))
        })
        .expect("promotion left no flight-recorder dump");
    let body = std::fs::read_to_string(&dump).unwrap();
    let v = intensio_serve::json::parse(&body).expect("dump is valid JSON");
    assert_eq!(
        v.get("reason").and_then(intensio_serve::json::Json::as_str),
        Some("promotion")
    );
    // CI greps this line, then checks the file exists on disk.
    println!("promotion flight record: {}", dump.display());
    drop(candidate);
    let _ = std::fs::remove_dir_all(&pdir);
}
