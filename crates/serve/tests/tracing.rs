//! Distributed-tracing contract, against real `serve` processes: one
//! trace id spans a REDIRECTed read's follower admission and primary
//! execution, and a traced write's commit span reappears in the
//! follower's apply span via the `#repl` stream.

#![cfg(unix)]

use intensio_serve::json::{self, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("intensio-tracing-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A running `serve` child with tracing armed at sample 1.0.
struct ServeChild {
    child: Child,
    addr: String,
    trace_dir: PathBuf,
}

impl ServeChild {
    fn spawn(data_dir: &Path, trace_dir: &Path, extra: &[&str]) -> ServeChild {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve"));
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--data-dir")
            .arg(data_dir)
            .arg("--trace-dir")
            .arg(trace_dir)
            .arg("--trace-sample")
            .arg("1.0")
            .arg("--fsync")
            .arg("off")
            .arg("--workers")
            .arg("2")
            .arg("--quiet")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn serve binary");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve exited before listening")
                .expect("read serve stdout");
            if let Some(rest) = line.split("listening on ").nth(1) {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address after 'listening on'")
                    .to_string();
            }
        };
        std::thread::spawn(move || while let Some(Ok(_)) = lines.next() {});
        ServeChild {
            child,
            addr,
            trace_dir: trace_dir.to_path_buf(),
        }
    }

    fn connect(&self) -> Conn {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(&self.addr) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let reader = BufReader::new(stream.try_clone().unwrap());
                    return Conn { stream, reader };
                }
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("cannot connect to {}: {e}", self.addr),
            }
        }
    }

    /// Poll the child's trace file (the background flusher writes it
    /// every ~200ms) until `pred` matches some line.
    fn await_trace_line(&self, what: &str, pred: impl Fn(&str) -> bool) -> String {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            for entry in std::fs::read_dir(&self.trace_dir).unwrap().flatten() {
                if let Ok(content) = std::fs::read_to_string(entry.path()) {
                    if let Some(line) = content.lines().find(|l| pred(l)) {
                        return line.to_string();
                    }
                }
            }
            assert!(
                Instant::now() < deadline,
                "no trace line matching {what} in {}",
                self.trace_dir.display()
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

impl Drop for ServeChild {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn roundtrip(&mut self, line: &str) -> Json {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        self.stream.flush().unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("read reply");
        json::parse(reply.trim()).unwrap_or_else(|e| panic!("undecodable reply ({e}): {reply}"))
    }
}

const READ: &str = "SELECT Class FROM CLASS WHERE Displacement > 8000";

#[test]
fn one_trace_spans_follower_redirect_and_primary_execution() {
    let primary = ServeChild::spawn(&temp_dir("p-data"), &temp_dir("p-trace"), &[]);
    // Two followers (the 1p2f topology); the REDIRECT probe goes
    // through the first. `--deadline-ms` keeps the redirect prompt.
    let f1 = ServeChild::spawn(
        &temp_dir("f1-data"),
        &temp_dir("f1-trace"),
        &["--replicate-from", &primary.addr, "--deadline-ms", "300"],
    );
    let _f2 = ServeChild::spawn(
        &temp_dir("f2-data"),
        &temp_dir("f2-trace"),
        &["--replicate-from", &primary.addr, "--deadline-ms", "300"],
    );

    let mut pc = primary.connect();
    let mut fc = f1.connect();

    // A traced write on the primary: its commit span ids ride the
    // `#repl` stream to both followers.
    let write_trace = "11c0ffee00000001";
    let v = pc.roundtrip(&format!(
        "#trace {write_trace}/0000000000000000 QUEL append to SUBMARINE \
         (Id = \"TRC0001\", Name = \"Trace Probe\", Class = \"0101\")"
    ));
    assert_eq!(
        v.get("ok").and_then(Json::as_bool),
        Some(true),
        "append failed"
    );
    assert_eq!(v.get("trace").and_then(Json::as_str), Some(write_trace));
    let acked_epoch = v.get("epoch").and_then(Json::as_u64).expect("acked epoch");

    // A REDIRECTed read: ask the follower for an epoch nobody has.
    // The reply is the redirect, under the same trace id.
    let read_trace = "22c0ffee00000002";
    let v = fc.roundtrip(&format!(
        "#trace {read_trace}/0000000000000000 SQL@{} {READ}",
        acked_epoch + 1000
    ));
    assert_eq!(v.get("trace").and_then(Json::as_str), Some(read_trace));
    let err = v
        .get("error")
        .and_then(Json::as_str)
        .expect("redirect error");
    assert!(
        err.starts_with("REDIRECT "),
        "expected a redirect, got {err:?}"
    );
    let target = err.split_whitespace().nth(1).unwrap().trim_end_matches(':');
    assert_eq!(target, primary.addr, "redirect names the primary");

    // The client re-issues against the primary under the same id —
    // that is the stitch that makes one cross-node trace.
    let v = pc.roundtrip(&format!("#trace {read_trace}/0000000000000000 SQL {READ}"));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(v.get("trace").and_then(Json::as_str), Some(read_trace));

    // Both nodes' trace files carry spans of the read's trace: the
    // follower its admission/redirect leg, the primary the execution.
    let follower_leg = f1.await_trace_line("follower redirect span", |l| {
        l.contains(read_trace) && l.contains("serve.admission")
    });
    assert!(follower_leg.contains("redirect"), "got {follower_leg}");
    primary.await_trace_line("primary execution span", |l| {
        l.contains(read_trace) && l.contains("serve.request")
    });

    // The traced write reappears on the follower as a repl.apply span
    // under the write's trace id (shipped on the record line).
    f1.await_trace_line("follower apply span", |l| {
        l.contains(write_trace) && l.contains("repl.apply")
    });
    // And the primary logged the commit (wal.append) under it.
    primary.await_trace_line("primary commit span", |l| {
        l.contains(write_trace) && l.contains("wal.append")
    });
}
