//! Crash-recovery harness: SIGKILL a durable `serve` process mid-write
//! workload, restart it over the same data directory, and hold it to
//! the durability contract:
//!
//! 1. **No acked write is lost.** Every `append` whose reply we fully
//!    read before the kill is present after restart.
//! 2. **The epoch never runs backwards.** The recovered epoch is at
//!    least the largest epoch any acked reply reported.
//! 3. **Recovery actually replays.** With checkpoints far apart, the
//!    post-checkpoint writes come back from the log
//!    (`replayed_records > 0` in the durability stats).
//!
//! The child is killed with SIGKILL — no destructors, no flush, no
//! clean shutdown — which is exactly the crash the WAL exists for.

#![cfg(unix)]

mod support;

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use support::{temp_dir, Conn, ServeChild};

/// (epoch, replayed_records, recovered_epoch) from STATS.
fn durability_stats(conn: &mut Conn) -> (u64, u64, u64) {
    let reply = conn.roundtrip("STATS").expect("stats");
    // Printed raw so CI can grep recovery metrics out of the run log.
    println!("stats: {}", reply.trim_end());
    let v = intensio_serve::json::parse(&reply).expect("stats reply");
    use intensio_serve::json::Json;
    let epoch = v.get("epoch").and_then(Json::as_u64).expect("epoch");
    let d = v.get("durability").expect("durability object in stats");
    let replayed = d
        .get("replayed_records")
        .and_then(Json::as_u64)
        .expect("replayed_records");
    let recovered = d
        .get("recovered_epoch")
        .and_then(Json::as_u64)
        .expect("recovered_epoch");
    (epoch, replayed, recovered)
}

/// The acked state shared between the writer thread and the killer.
#[derive(Default)]
struct Acked {
    ids: Vec<String>,
    max_epoch: u64,
}

/// Hammer writes until the connection dies (the kill), recording every
/// acknowledged id and epoch. Returns when the server disappears.
fn write_until_killed(mut conn: Conn, round: usize, acked: Arc<Mutex<Acked>>) {
    for i in 0..10_000u32 {
        // char(7) Id: round digit + 4-digit counter, prefix "CR".
        let id = format!("CR{round}{i:04}");
        match conn.append(&id) {
            Ok(epoch) => {
                let mut a = acked.lock().unwrap();
                a.ids.push(id);
                a.max_epoch = a.max_epoch.max(epoch);
            }
            Err(_) => return, // killed mid-flight; everything acked is recorded
        }
    }
    panic!("writer was never killed");
}

#[test]
fn sigkill_mid_workload_loses_no_acked_write() {
    let dir = temp_dir("sigkill");
    // Checkpoints far apart: every post-boot write must come back from
    // the log itself, proving replay (not just checkpoint load) works.
    let flags = ["--fsync", "always", "--checkpoint-every", "10000"];

    let mut surviving_ids: BTreeSet<String> = BTreeSet::new();
    let mut last_acked_epoch = 0u64;

    const ROUNDS: usize = 3;
    for round in 0..ROUNDS {
        let server = ServeChild::spawn(&dir, &flags);

        // The state acked in earlier rounds must have survived this boot.
        let mut probe = server.connect();
        let visible = probe.submarine_ids();
        for id in &surviving_ids {
            assert!(
                visible.contains(id),
                "round {round}: acked write {id} lost across SIGKILL"
            );
        }
        let (epoch, replayed, recovered_epoch) = durability_stats(&mut probe);
        assert!(
            epoch >= last_acked_epoch,
            "round {round}: epoch {epoch} ran backwards past acked {last_acked_epoch}"
        );
        assert!(
            recovered_epoch >= last_acked_epoch,
            "round {round}: recovery stopped at {recovered_epoch} < acked {last_acked_epoch}"
        );
        if round > 0 {
            assert!(
                replayed > 0,
                "round {round}: writes were acked last round but nothing was replayed"
            );
        }

        // Hammer writes from another thread; kill mid-workload.
        let acked = Arc::new(Mutex::new(Acked::default()));
        let writer = {
            let conn = server.connect();
            let acked = acked.clone();
            std::thread::spawn(move || write_until_killed(conn, round, acked))
        };
        // Let some writes through, then SIGKILL while more are in flight.
        let target = 10 + round * 7;
        let deadline = Instant::now() + Duration::from_secs(60);
        while acked.lock().unwrap().ids.len() < target {
            assert!(Instant::now() < deadline, "workload stalled before kill");
            std::thread::sleep(Duration::from_millis(5));
        }
        server.kill();
        writer.join().expect("writer thread");

        let a = acked.lock().unwrap();
        assert!(a.ids.len() >= target, "expected ≥{target} acked writes");
        surviving_ids.extend(a.ids.iter().cloned());
        last_acked_epoch = last_acked_epoch.max(a.max_epoch);
    }

    // Final boot: everything ever acked, across three crashes, is there.
    let server = ServeChild::spawn(&dir, &flags);
    let mut probe = server.connect();
    let visible = probe.submarine_ids();
    for id in &surviving_ids {
        assert!(visible.contains(id), "final boot: acked write {id} lost");
    }
    let (epoch, replayed, _) = durability_stats(&mut probe);
    assert!(epoch >= last_acked_epoch, "final epoch ran backwards");
    assert!(
        replayed > 0,
        "final boot replayed nothing despite acked writes"
    );
    server.shutdown();

    // The offline auditor must agree with recovery: three SIGKILLs may
    // leave torn tails (warnings), but never a broken chain (errors).
    let report = intensio_check::check_data_dir(&dir);
    assert!(
        !report.has_errors(),
        "fsck found errors in a crash-recovered dir:\n{}",
        report.render_text()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_with_checkpoints_still_recovers_everything() {
    let dir = temp_dir("ckpt");
    // Aggressive checkpointing: recovery mixes checkpoint state with a
    // short log suffix, and pruning must never eat unreplayed records.
    let flags = ["--fsync", "always", "--checkpoint-every", "3"];

    let server = ServeChild::spawn(&dir, &flags);
    let acked = Arc::new(Mutex::new(Acked::default()));
    let writer = {
        let conn = server.connect();
        let acked = acked.clone();
        std::thread::spawn(move || write_until_killed(conn, 9, acked))
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    while acked.lock().unwrap().ids.len() < 20 {
        assert!(Instant::now() < deadline, "workload stalled before kill");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.kill();
    writer.join().expect("writer thread");
    let a = std::mem::take(&mut *acked.lock().unwrap());

    let server = ServeChild::spawn(&dir, &flags);
    let mut probe = server.connect();
    let visible = probe.submarine_ids();
    for id in &a.ids {
        assert!(visible.contains(id), "checkpointed run: acked {id} lost");
    }
    let (epoch, _, recovered_epoch) = durability_stats(&mut probe);
    assert!(
        epoch >= a.max_epoch,
        "epoch ran backwards after checkpointed crash"
    );
    assert!(recovered_epoch >= a.max_epoch);
    server.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
