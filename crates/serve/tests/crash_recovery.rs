//! Crash-recovery harness: SIGKILL a durable `serve` process mid-write
//! workload, restart it over the same data directory, and hold it to
//! the durability contract:
//!
//! 1. **No acked write is lost.** Every `append` whose reply we fully
//!    read before the kill is present after restart.
//! 2. **The epoch never runs backwards.** The recovered epoch is at
//!    least the largest epoch any acked reply reported.
//! 3. **Recovery actually replays.** With checkpoints far apart, the
//!    post-checkpoint writes come back from the log
//!    (`replayed_records > 0` in the durability stats).
//!
//! The child is killed with SIGKILL — no destructors, no flush, no
//! clean shutdown — which is exactly the crash the WAL exists for.

#![cfg(unix)]

use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn temp_dir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "intensio-crash-recovery-{}-{tag}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A running `serve` child plus the address it bound.
struct ServeChild {
    child: Child,
    addr: String,
}

impl ServeChild {
    /// Spawn the serve binary in durable mode on an ephemeral port and
    /// wait for its "listening on" banner.
    fn spawn(data_dir: &Path, extra: &[&str]) -> ServeChild {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve"));
        cmd.arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--data-dir")
            .arg(data_dir)
            .arg("--workers")
            .arg("2")
            .arg("--quiet")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn serve binary");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve exited before listening")
                .expect("read serve stdout");
            if let Some(rest) = line.split("listening on ").nth(1) {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address after 'listening on'")
                    .to_string();
            }
        };
        // Keep draining stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || while let Some(Ok(_)) = lines.next() {});
        ServeChild { child, addr }
    }

    fn connect(&self) -> Conn {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(&self.addr) {
                Ok(stream) => {
                    stream
                        .set_read_timeout(Some(Duration::from_secs(30)))
                        .unwrap();
                    let reader = BufReader::new(stream.try_clone().unwrap());
                    return Conn { stream, reader };
                }
                Err(e) => {
                    assert!(
                        Instant::now() < deadline,
                        "cannot connect {}: {e}",
                        self.addr
                    );
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// SIGKILL: the child gets no chance to flush or shut down.
    fn kill(mut self) {
        self.child.kill().expect("SIGKILL serve child");
        let _ = self.child.wait();
    }

    fn shutdown(self) {
        self.kill(); // The protocol has no daemon shutdown; tests always kill.
    }
}

/// One line-oriented protocol connection.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        self.stream.write_all(request.as_bytes())?;
        self.stream.write_all(b"\n")?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection",
            ));
        }
        Ok(line)
    }

    /// Append one SUBMARINE row; `Ok(epoch)` only when the server
    /// acknowledged the write with a well-formed reply.
    fn append(&mut self, id: &str) -> std::io::Result<u64> {
        let reply = self.roundtrip(&format!(
            "QUEL append to SUBMARINE (Id = \"{id}\", Name = \"Crash Probe\", Class = \"0101\")"
        ))?;
        let v = intensio_serve::json::parse(&reply)
            .unwrap_or_else(|e| panic!("undecodable reply ({e}): {reply}"));
        use intensio_serve::json::Json;
        assert_eq!(
            v.get("ok").and_then(Json::as_bool),
            Some(true),
            "append rejected: {reply}"
        );
        Ok(v.get("epoch").and_then(Json::as_u64).expect("epoch in ack"))
    }

    /// All SUBMARINE ids currently visible.
    fn submarine_ids(&mut self) -> BTreeSet<String> {
        let reply = self
            .roundtrip("SQL SELECT Id FROM SUBMARINE")
            .expect("id query");
        let v = intensio_serve::json::parse(&reply).expect("id query reply");
        use intensio_serve::json::Json;
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{reply}");
        v.get("rows")
            .and_then(Json::as_array)
            .expect("rows")
            .iter()
            .filter_map(|row| {
                row.as_array()
                    .and_then(|cells| cells.first())
                    .and_then(Json::as_str)
                    .map(|id| id.trim().to_string())
            })
            .collect()
    }

    /// (epoch, replayed_records, recovered_epoch) from STATS.
    fn stats(&mut self) -> (u64, u64, u64) {
        let reply = self.roundtrip("STATS").expect("stats");
        // Printed raw so CI can grep recovery metrics out of the run log.
        println!("stats: {}", reply.trim_end());
        let v = intensio_serve::json::parse(&reply).expect("stats reply");
        use intensio_serve::json::Json;
        let epoch = v.get("epoch").and_then(Json::as_u64).expect("epoch");
        let d = v.get("durability").expect("durability object in stats");
        let replayed = d
            .get("replayed_records")
            .and_then(Json::as_u64)
            .expect("replayed_records");
        let recovered = d
            .get("recovered_epoch")
            .and_then(Json::as_u64)
            .expect("recovered_epoch");
        (epoch, replayed, recovered)
    }
}

/// The acked state shared between the writer thread and the killer.
#[derive(Default)]
struct Acked {
    ids: Vec<String>,
    max_epoch: u64,
}

/// Hammer writes until the connection dies (the kill), recording every
/// acknowledged id and epoch. Returns when the server disappears.
fn write_until_killed(mut conn: Conn, round: usize, acked: Arc<Mutex<Acked>>) {
    for i in 0..10_000u32 {
        // char(7) Id: round digit + 4-digit counter, prefix "CR".
        let id = format!("CR{round}{i:04}");
        match conn.append(&id) {
            Ok(epoch) => {
                let mut a = acked.lock().unwrap();
                a.ids.push(id);
                a.max_epoch = a.max_epoch.max(epoch);
            }
            Err(_) => return, // killed mid-flight; everything acked is recorded
        }
    }
    panic!("writer was never killed");
}

#[test]
fn sigkill_mid_workload_loses_no_acked_write() {
    let dir = temp_dir("sigkill");
    // Checkpoints far apart: every post-boot write must come back from
    // the log itself, proving replay (not just checkpoint load) works.
    let flags = ["--fsync", "always", "--checkpoint-every", "10000"];

    let mut surviving_ids: BTreeSet<String> = BTreeSet::new();
    let mut last_acked_epoch = 0u64;

    const ROUNDS: usize = 3;
    for round in 0..ROUNDS {
        let server = ServeChild::spawn(&dir, &flags);

        // The state acked in earlier rounds must have survived this boot.
        let mut probe = server.connect();
        let visible = probe.submarine_ids();
        for id in &surviving_ids {
            assert!(
                visible.contains(id),
                "round {round}: acked write {id} lost across SIGKILL"
            );
        }
        let (epoch, replayed, recovered_epoch) = probe.stats();
        assert!(
            epoch >= last_acked_epoch,
            "round {round}: epoch {epoch} ran backwards past acked {last_acked_epoch}"
        );
        assert!(
            recovered_epoch >= last_acked_epoch,
            "round {round}: recovery stopped at {recovered_epoch} < acked {last_acked_epoch}"
        );
        if round > 0 {
            assert!(
                replayed > 0,
                "round {round}: writes were acked last round but nothing was replayed"
            );
        }

        // Hammer writes from another thread; kill mid-workload.
        let acked = Arc::new(Mutex::new(Acked::default()));
        let writer = {
            let conn = server.connect();
            let acked = acked.clone();
            std::thread::spawn(move || write_until_killed(conn, round, acked))
        };
        // Let some writes through, then SIGKILL while more are in flight.
        let target = 10 + round * 7;
        let deadline = Instant::now() + Duration::from_secs(60);
        while acked.lock().unwrap().ids.len() < target {
            assert!(Instant::now() < deadline, "workload stalled before kill");
            std::thread::sleep(Duration::from_millis(5));
        }
        server.kill();
        writer.join().expect("writer thread");

        let a = acked.lock().unwrap();
        assert!(a.ids.len() >= target, "expected ≥{target} acked writes");
        surviving_ids.extend(a.ids.iter().cloned());
        last_acked_epoch = last_acked_epoch.max(a.max_epoch);
    }

    // Final boot: everything ever acked, across three crashes, is there.
    let server = ServeChild::spawn(&dir, &flags);
    let mut probe = server.connect();
    let visible = probe.submarine_ids();
    for id in &surviving_ids {
        assert!(visible.contains(id), "final boot: acked write {id} lost");
    }
    let (epoch, replayed, _) = probe.stats();
    assert!(epoch >= last_acked_epoch, "final epoch ran backwards");
    assert!(
        replayed > 0,
        "final boot replayed nothing despite acked writes"
    );
    server.shutdown();

    // The offline auditor must agree with recovery: three SIGKILLs may
    // leave torn tails (warnings), but never a broken chain (errors).
    let report = intensio_check::check_data_dir(&dir);
    assert!(
        !report.has_errors(),
        "fsck found errors in a crash-recovered dir:\n{}",
        report.render_text()
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigkill_with_checkpoints_still_recovers_everything() {
    let dir = temp_dir("ckpt");
    // Aggressive checkpointing: recovery mixes checkpoint state with a
    // short log suffix, and pruning must never eat unreplayed records.
    let flags = ["--fsync", "always", "--checkpoint-every", "3"];

    let server = ServeChild::spawn(&dir, &flags);
    let acked = Arc::new(Mutex::new(Acked::default()));
    let writer = {
        let conn = server.connect();
        let acked = acked.clone();
        std::thread::spawn(move || write_until_killed(conn, 9, acked))
    };
    let deadline = Instant::now() + Duration::from_secs(60);
    while acked.lock().unwrap().ids.len() < 20 {
        assert!(Instant::now() < deadline, "workload stalled before kill");
        std::thread::sleep(Duration::from_millis(5));
    }
    server.kill();
    writer.join().expect("writer thread");
    let a = std::mem::take(&mut *acked.lock().unwrap());

    let server = ServeChild::spawn(&dir, &flags);
    let mut probe = server.connect();
    let visible = probe.submarine_ids();
    for id in &a.ids {
        assert!(visible.contains(id), "checkpointed run: acked {id} lost");
    }
    let (epoch, _, recovered_epoch) = probe.stats();
    assert!(
        epoch >= a.max_epoch,
        "epoch ran backwards after checkpointed crash"
    );
    assert!(recovered_epoch >= a.max_epoch);
    server.shutdown();

    let _ = std::fs::remove_dir_all(&dir);
}
