//! §3.1's inter-object constraint: the VISIT relationship between SHIP
//! and PORT always satisfies "draft of the ship < depth of the port" —
//! discovered from data, not asserted.

use intensio_induction::{Ils, InductionConfig};
use intensio_shipdb::visit::{visit_database, visit_model};
use intensio_storage::expr::CmpOp;

#[test]
fn discovers_draft_less_than_depth() {
    let db = visit_database().unwrap();
    let model = visit_model().unwrap();
    let ils = Ils::new(&model, InductionConfig::with_min_support(3));
    let constraints = ils.discover_relationship_constraints(&db).unwrap();
    let c = constraints
        .iter()
        .find(|c| c.left.matches("SHIP", "Draft") && c.right.matches("PORT", "Depth"))
        .expect("the paper's VISIT constraint must be discovered");
    assert_eq!(c.op, CmpOp::Lt, "{c}");
    assert_eq!(c.support, 12, "every visit supports it");
    assert_eq!(c.relationship, "VISIT");
    assert_eq!(
        c.to_string(),
        "[VISIT] SHIP.Draft < PORT.Depth (support 12)"
    );
}

#[test]
fn no_constraint_when_orderings_conflict() {
    // Ship names vs port names compare both ways; no constraint emerges.
    let db = visit_database().unwrap();
    let model = visit_model().unwrap();
    let ils = Ils::new(&model, InductionConfig::with_min_support(3));
    let constraints = ils.discover_relationship_constraints(&db).unwrap();
    assert!(
        !constraints
            .iter()
            .any(|c| c.left.matches("SHIP", "Name") && c.right.matches("PORT", "PortName")),
        "conflicting orderings must yield no constraint: {constraints:?}"
    );
}

#[test]
fn constraint_vanishes_when_violated() {
    // Add a visit where the draft exceeds the depth: the universal
    // constraint must no longer be discovered.
    let mut db = visit_database().unwrap();
    // No existing port is shallower than any visiting ship's draft, so
    // add a shallow port and send the deepest-draft boat there.
    {
        use intensio_storage::tuple;
        let port = db.get_mut("PORT").unwrap();
        port.insert(tuple!["P99", "Shallow Creek", 30]).unwrap();
    }
    {
        use intensio_storage::tuple;
        let visit = db.get_mut("VISIT").unwrap();
        visit.insert(tuple!["V99999", "SH004", "P99"]).unwrap(); // draft 38 > depth 30
    }
    let model = visit_model().unwrap();
    let ils = Ils::new(&model, InductionConfig::with_min_support(3));
    let constraints = ils.discover_relationship_constraints(&db).unwrap();
    assert!(
        !constraints
            .iter()
            .any(|c| c.left.matches("SHIP", "Draft") && c.right.matches("PORT", "Depth")),
        "violated constraint must not be discovered"
    );
}

#[test]
fn min_support_filters_small_relationships() {
    let db = visit_database().unwrap();
    let model = visit_model().unwrap();
    let ils = Ils::new(&model, InductionConfig::with_min_support(100));
    let constraints = ils.discover_relationship_constraints(&db).unwrap();
    assert!(constraints.is_empty(), "support 12 < 100");
}
