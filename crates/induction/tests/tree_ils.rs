//! The tree-based ILS extension: multi-clause rules from decision-tree
//! paths, merged with the pairwise rules, closed to the §5.2.2 clause
//! format, and usable by the inference engine.

use intensio_induction::{Ils, InductionConfig};
use intensio_storage::prelude::*;
use intensio_storage::tuple;

/// A relation where no single attribute separates the classes, but two
/// together do: grade is SENIOR iff Salary > 90000 *and* Dept = "ENG";
/// high-paid SALES staff are MID.
fn personnel() -> (Database, intensio_ker::model::KerModel) {
    let schema = Schema::new(vec![
        Attribute::key("EmpId", Domain::char_n(5)),
        Attribute::new("Dept", Domain::char_n(8)),
        Attribute::new("Salary", Domain::basic(ValueType::Int)),
        Attribute::new("Grade", Domain::char_n(8)),
    ])
    .unwrap();
    let mut emp = Relation::new("EMPLOYEE", schema);
    let rows: &[(&str, &str, i64, &str)] = &[
        ("E0001", "ENG", 120_000, "SENIOR"),
        ("E0002", "ENG", 110_000, "SENIOR"),
        ("E0003", "ENG", 95_000, "SENIOR"),
        ("E0004", "ENG", 80_000, "MID"),
        ("E0005", "ENG", 60_000, "MID"),
        ("E0006", "SALES", 120_000, "MID"),
        ("E0007", "SALES", 110_000, "MID"),
        ("E0008", "SALES", 95_000, "MID"),
        ("E0009", "SALES", 50_000, "JUNIOR"),
        ("E0010", "ENG", 40_000, "JUNIOR"),
        ("E0011", "SALES", 45_000, "JUNIOR"),
    ];
    for (id, dept, salary, grade) in rows {
        emp.insert(tuple![*id, *dept, *salary, *grade]).unwrap();
    }
    let mut db = Database::new();
    db.create(emp).unwrap();
    let model = intensio_ker::model::KerModel::parse(
        r#"
        object type EMPLOYEE
          has key: EmpId domain: CHAR[5]
          has: Dept domain: CHAR[8]
          has: Salary domain: INTEGER
          has: Grade domain: CHAR[8]
        EMPLOYEE contains JUNIOR, MID, SENIOR
        JUNIOR isa EMPLOYEE with Grade = "JUNIOR"
        MID    isa EMPLOYEE with Grade = "MID"
        SENIOR isa EMPLOYEE with Grade = "SENIOR"
        "#,
    )
    .unwrap();
    (db, model)
}

#[test]
fn trees_add_multi_clause_rules() {
    let (db, model) = personnel();
    let ils = Ils::new(&model, InductionConfig::with_min_support(2));
    let pairwise_only = ils.induce(&db).unwrap();
    let with_trees = ils.induce_with_trees(&db).unwrap();
    assert!(with_trees.rules.len() > pairwise_only.rules.len());
    let multi: Vec<_> = with_trees
        .rules
        .iter()
        .filter(|r| r.lhs.len() >= 2)
        .collect();
    assert!(!multi.is_empty(), "tree paths must yield conjunctive rules");
    // A SENIOR rule must require both salary and department evidence —
    // pairwise induction cannot express it because SALES staff share the
    // same salary band.
    let senior = multi
        .iter()
        .find(|r| r.rhs_subtype.as_deref() == Some("SENIOR"))
        .expect("a conjunctive SENIOR rule");
    let attrs: Vec<&str> = senior
        .lhs
        .iter()
        .map(|c| c.attr.attribute.as_str())
        .collect();
    assert!(
        attrs.contains(&"Dept") && attrs.contains(&"Salary"),
        "{attrs:?}"
    );
}

#[test]
fn tree_rules_are_closed_and_storable() {
    let (db, model) = personnel();
    let ils = Ils::new(&model, InductionConfig::with_min_support(2));
    let out = ils.induce_with_trees(&db).unwrap();
    // Every clause must be a closed range, so the whole set encodes.
    let encoded = intensio_rules::encode::encode(&out.rules).unwrap();
    let decoded = intensio_rules::encode::decode(&encoded).unwrap();
    assert_eq!(decoded.len(), out.rules.len());
}

#[test]
fn tree_rules_are_exact_on_training_data() {
    let (db, model) = personnel();
    let ils = Ils::new(&model, InductionConfig::with_min_support(2));
    let out = ils.induce_with_trees(&db).unwrap();
    let emp = db.get("EMPLOYEE").unwrap();
    for rule in out.rules.iter().filter(|r| r.lhs.len() >= 2) {
        for t in emp.iter() {
            let premise_holds = rule.lhs.iter().all(|c| {
                let idx = emp.schema().index_of(&c.attr.attribute).unwrap();
                c.range.contains(t.get(idx))
            });
            if premise_holds {
                let yi = emp.schema().index_of(&rule.rhs.attr.attribute).unwrap();
                let expected = rule.rhs.range.as_point().unwrap();
                assert!(t.get(yi).sem_eq(expected), "tuple {t} violates {rule}");
            }
        }
    }
}
