//! The KER model lists `date` among its basic domains (Appendix A);
//! induction and inference must handle date-valued premise attributes
//! like any other ordered domain. Ships commissioned in contiguous
//! periods per class give `if d1 <= CommissionDate <= d2 then Class = c`
//! rules.

use intensio_induction::{induce_pair, InductionConfig};
use intensio_storage::date::Date;
use intensio_storage::prelude::*;
use intensio_storage::tuple::Tuple;

fn commissioned_fleet() -> Relation {
    let schema = Schema::new(vec![
        Attribute::key("Id", Domain::char_n(7)),
        Attribute::new("CommissionDate", Domain::basic(ValueType::Date)),
        Attribute::new("Class", Domain::char_n(4)),
    ])
    .unwrap();
    let mut rel = Relation::new("SUBMARINE", schema);
    // Class 0101 boats commissioned 1981; class 0201 in 1976; one
    // straggler class 0301 in 1981 interleaves nothing (dates disjoint).
    let rows: &[(&str, (i32, u32, u32), &str)] = &[
        ("SSBN726", (1981, 11, 11), "0101"),
        ("SSBN727", (1981, 12, 1), "0101"),
        ("SSBN728", (1982, 1, 15), "0101"),
        ("SSN688", (1976, 11, 13), "0201"),
        ("SSN689", (1977, 2, 5), "0201"),
        ("SSN690", (1977, 3, 18), "0201"),
        ("SS580", (1990, 6, 1), "0301"),
    ];
    for (id, (y, m, d), class) in rows {
        rel.insert(Tuple::new(vec![
            Value::str(*id),
            Value::Date(Date::new(*y, *m, *d).unwrap()),
            Value::str(*class),
        ]))
        .unwrap();
    }
    rel
}

#[test]
fn date_ranges_induce_class_rules() {
    let rel = commissioned_fleet();
    let rules = induce_pair(
        &rel,
        "SUBMARINE",
        "CommissionDate",
        "SUBMARINE",
        "Class",
        &InductionConfig::with_min_support(2),
    )
    .unwrap();
    assert_eq!(rules.len(), 2, "two classes clear N_c = 2: {rules:#?}");
    let c0201 = rules
        .iter()
        .find(|r| r.y_value == Value::str("0201"))
        .unwrap();
    assert_eq!(
        c0201.lo,
        Value::Date(Date::new(1976, 11, 13).unwrap()),
        "range starts at the earliest 0201 commissioning"
    );
    assert_eq!(c0201.hi, Value::Date(Date::new(1977, 3, 18).unwrap()));
    assert_eq!(c0201.support, 3);
    let c0101 = rules
        .iter()
        .find(|r| r.y_value == Value::str("0101"))
        .unwrap();
    assert_eq!(c0101.support, 3);
}

#[test]
fn date_rules_round_trip_through_rule_relations() {
    let rel = commissioned_fleet();
    let induced = induce_pair(
        &rel,
        "SUBMARINE",
        "CommissionDate",
        "SUBMARINE",
        "Class",
        &InductionConfig::with_min_support(2),
    )
    .unwrap();
    let rules =
        intensio_rules::rule::RuleSet::from_rules(induced.into_iter().map(|r| r.into_rule()));
    let encoded = intensio_rules::encode::encode(&rules).unwrap();
    let decoded = intensio_rules::encode::decode(&encoded).unwrap();
    assert_eq!(rules.len(), decoded.len());
    for (a, b) in rules.iter().zip(decoded.iter()) {
        assert_eq!(a.lhs, b.lhs, "date boundaries must survive the encoding");
    }
}

#[test]
fn date_ranges_subsume_date_conditions() {
    use intensio_rules::range::ValueRange;
    let range = ValueRange::closed(
        Value::Date(Date::new(1976, 11, 13).unwrap()),
        Value::Date(Date::new(1977, 3, 18).unwrap()),
    );
    assert!(range.contains(&Value::Date(Date::new(1977, 1, 1).unwrap())));
    assert!(!range.contains(&Value::Date(Date::new(1978, 1, 1).unwrap())));
    let cond = ValueRange::from_cmp(
        intensio_storage::expr::CmpOp::Ge,
        Value::Date(Date::new(1976, 12, 1).unwrap()),
    )
    .unwrap();
    assert!(cond.intersects(&range));
}
