//! Reproduction of the paper's §6 result: applying the knowledge
//! acquisition technique to the ship database. The paper prints 17
//! rules, R1–R17; these tests check that schema-guided induction
//! recovers them (and documents where the published list deviates from
//! its own algorithm — the paper is a prototype report and its rule list
//! was partly hand-curated; see EXPERIMENTS.md).

use intensio_induction::{Ils, InductionConfig};
use intensio_rules::rule::{Rule, RuleSet};
use intensio_shipdb::{ship_database, ship_model};
use intensio_storage::value::Value;

fn induce(nc: usize) -> RuleSet {
    let db = ship_database().unwrap();
    let model = ship_model().unwrap();
    let ils = Ils::new(&model, InductionConfig::with_min_support(nc));
    ils.induce(&db).unwrap().rules
}

/// Find a rule with the given premise attribute, range, and consequence.
fn find<'a>(
    rules: &'a RuleSet,
    x_obj: &str,
    x_attr: &str,
    lo: &Value,
    hi: &Value,
    subtype: &str,
) -> Option<&'a Rule> {
    rules.iter().find(|r| {
        r.rhs_subtype.as_deref() == Some(subtype)
            && r.lhs.len() == 1
            && r.lhs[0].attr.matches(x_obj, x_attr)
            && r.lhs[0].range.lo.as_ref().map(|e| e.value.sem_eq(lo)) == Some(true)
            && r.lhs[0].range.hi.as_ref().map(|e| e.value.sem_eq(hi)) == Some(true)
    })
}

#[test]
fn reproduces_submarine_rules_r1_to_r4() {
    let rules = induce(3);
    // R1 (paper writes SSN623..SSN635; Appendix C ids are SSBN-prefixed).
    assert!(find(
        &rules,
        "SUBMARINE",
        "Id",
        &Value::str("SSBN623"),
        &Value::str("SSBN635"),
        "C0103"
    )
    .is_some());
    // R2 and R3: two Sturgeon runs split by Narwhal (0203) at SSN671.
    assert!(find(
        &rules,
        "SUBMARINE",
        "Id",
        &Value::str("SSN648"),
        &Value::str("SSN666"),
        "C0204"
    )
    .is_some());
    assert!(find(
        &rules,
        "SUBMARINE",
        "Id",
        &Value::str("SSN673"),
        &Value::str("SSN686"),
        "C0204"
    )
    .is_some());
    // R4.
    assert!(find(
        &rules,
        "SUBMARINE",
        "Id",
        &Value::str("SSN692"),
        &Value::str("SSN704"),
        "C0201"
    )
    .is_some());
    // The 0102 run (SSBN644..SSBN658) has support 2 < N_c = 3 and is
    // pruned — consistent with its absence from the paper's list.
    assert!(find(
        &rules,
        "SUBMARINE",
        "Id",
        &Value::str("SSBN644"),
        &Value::str("SSBN658"),
        "C0102"
    )
    .is_none());
}

#[test]
fn reproduces_class_rules_r5_r6_r8_r9() {
    let rules = induce(3);
    // R5: classes 0101..0103 are SSBN.
    assert!(find(
        &rules,
        "CLASS",
        "Class",
        &Value::str("0101"),
        &Value::str("0103"),
        "SSBN"
    )
    .is_some());
    // R6: classes 0201..0215 are SSN.
    assert!(find(
        &rules,
        "CLASS",
        "Class",
        &Value::str("0201"),
        &Value::str("0215"),
        "SSN"
    )
    .is_some());
    // R8/R9: displacement bands.
    let r8 = find(
        &rules,
        "CLASS",
        "Displacement",
        &Value::Int(2145),
        &Value::Int(6955),
        "SSN",
    )
    .expect("R8");
    assert_eq!(r8.support, 9, "nine SSN classes in Appendix C");
    let r9 = find(
        &rules,
        "CLASS",
        "Displacement",
        &Value::Int(7250),
        &Value::Int(30000),
        "SSBN",
    )
    .expect("R9");
    assert_eq!(r9.support, 4, "two classes share displacement 7250");
}

#[test]
fn reproduces_classname_rule_r7() {
    let rules = induce(3);
    // R7: Skate <= ClassName <= Thresher then SSN. Sorted class names:
    // ... Skate, Skipjack, Sturgeon, Thresher — a 4-class SSN run.
    assert!(find(
        &rules,
        "CLASS",
        "ClassName",
        &Value::str("Skate"),
        &Value::str("Thresher"),
        "SSN"
    )
    .is_some());
}

#[test]
fn reproduces_sonar_rules_r10_r11() {
    let rules = induce(3);
    assert!(find(
        &rules,
        "SONAR",
        "Sonar",
        &Value::str("BQQ-2"),
        &Value::str("BQQ-8"),
        "BQQ"
    )
    .is_some());
    assert!(find(
        &rules,
        "SONAR",
        "Sonar",
        &Value::str("BQS-04"),
        &Value::str("BQS-15"),
        "BQS"
    )
    .is_some());
}

#[test]
fn reproduces_install_rules_r12_r13_r15_r16() {
    let rules = induce(3);
    // R12: ships SSN582..SSN601 carry BQS sonars.
    assert!(find(
        &rules,
        "SUBMARINE",
        "Id",
        &Value::str("SSN582"),
        &Value::str("SSN601"),
        "BQS"
    )
    .is_some());
    // R13: ships SSN604..SSN671 carry BQQ sonars.
    assert!(find(
        &rules,
        "SUBMARINE",
        "Id",
        &Value::str("SSN604"),
        &Value::str("SSN671"),
        "BQQ"
    )
    .is_some());
    // R15: classes 0205..0207 carry BQQ.
    assert!(find(
        &rules,
        "SUBMARINE",
        "Class",
        &Value::str("0205"),
        &Value::str("0207"),
        "BQQ"
    )
    .is_some());
    // R16: classes 0208..0215 carry BQS.
    assert!(find(
        &rules,
        "SUBMARINE",
        "Class",
        &Value::str("0208"),
        &Value::str("0215"),
        "BQS"
    )
    .is_some());
}

#[test]
fn r14_and_r17_surface_at_lower_nc() {
    // R14 (`x.Class = 0203 -> BQQ`, support 1) and R17
    // (`y.Sonar = BQS-04 -> SSN`, support 4 under run semantics merging
    // BQQ-8) don't clear N_c = 3 exactly as printed; the paper's list is
    // loose here. At N_c = 1 both shapes appear.
    let rules = induce(1);
    assert!(find(
        &rules,
        "SUBMARINE",
        "Class",
        &Value::str("0203"),
        &Value::str("0203"),
        "BQQ"
    )
    .is_some());
    // R17's conclusion: sonar BQS-04 implies ship type SSN (the run may
    // extend to adjacent consistent sonars).
    let r17ish = rules.iter().find(|r| {
        r.rhs_subtype.as_deref() == Some("SSN")
            && r.lhs.len() == 1
            && r.lhs[0].attr.matches("SONAR", "Sonar")
            && r.lhs[0].range.contains(&Value::str("BQS-04"))
    });
    assert!(r17ish.is_some(), "no rule concluding SSN from Sonar");
}

#[test]
fn all_rules_are_exact_on_the_data() {
    // Under the paper's Remove policy and full-order runs, every induced
    // rule must be violation-free on the training data.
    let db = ship_database().unwrap();
    let model = ship_model().unwrap();
    let ils = Ils::new(&model, InductionConfig::with_min_support(1));
    let out = ils.induce(&db).unwrap();
    assert!(out.stats.pairs_examined > 0);
    assert!(out.stats.rules_constructed >= out.stats.rules_kept);
    // Spot-check R8/R9 exactness: every class displacement in [2145,6955]
    // is SSN.
    let class = db.get("CLASS").unwrap();
    for t in class.iter() {
        let d = t.get(3).as_int().unwrap();
        let ty = t.get(2).as_str().unwrap();
        if (2145..=6955).contains(&d) {
            assert_eq!(ty, "SSN");
        }
        if (7250..=30000).contains(&d) {
            assert_eq!(ty, "SSBN");
        }
    }
}

#[test]
fn rule_count_is_stable() {
    // Pin the rule counts at the paper's threshold so regressions in the
    // induction pipeline are caught. (The paper prints 17 hand-curated
    // rules; the algorithm as published yields a slightly different set
    // — see EXPERIMENTS.md for the side-by-side.)
    let rules = induce(3);
    assert!(
        (14..=30).contains(&rules.len()),
        "unexpected rule count {} at N_c = 3",
        rules.len()
    );
    let rules1 = induce(1);
    assert!(rules1.len() > rules.len());
}
