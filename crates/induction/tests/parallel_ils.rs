//! The parallel ILS must produce *identical* output to the sequential
//! driver — same rules, same numbering, same statistics.

use intensio_induction::{Ils, InductionConfig};
use intensio_shipdb::{generate, ship_database, ship_model, FleetConfig};

#[test]
fn parallel_matches_sequential_on_the_test_bed() {
    let db = ship_database().unwrap();
    let model = ship_model().unwrap();
    for nc in [1usize, 3] {
        let ils = Ils::new(&model, InductionConfig::with_min_support(nc));
        let seq = ils.induce(&db).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let par = ils.induce_parallel(&db, threads).unwrap();
            assert_eq!(
                seq.rules.rules(),
                par.rules.rules(),
                "rule mismatch at N_c={nc}, threads={threads}"
            );
            assert_eq!(seq.stats, par.stats);
        }
    }
}

#[test]
fn parallel_matches_sequential_on_a_fleet() {
    let fleet = generate(FleetConfig {
        seed: 0xBEEF,
        n_types: 3,
        classes_per_type: 8,
        ships_per_class: 15,
        sonars_per_family: 4,
        id_noise: 0.1,
        overlapping_bands: true,
    })
    .unwrap();
    let model = fleet.ker_model();
    let ils = Ils::new(&model, InductionConfig::with_min_support(2));
    let seq = ils.induce(&fleet.db).unwrap();
    let par = ils.induce_parallel(&fleet.db, 4).unwrap();
    assert_eq!(seq.rules.rules(), par.rules.rules());
    assert_eq!(seq.stats, par.stats);
}

#[test]
fn degenerate_thread_counts() {
    let db = ship_database().unwrap();
    let model = ship_model().unwrap();
    let ils = Ils::new(&model, InductionConfig::default());
    let seq = ils.induce(&db).unwrap();
    // threads = 0 is clamped to 1; threads > jobs is fine.
    let p0 = ils.induce_parallel(&db, 0).unwrap();
    let p99 = ils.induce_parallel(&db, 99).unwrap();
    assert_eq!(seq.rules.rules(), p0.rules.rules());
    assert_eq!(seq.rules.rules(), p99.rules.rules());
}
