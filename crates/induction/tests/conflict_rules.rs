//! The conflict fixture induces a *genuinely* conflicting rule set.
//!
//! Pairwise induction over one relationship relation partitions the
//! premise axis, so a single source can never contradict itself. Two
//! relationship relations classifying the same object type from the
//! same premise attribute can — and the `intensio-shipdb` conflict
//! fixture is built so they do. This is the rule set the serve-path
//! install gate and the `IC020` lint are tested against.

use intensio_check::{check_rules, RuleCheckConfig, Severity};
use intensio_induction::{Ils, InductionConfig};
use intensio_shipdb::{conflict_database, conflict_model};

#[test]
fn conflict_fixture_induces_rules_that_clash_on_g_cat() {
    let db = conflict_database().unwrap();
    let model = conflict_model().unwrap();
    let cfg = InductionConfig::default();
    let rules = Ils::new(&model, cfg).induce(&db).unwrap().rules;

    // Both relationship relations contribute a rule about G's category.
    let about_cat: Vec<_> = rules
        .iter()
        .filter(|r| r.rhs.attr.matches("G", "Cat"))
        .collect();
    assert!(
        about_cat
            .iter()
            .any(|r| r.rhs_subtype.as_deref() == Some("GA")),
        "expected an R1-derived rule concluding GA, got {rules:?}"
    );
    assert!(
        about_cat
            .iter()
            .any(|r| r.rhs_subtype.as_deref() == Some("GB")),
        "expected an R2-derived rule concluding GB, got {rules:?}"
    );

    // The checker flags the overlap as an Error-level conflict.
    let report = check_rules(
        &rules,
        Some(&db),
        &RuleCheckConfig {
            min_support: cfg.min_support,
        },
    );
    assert!(
        report.has_errors(),
        "no errors in: {}",
        report.render_text()
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == "IC020" && d.severity == Severity::Error),
        "expected IC020, got: {}",
        report.render_text()
    );
}
