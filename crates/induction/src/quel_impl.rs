//! The rule-induction algorithm executed through QUEL, statement for
//! statement as printed in §5.2.1.
//!
//! Steps 1 and 2 run as actual QUEL (`retrieve into ... unique`,
//! `delete ... where`); steps 3 and 4 (range construction, pruning) are
//! post-processing over the surviving pair relation, exactly as the
//! EQUEL/C prototype did. This module exists to demonstrate fidelity:
//! tests assert it produces the same rules as the direct implementation
//! in [`crate::pairwise`].

use crate::config::{InconsistencyPolicy, InductionConfig, RunScope, SupportMetric};
use crate::pairwise::InducedRule;
use intensio_quel::{QuelError, Session};
use intensio_rules::rule::AttrId;
use intensio_storage::catalog::Database;
use intensio_storage::value::ValueKey;
use std::collections::BTreeMap;

/// Induce rules for `(X, Y)` over a stored relation by running the
/// paper's QUEL statements. Only the paper's `Remove` inconsistency
/// policy is expressible in the published statements.
pub fn induce_pair_quel(
    db: &mut Database,
    relation: &str,
    x: &str,
    y: &str,
    cfg: &InductionConfig,
) -> Result<Vec<InducedRule>, QuelError> {
    assert_eq!(
        cfg.inconsistency,
        InconsistencyPolicy::Remove,
        "the published QUEL sequence removes inconsistent pairs"
    );
    let mut session = Session::new();

    // Step 1: retrieve the distinct (Y, X) pairs.
    session.execute(db, &format!("range of r is {relation}"))?;
    session.execute(
        db,
        &format!("retrieve into __IND_S unique (Yv = r.{y}, Xv = r.{x}) sort by Yv"),
    )?;

    // Step 2: find and delete inconsistent pairs.
    session.execute(db, &format!("range of r2 is {relation}"))?;
    session.execute(db, "range of s is __IND_S")?;
    session.execute(
        db,
        &format!(
            "retrieve into __IND_T unique (Yv = s.Yv, Xv = s.Xv) \
             where (r2.{x} = s.Xv and r2.{y} != s.Yv)"
        ),
    )?;
    session.execute(db, "range of t is __IND_T")?;
    session.execute(db, "delete s where (s.Xv = t.Xv and s.Yv = t.Yv)")?;

    // Step 3: construct rules over maximal consecutive runs. Observed X
    // order (including removed values, which break runs) comes from the
    // base relation; consistent assignments from the surviving __IND_S.
    let base = db.get(relation)?;
    let observed = base.distinct_values(x)?;
    let xi = base.schema().require(relation, x)?;
    let yi = base.schema().require(relation, y)?;
    let mut instance_counts: BTreeMap<(ValueKey, ValueKey), usize> = BTreeMap::new();
    for t in base.iter() {
        let (xv, yv) = (t.get(xi), t.get(yi));
        if xv.is_null() || yv.is_null() {
            continue;
        }
        *instance_counts
            .entry((ValueKey(xv.clone()), ValueKey(yv.clone())))
            .or_insert(0) += 1;
    }

    let s_rel = db.get("__IND_S")?;
    let mut assigned: BTreeMap<ValueKey, ValueKey> = BTreeMap::new();
    for t in s_rel.iter() {
        assigned.insert(ValueKey(t.get(1).clone()), ValueKey(t.get(0).clone()));
    }

    let run_values: Vec<ValueKey> = match cfg.run_scope {
        RunScope::FullObservedOrder => observed.into_iter().map(ValueKey).collect(),
        RunScope::RemainingOrder => observed
            .into_iter()
            .map(ValueKey)
            .filter(|v| assigned.contains_key(v))
            .collect(),
    };

    let mut rules: Vec<InducedRule> = Vec::new();
    let mut current: Option<(ValueKey, Vec<ValueKey>)> = None;
    let flush = |current: &mut Option<(ValueKey, Vec<ValueKey>)>, rules: &mut Vec<InducedRule>| {
        if let Some((yv, xs)) = current.take() {
            let support: usize = xs
                .iter()
                .map(|xv| {
                    instance_counts
                        .get(&(xv.clone(), yv.clone()))
                        .copied()
                        .unwrap_or(0)
                })
                .sum();
            rules.push(InducedRule {
                x: AttrId::new(relation, x),
                lo: xs.first().expect("non-empty").0.clone(),
                hi: xs.last().expect("non-empty").0.clone(),
                y: AttrId::new(relation, y),
                y_value: yv.0.clone(),
                support,
                violations: 0,
                distinct_x: xs.len(),
            });
        }
    };
    for xv in run_values {
        match (assigned.get(&xv).cloned(), &mut current) {
            (None, cur) => flush(cur, &mut rules),
            (Some(yv), Some((cy, xs))) if &yv == cy => xs.push(xv),
            (Some(yv), cur) => {
                flush(cur, &mut rules);
                *cur = Some((yv, vec![xv]));
            }
        }
    }
    flush(&mut current, &mut rules);

    // Step 4: prune.
    rules.retain(|r| {
        let measure = match cfg.support_metric {
            SupportMetric::Instances => r.support,
            SupportMetric::DistinctValues => r.distinct_x,
        };
        measure >= cfg.min_support
    });

    // Clean up scratch relations.
    db.drop("__IND_S");
    db.drop("__IND_T");
    Ok(rules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairwise::induce_pair;
    use intensio_storage::domain::Domain;
    use intensio_storage::relation::Relation;
    use intensio_storage::schema::{Attribute, Schema};
    use intensio_storage::tuple;
    use intensio_storage::value::{Value, ValueType};

    fn db_with_class() -> Database {
        let schema = Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new("Type", Domain::char_n(4)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut r = Relation::new("CLASS", schema);
        r.insert_all([
            tuple!["0101", "SSBN", 16600],
            tuple!["0102", "SSBN", 7250],
            tuple!["0103", "SSBN", 7250],
            tuple!["0201", "SSN", 6000],
            tuple!["0203", "SSN", 4450],
            tuple!["1301", "SSBN", 30000],
        ])
        .unwrap();
        let mut db = Database::new();
        db.create(r).unwrap();
        db
    }

    #[test]
    fn quel_and_direct_agree_on_class_type() {
        let mut db = db_with_class();
        let cfg = InductionConfig::with_min_support(1);
        let via_quel = induce_pair_quel(&mut db, "CLASS", "Class", "Type", &cfg).unwrap();
        let direct = induce_pair(
            db.get("CLASS").unwrap(),
            "CLASS",
            "Class",
            "CLASS",
            "Type",
            &cfg,
        )
        .unwrap();
        assert_eq!(via_quel, direct);
        assert_eq!(via_quel.len(), 3);
    }

    #[test]
    fn quel_and_direct_agree_with_inconsistency() {
        let schema = Schema::new(vec![
            Attribute::new("X", Domain::basic(ValueType::Int)),
            Attribute::new("Y", Domain::char_n(1)),
        ])
        .unwrap();
        let mut r = Relation::new("R", schema);
        r.insert_all([
            tuple![1, "a"],
            tuple![2, "a"],
            tuple![3, "a"],
            tuple![3, "b"],
            tuple![4, "a"],
            tuple![5, "b"],
        ])
        .unwrap();
        let mut db = Database::new();
        db.create(r).unwrap();
        let cfg = InductionConfig::with_min_support(1);
        let via_quel = induce_pair_quel(&mut db, "R", "X", "Y", &cfg).unwrap();
        let direct = induce_pair(db.get("R").unwrap(), "R", "X", "R", "Y", &cfg).unwrap();
        assert_eq!(via_quel, direct);
        // X=3 removed; runs {1,2}, {4} for a and {5} for b.
        assert_eq!(via_quel.len(), 3);
    }

    #[test]
    fn scratch_relations_cleaned_up() {
        let mut db = db_with_class();
        let cfg = InductionConfig::default();
        induce_pair_quel(&mut db, "CLASS", "Displacement", "Type", &cfg).unwrap();
        assert!(!db.contains("__IND_S"));
        assert!(!db.contains("__IND_T"));
    }

    #[test]
    fn pruned_like_direct() {
        let mut db = db_with_class();
        let cfg = InductionConfig::with_min_support(3);
        let rules = induce_pair_quel(&mut db, "CLASS", "Class", "Type", &cfg).unwrap();
        // Runs: {0101-0103}:SSBN (3), {0201,0203}:SSN (2), {1301}:SSBN (1);
        // only the first survives N_c = 3.
        assert_eq!(rules.len(), 1);
        assert!(rules.iter().all(|r| r.support >= 3));
        assert_eq!(rules[0].lo, Value::str("0101"));
    }
}
