//! Inter-object constraint discovery (§3.1).
//!
//! Beyond classification rules, the paper's inter-object knowledge
//! includes relational *constraints* between the entities a relationship
//! links: "the relationship VISIT involves entities of SHIP and PORT and
//! satisfies the constraint that the draft of the ship must be less than
//! the depth of the port. The inter-object knowledge can be induced from
//! the interrelationship between SHIP and PORT linked by the VISIT
//! relationship."
//!
//! This module induces exactly that: for every pair of comparable
//! attributes across the roles of a relationship join, it finds the
//! strongest comparison (`<`, `<=`, `=`, `>=`, `>`) that every joined
//! instance satisfies.

use crate::driver::Ils;
use intensio_rules::rule::AttrId;
use intensio_storage::catalog::Database;
use intensio_storage::error::Result;
use intensio_storage::expr::CmpOp;
use intensio_storage::relation::Relation;
use std::cmp::Ordering;
use std::fmt;

/// A discovered constraint `left op right` holding for every instance of
/// the relationship.
#[derive(Debug, Clone, PartialEq)]
pub struct InterObjectConstraint {
    /// The relationship relation the constraint was induced from.
    pub relationship: String,
    /// Left attribute (role-qualified).
    pub left: AttrId,
    /// The strongest operator that always holds.
    pub op: CmpOp,
    /// Right attribute.
    pub right: AttrId,
    /// Number of relationship instances supporting it.
    pub support: usize,
}

impl fmt::Display for InterObjectConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} {} (support {})",
            self.relationship, self.left, self.op, self.right, self.support
        )
    }
}

impl Ils<'_> {
    /// Discover inter-object inequality/equality constraints over every
    /// relationship relation of the database. Only constraints supported
    /// by at least `min_support` (the ILS's `N_c`) instances are kept,
    /// and trivial self-comparisons are skipped.
    pub fn discover_relationship_constraints(
        &self,
        db: &Database,
    ) -> Result<Vec<InterObjectConstraint>> {
        let mut out = Vec::new();
        for rel in db.relations() {
            if !self.is_relationship(db, rel) {
                continue;
            }
            let roles = self.role_attrs(db, rel);
            let joined = self.join_roles(db, rel, &roles)?;
            let mut role_cols = Vec::new();
            for (_, entity) in &roles {
                let mut cols = Vec::new();
                crate::driver::collect_entity_columns(self.model(), db, entity, &mut cols, 1);
                role_cols.push(cols);
            }
            discover_in_joined(
                rel.name(),
                &joined,
                &role_cols,
                self.config().min_support,
                &mut out,
            )?;
        }
        Ok(out)
    }
}

/// Scan a joined relation for universally-held comparisons between
/// columns of *different* roles.
pub(crate) fn discover_in_joined(
    relationship: &str,
    joined: &Relation,
    role_cols: &[Vec<(String, String, String, bool)>],
    min_support: usize,
    out: &mut Vec<InterObjectConstraint>,
) -> Result<()> {
    for (ai, a_cols) in role_cols.iter().enumerate() {
        for (bi, b_cols) in role_cols.iter().enumerate() {
            if ai >= bi {
                continue; // each unordered pair once; op orientation covers both
            }
            for (a_col, a_entity, a_attr, a_key) in a_cols {
                for (b_col, b_entity, b_attr, b_key) in b_cols {
                    // Key attributes are surrogate identifiers; any
                    // ordering between them is lexicographic noise.
                    if *a_key || *b_key {
                        continue;
                    }
                    let Some(xi) = joined.schema().index_of(a_col) else {
                        continue;
                    };
                    let Some(yi) = joined.schema().index_of(b_col) else {
                        continue;
                    };
                    // Track which orderings occur.
                    let (mut lt, mut eq, mut gt, mut n) = (false, false, false, 0usize);
                    let mut comparable = true;
                    for t in joined.iter() {
                        let (l, r) = (t.get(xi), t.get(yi));
                        if l.is_null() || r.is_null() {
                            continue;
                        }
                        match l.compare(r) {
                            Ok(Ordering::Less) => lt = true,
                            Ok(Ordering::Equal) => eq = true,
                            Ok(Ordering::Greater) => gt = true,
                            Err(_) => {
                                comparable = false;
                                break;
                            }
                        }
                        n += 1;
                    }
                    if !comparable || n < min_support {
                        continue;
                    }
                    let op = match (lt, eq, gt) {
                        (true, false, false) => Some(CmpOp::Lt),
                        (true, true, false) => Some(CmpOp::Le),
                        (false, true, false) => Some(CmpOp::Eq),
                        (false, true, true) => Some(CmpOp::Ge),
                        (false, false, true) => Some(CmpOp::Gt),
                        _ => None, // both < and > occur: no constraint
                    };
                    if let Some(op) = op {
                        // Equality between a role key and its own foreign
                        // key column is referential noise; skip identical
                        // attributes with Eq on string ids.
                        out.push(InterObjectConstraint {
                            relationship: relationship.to_string(),
                            left: AttrId::new(a_entity.clone(), a_attr.clone()),
                            op,
                            right: AttrId::new(b_entity.clone(), b_attr.clone()),
                            support: n,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}
