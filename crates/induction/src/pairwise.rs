//! The pairwise rule-induction algorithm of §5.2.1.
//!
//! For an attribute pair `(X, Y)` of a relation:
//!
//! 1. collect the distinct `(Y, X)` value pairs;
//! 2. remove inconsistent pairs (an X with more than one Y);
//! 3. for each distinct `y`, build rules `if x1 <= X <= x2 then Y = y`
//!    over maximal runs of consecutive observed X values;
//! 4. prune rules with support below `N_c`.

use crate::config::{InconsistencyPolicy, InductionConfig, RunScope, SupportMetric};
use intensio_rules::rule::{AttrId, Clause, Rule};
use intensio_storage::error::Result;
use intensio_storage::relation::Relation;
use intensio_storage::value::{Value, ValueKey};
use std::collections::BTreeMap;

/// A rule produced by pairwise induction, before numbering.
#[derive(Debug, Clone, PartialEq)]
pub struct InducedRule {
    /// The premise attribute.
    pub x: AttrId,
    /// The induced X range (inclusive).
    pub lo: Value,
    /// Upper end of the range.
    pub hi: Value,
    /// The consequence attribute.
    pub y: AttrId,
    /// The concluded Y value.
    pub y_value: Value,
    /// Instances satisfying premise and consequence.
    pub support: usize,
    /// Instances satisfying the premise but *not* the consequence
    /// (non-zero only under the `RemainingOrder`/`MajorityVote`
    /// ablations).
    pub violations: usize,
    /// Distinct X values covered.
    pub distinct_x: usize,
}

impl InducedRule {
    /// Convert into a [`Rule`] (id assigned by the rule set).
    pub fn into_rule(self) -> Rule {
        let support = self.support;
        Rule::new(
            0,
            vec![Clause::between(self.x, self.lo, self.hi)],
            Clause::equals(self.y, self.y_value),
        )
        .with_support(support)
    }
}

/// Induce rules for the pair `(X, Y)` over a relation.
///
/// `object_x`/`object_y` name the object types the attributes belong to
/// (used for rule display and inference); for intra-object induction
/// both are the relation name.
pub fn induce_pair(
    rel: &Relation,
    object_x: &str,
    x: &str,
    object_y: &str,
    y: &str,
    cfg: &InductionConfig,
) -> Result<Vec<InducedRule>> {
    induce_pair_ids(
        rel,
        x,
        AttrId::new(object_x, x),
        y,
        AttrId::new(object_y, y),
        cfg,
    )
}

/// Like [`induce_pair`], but with explicit column names and attribute
/// ids. Used for inter-object induction, where the joined relation's
/// columns are role-prefixed (`SUBMARINE.Id`) while the rule should
/// speak of `SUBMARINE.Id` via its [`AttrId`].
pub fn induce_pair_ids(
    rel: &Relation,
    x_col: &str,
    x_id: AttrId,
    y_col: &str,
    y_id: AttrId,
    cfg: &InductionConfig,
) -> Result<Vec<InducedRule>> {
    induce_pair_ids_with_stats(rel, x_col, x_id, y_col, y_id, cfg).map(|(rules, _)| rules)
}

/// Like [`induce_pair_ids`], additionally returning the number of rules
/// constructed in step 3 *before* the `N_c` pruning of step 4.
pub fn induce_pair_ids_with_stats(
    rel: &Relation,
    x_col: &str,
    x_id: AttrId,
    y_col: &str,
    y_id: AttrId,
    cfg: &InductionConfig,
) -> Result<(Vec<InducedRule>, usize)> {
    let xi = rel.schema().require(rel.name(), x_col)?;
    let yi = rel.schema().require(rel.name(), y_col)?;

    // Step 1: distinct (X, Y) pairs with instance counts, X sorted.
    // pair_counts[x][y] = number of instances.
    let mut pair_counts: BTreeMap<ValueKey, BTreeMap<ValueKey, usize>> = BTreeMap::new();
    for t in rel.iter() {
        let xv = t.get(xi);
        let yv = t.get(yi);
        if xv.is_null() || yv.is_null() {
            continue; // missing values carry no classification evidence
        }
        *pair_counts
            .entry(ValueKey(xv.clone()))
            .or_default()
            .entry(ValueKey(yv.clone()))
            .or_insert(0) += 1;
    }

    // Step 2: resolve inconsistent X values.
    // observed: every distinct X in sorted order; assigned: X -> Some(y)
    // if consistent (or majority-voted), None if removed.
    let observed: Vec<ValueKey> = pair_counts.keys().cloned().collect();
    let mut assigned: BTreeMap<ValueKey, Option<(ValueKey, usize, usize)>> = BTreeMap::new();
    for (xv, ys) in &pair_counts {
        let total: usize = ys.values().sum();
        let (best_y, best_n) = ys
            .iter()
            .max_by_key(|(_, n)| **n)
            .map(|(y, n)| (y.clone(), *n))
            .expect("non-empty");
        let value = if ys.len() == 1 {
            Some((best_y, best_n, 0))
        } else {
            match cfg.inconsistency {
                InconsistencyPolicy::Remove => None,
                InconsistencyPolicy::MajorityVote => {
                    if best_n * 2 > total {
                        Some((best_y, best_n, total - best_n))
                    } else {
                        None
                    }
                }
            }
        };
        assigned.insert(xv.clone(), value);
    }

    // Step 3: maximal runs of consecutive X values sharing a Y.
    let run_values: Vec<&ValueKey> = match cfg.run_scope {
        RunScope::FullObservedOrder => observed.iter().collect(),
        RunScope::RemainingOrder => observed.iter().filter(|x| assigned[*x].is_some()).collect(),
    };

    let mut rules: Vec<InducedRule> = Vec::new();
    let mut current: Option<(ValueKey, Vec<&ValueKey>)> = None; // (y, xs)
    let flush = |current: &mut Option<(ValueKey, Vec<&ValueKey>)>, rules: &mut Vec<InducedRule>| {
        if let Some((yv, xs)) = current.take() {
            let mut support = 0usize;
            let mut violations = 0usize;
            for xv in &xs {
                if let Some((ay, n, v)) = &assigned[*xv] {
                    debug_assert_eq!(ay, &yv);
                    support += n;
                    violations += v;
                }
            }
            rules.push(InducedRule {
                x: x_id.clone(),
                lo: xs.first().expect("non-empty run").0.clone(),
                hi: xs.last().expect("non-empty run").0.clone(),
                y: y_id.clone(),
                y_value: yv.0.clone(),
                support,
                violations,
                distinct_x: xs.len(),
            });
        }
    };

    for xv in run_values {
        match (&assigned[xv], &mut current) {
            (None, cur) => flush(cur, &mut rules),
            (Some((yv, _, _)), Some((cy, xs))) if yv == cy => xs.push(xv),
            (Some((yv, _, _)), cur) => {
                flush(cur, &mut rules);
                *cur = Some((yv.clone(), vec![xv]));
            }
        }
    }
    flush(&mut current, &mut rules);

    // Under RemainingOrder, a rule's range may span removed X values:
    // recount violations from the raw pair counts.
    if cfg.run_scope == RunScope::RemainingOrder {
        for r in &mut rules {
            let mut violations = 0usize;
            for (xv, ys) in &pair_counts {
                let in_range = xv.0.compare(&r.lo).map(|o| o.is_ge()).unwrap_or(false)
                    && xv.0.compare(&r.hi).map(|o| o.is_le()).unwrap_or(false);
                if in_range {
                    for (yv, n) in ys {
                        if yv.0 != r.y_value {
                            violations += n;
                        }
                    }
                }
            }
            r.violations = violations;
        }
    }

    // Step 4: prune by support.
    let constructed = rules.len();
    rules.retain(|r| {
        let measure = match cfg.support_metric {
            SupportMetric::Instances => r.support,
            SupportMetric::DistinctValues => r.distinct_x,
        };
        measure >= cfg.min_support
    });
    Ok((rules, constructed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_storage::domain::Domain;
    use intensio_storage::schema::{Attribute, Schema};
    use intensio_storage::tuple;
    use intensio_storage::value::ValueType;

    fn class_rel() -> Relation {
        let schema = Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new("Type", Domain::char_n(4)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut r = Relation::new("CLASS", schema);
        r.insert_all([
            tuple!["0101", "SSBN", 16600],
            tuple!["0102", "SSBN", 7250],
            tuple!["0103", "SSBN", 7250],
            tuple!["0201", "SSN", 6000],
            tuple!["0203", "SSN", 4450],
            tuple!["0204", "SSN", 3640],
            tuple!["1301", "SSBN", 30000],
        ])
        .unwrap();
        r
    }

    #[test]
    fn induces_class_to_type_runs() {
        let cfg = InductionConfig::with_min_support(1);
        let rules = induce_pair(&class_rel(), "CLASS", "Class", "CLASS", "Type", &cfg).unwrap();
        // Runs: 0101-0103 SSBN, 0201-0204 SSN, 1301 SSBN.
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].lo, Value::str("0101"));
        assert_eq!(rules[0].hi, Value::str("0103"));
        assert_eq!(rules[0].y_value, Value::str("SSBN"));
        assert_eq!(rules[0].support, 3);
        assert_eq!(rules[2].lo, Value::str("1301"));
        assert_eq!(rules[2].support, 1);
    }

    #[test]
    fn pruning_drops_singletons() {
        let cfg = InductionConfig::with_min_support(3);
        let rules = induce_pair(&class_rel(), "CLASS", "Class", "CLASS", "Type", &cfg).unwrap();
        assert_eq!(rules.len(), 2, "the 1301 singleton is pruned (R_new)");
    }

    #[test]
    fn displacement_ranges_match_paper_r8_r9() {
        let cfg = InductionConfig::with_min_support(2);
        let rules =
            induce_pair(&class_rel(), "CLASS", "Displacement", "CLASS", "Type", &cfg).unwrap();
        // Sorted displacements: 3640,4450,6000 SSN | 7250(x2),16600,30000 SSBN.
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].y_value, Value::str("SSN"));
        assert_eq!(rules[0].lo, Value::Int(3640));
        assert_eq!(rules[0].hi, Value::Int(6000));
        assert_eq!(rules[1].y_value, Value::str("SSBN"));
        assert_eq!(rules[1].lo, Value::Int(7250));
        assert_eq!(rules[1].hi, Value::Int(30000));
        assert_eq!(rules[1].support, 4, "7250 appears twice");
    }

    fn noisy_rel() -> Relation {
        let schema = Schema::new(vec![
            Attribute::new("X", Domain::basic(ValueType::Int)),
            Attribute::new("Y", Domain::char_n(1)),
        ])
        .unwrap();
        let mut r = Relation::new("R", schema);
        r.insert_all([
            tuple![1, "a"],
            tuple![2, "a"],
            tuple![3, "a"],
            tuple![3, "a"],
            tuple![3, "b"], // inconsistent X=3, majority a
            tuple![4, "a"],
            tuple![5, "b"],
        ])
        .unwrap();
        r
    }

    #[test]
    fn remove_policy_breaks_runs() {
        let cfg = InductionConfig {
            min_support: 1,
            ..InductionConfig::default()
        };
        let rules = induce_pair(&noisy_rel(), "R", "X", "R", "Y", &cfg).unwrap();
        // X=3 removed: runs {1,2}:a, {4}:a, {5}:b.
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].hi, Value::Int(2));
        assert!(rules.iter().all(|r| r.violations == 0));
    }

    #[test]
    fn majority_vote_keeps_x3() {
        let cfg = InductionConfig {
            min_support: 1,
            inconsistency: InconsistencyPolicy::MajorityVote,
            ..InductionConfig::default()
        };
        let rules = induce_pair(&noisy_rel(), "R", "X", "R", "Y", &cfg).unwrap();
        // X=3 assigned to a (3 of 4... actually 2 of 3): run {1..4}:a, {5}:b.
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].hi, Value::Int(4));
        assert_eq!(rules[0].violations, 1, "the one b at X=3");
        assert_eq!(rules[0].support, 5);
    }

    #[test]
    fn remaining_order_spans_removed_values() {
        let cfg = InductionConfig {
            min_support: 1,
            run_scope: RunScope::RemainingOrder,
            ..InductionConfig::default()
        };
        let rules = induce_pair(&noisy_rel(), "R", "X", "R", "Y", &cfg).unwrap();
        // X=3 removed but runs computed over remaining {1,2,4}:a, {5}:b.
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[0].lo, Value::Int(1));
        assert_eq!(rules[0].hi, Value::Int(4));
        assert_eq!(
            rules[0].violations, 1,
            "range [1,4] covers the removed X=3 with one contradicting instance"
        );
    }

    #[test]
    fn distinct_value_support_metric() {
        let cfg = InductionConfig {
            min_support: 2,
            support_metric: SupportMetric::DistinctValues,
            ..InductionConfig::default()
        };
        let rules = induce_pair(&noisy_rel(), "R", "X", "R", "Y", &cfg).unwrap();
        // Only the {1,2} run has >= 2 distinct X values.
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].distinct_x, 2);
    }

    #[test]
    fn nulls_are_skipped() {
        let schema = Schema::new(vec![
            Attribute::new("X", Domain::basic(ValueType::Int)),
            Attribute::new("Y", Domain::char_n(1)),
        ])
        .unwrap();
        let mut r = Relation::new("R", schema);
        r.insert(tuple![1, "a"]).unwrap();
        r.insert(intensio_storage::tuple::Tuple::new(vec![
            Value::Null,
            Value::str("b"),
        ]))
        .unwrap();
        r.insert(intensio_storage::tuple::Tuple::new(vec![
            Value::Int(2),
            Value::Null,
        ]))
        .unwrap();
        let cfg = InductionConfig::with_min_support(1);
        let rules = induce_pair(&r, "R", "X", "R", "Y", &cfg).unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].support, 1);
    }

    #[test]
    fn point_rule_when_single_value() {
        let cfg = InductionConfig::with_min_support(1);
        let rules = induce_pair(&class_rel(), "CLASS", "Type", "CLASS", "Type", &cfg);
        // X == Y degenerates to identity point rules; allowed but odd.
        assert!(rules.is_ok());
    }

    #[test]
    fn unknown_attribute_errors() {
        let cfg = InductionConfig::default();
        assert!(induce_pair(&class_rel(), "CLASS", "Nope", "CLASS", "Type", &cfg).is_err());
    }

    #[test]
    fn into_rule_display() {
        let cfg = InductionConfig::with_min_support(3);
        let rules = induce_pair(&class_rel(), "CLASS", "Class", "CLASS", "Type", &cfg).unwrap();
        let rule = rules[0].clone().into_rule();
        assert_eq!(
            rule.to_string(),
            "R0: if \"0101\" <= CLASS.Class <= \"0103\" then CLASS.Type = \"SSBN\""
        );
    }
}
