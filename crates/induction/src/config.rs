//! Induction configuration: the pruning threshold `N_c` and the semantic
//! knobs the paper leaves informal.

/// How a rule's support is counted for pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupportMetric {
    /// Number of database instances (tuples) satisfying the rule — the
    /// paper's "number of instances satisfied".
    Instances,
    /// Number of distinct X values covered by the rule's range.
    DistinctValues,
}

/// What "a consecutive sequence of X values" (§5.2.1 step 3) is measured
/// against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScope {
    /// Consecutive in the full observed order of X values, so a removed
    /// (inconsistent) X value breaks a run. Rules never span values with
    /// conflicting Y — every rule is exact on the current database.
    /// This reproduces the paper's R14/R15 split (class 0204 between
    /// 0203 and 0205 is inconsistent, so BQQ gets two rules).
    FullObservedOrder,
    /// Consecutive among the *remaining* (consistent) X values. Fewer,
    /// wider rules, but a rule's range may cover removed X values whose
    /// instances contradict it (ablation variant).
    RemainingOrder,
}

/// How inconsistent (X, Y) pairs — one X mapping to several Y — are
/// handled in step 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InconsistencyPolicy {
    /// Delete every pair whose X has conflicting Y (the paper's step 2).
    Remove,
    /// Keep the majority Y for the X when one value holds a strict
    /// majority of the X's instances (ablation variant; tolerates noise
    /// at the price of exactness).
    MajorityVote,
}

/// Full configuration of the rule-induction algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InductionConfig {
    /// The pruning threshold `N_c`: rules with support below it are
    /// dropped (step 4). The paper's 17-rule set corresponds to 3.
    pub min_support: usize,
    /// Support metric.
    pub support_metric: SupportMetric,
    /// Run construction scope.
    pub run_scope: RunScope,
    /// Inconsistency handling.
    pub inconsistency: InconsistencyPolicy,
}

impl Default for InductionConfig {
    /// The paper's settings: `N_c = 3`, instance-count support, runs over
    /// the full observed order, inconsistent pairs removed.
    fn default() -> Self {
        InductionConfig {
            min_support: 3,
            support_metric: SupportMetric::Instances,
            run_scope: RunScope::FullObservedOrder,
            inconsistency: InconsistencyPolicy::Remove,
        }
    }
}

impl InductionConfig {
    /// The default configuration with a different `N_c`.
    pub fn with_min_support(min_support: usize) -> InductionConfig {
        InductionConfig {
            min_support,
            ..InductionConfig::default()
        }
    }
}
