//! # intensio-induction
//!
//! The Inductive Learning Subsystem (ILS) of Chu & Lee (ICDE 1991),
//! §3 and §5.2: machine learning over database contents, guided by the
//! database schema, producing the `if lo <= X <= hi then Y = y` rules
//! that type inference turns into intensional answers.
//!
//! * [`pairwise`] — the 4-step pairwise induction algorithm of §5.2.1;
//! * [`quel_impl`] — the same algorithm executed through the published
//!   QUEL statements (fidelity check);
//! * [`driver`] — the model-based ILS: schema-guided candidate selection,
//!   intra-object and inter-object (relationship-join) induction;
//! * [`tree`] — an ID3-style decision-tree learner ([QUIN79]), the
//!   general inductive technique §3.2 builds on;
//! * [`config`] — the pruning threshold `N_c` and the semantic knobs the
//!   paper leaves informal, exposed for ablation.
//!
//! ```
//! use intensio_induction::{Ils, InductionConfig};
//!
//! let db = intensio_shipdb::ship_database().unwrap();
//! let model = intensio_shipdb::ship_model().unwrap();
//! let ils = Ils::new(&model, InductionConfig::default());
//! let out = ils.induce(&db).unwrap();
//! assert!(!out.rules.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod constraints;
pub mod driver;
pub mod pairwise;
pub mod quel_impl;
pub mod tree;

pub use config::{InconsistencyPolicy, InductionConfig, RunScope, SupportMetric};
pub use constraints::InterObjectConstraint;
pub use driver::{Ils, IlsOutput, IlsStats};
pub use pairwise::{induce_pair, induce_pair_ids, induce_pair_ids_with_stats, InducedRule};
pub use quel_impl::induce_pair_quel;
