//! The model-based Inductive Learning Subsystem (ILS) of §5.2.
//!
//! The paper's key idea for taming rule induction on large databases is
//! to let the *schema* choose the induction candidates: the object
//! hierarchy's classifying attributes are the rule consequences worth
//! learning, and the entity/relationship structure tells which joins to
//! consider for inter-object knowledge.
//!
//! * **Intra-object** (§3.1): for every stored relation, every
//!   classifying attribute `Y` it carries (that is not its key) is paired
//!   with every other attribute `X` of the relation.
//! * **Inter-object**: every relationship relation (one whose attributes
//!   are object-valued, like INSTALL's `Ship` and `Sonar`) is joined with
//!   the entities it links (transitively, one extra hop, so a ship's
//!   CLASS attributes are visible too); then pairs are induced across
//!   roles — premise attributes from one role, classifying consequences
//!   from another.

use crate::config::InductionConfig;
use crate::pairwise::{induce_pair_ids_with_stats, InducedRule};
use intensio_ker::model::KerModel;
use intensio_rules::rule::AttrId as RuleAttrId;
use intensio_rules::rule::{AttrId, RuleSet};
use intensio_storage::catalog::Database;
use intensio_storage::error::{Result, StorageError};
use intensio_storage::relation::Relation;
use intensio_storage::schema::{Attribute, Schema};
use intensio_storage::value::ValueKey;
use std::collections::{BTreeSet, HashMap};

/// Statistics from one ILS run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IlsStats {
    /// Attribute pairs examined.
    pub pairs_examined: usize,
    /// Rules constructed before pruning.
    pub rules_constructed: usize,
    /// Rules surviving the `N_c` pruning.
    pub rules_kept: usize,
}

/// The result of a learning run: the rule set plus statistics.
#[derive(Debug, Clone)]
pub struct IlsOutput {
    /// The induced rules, numbered.
    pub rules: RuleSet,
    /// Run statistics.
    pub stats: IlsStats,
}

/// Bump the global induction counters from one run's statistics.
fn record_induction_metrics(stats: &IlsStats) {
    intensio_obs::inc("induction.runs");
    intensio_obs::add("induction.pairs_examined", stats.pairs_examined as u64);
    intensio_obs::add("induction.rules_kept", stats.rules_kept as u64);
    intensio_obs::add(
        "induction.rules_pruned",
        stats.rules_constructed.saturating_sub(stats.rules_kept) as u64,
    );
}

/// Post-induction lint hook: run the rule-set pass over freshly induced
/// rules and surface Warn-or-worse findings. The driver never blocks on
/// findings — enforcement belongs to the serve-layer install gate —
/// but `induction.lint_warnings`/`lint_errors` make suspect rule sets
/// visible in metrics, and at Verbose level each finding is printed.
fn lint_fresh_rules(rules: &RuleSet, cfg: &InductionConfig) {
    use intensio_check::Severity;
    let report = intensio_check::check_rules(
        rules,
        None,
        &intensio_check::RuleCheckConfig {
            min_support: cfg.min_support,
        },
    );
    let warns = report.count(Severity::Warn);
    let errors = report.count(Severity::Error);
    if warns > 0 {
        intensio_obs::add("induction.lint_warnings", warns as u64);
    }
    if errors > 0 {
        intensio_obs::add("induction.lint_errors", errors as u64);
    }
    if intensio_obs::level() >= intensio_obs::Level::Verbose {
        for d in report
            .diagnostics
            .iter()
            .filter(|d| d.severity >= Severity::Warn)
        {
            eprintln!("[lint] {d}");
        }
    }
}

/// The model-based inductive learning subsystem.
#[derive(Debug, Clone)]
pub struct Ils<'m> {
    model: &'m KerModel,
    cfg: InductionConfig,
}

impl<'m> Ils<'m> {
    /// An ILS over a KER model with the given configuration.
    pub fn new(model: &'m KerModel, cfg: InductionConfig) -> Ils<'m> {
        Ils { model, cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &InductionConfig {
        &self.cfg
    }

    /// The KER model driving the ILS.
    pub fn model(&self) -> &KerModel {
        self.model
    }

    /// Run schema-guided induction over every relation of the database.
    pub fn induce(&self, db: &Database) -> Result<IlsOutput> {
        let _span = intensio_obs::Span::stage("induction.run", intensio_obs::Stage::Induction)
            .with_field("mode", "sequential");
        intensio_fault::fire("induction.run")?;
        let mut stats = IlsStats::default();
        let mut induced: Vec<InducedRule> = Vec::new();
        let classifier_attrs = self.classifier_attr_names();

        for rel in db.relations() {
            if self.is_relationship(db, rel) {
                let mut rules = self.induce_inter(db, rel, &classifier_attrs, &mut stats)?;
                induced.append(&mut rules);
            } else {
                let mut rules = self.induce_intra(rel, &classifier_attrs, &mut stats)?;
                induced.append(&mut rules);
            }
        }

        stats.rules_kept = induced.len();
        let mut rules = RuleSet::new();
        for r in induced {
            let subtype = self.model.subtype_label_for(&r.y.attribute, &r.y_value);
            let mut rule = r.into_rule();
            rule.rhs_subtype = subtype;
            rules.push(rule);
        }
        record_induction_metrics(&stats);
        lint_fresh_rules(&rules, &self.cfg);
        Ok(IlsOutput { rules, stats })
    }

    /// Run schema-guided induction with pair-level parallelism.
    ///
    /// The §5.2.1 algorithm is embarrassingly parallel across attribute
    /// pairs: each pair's induction touches only its own columns. Jobs
    /// are partitioned across `threads` scoped worker threads and the
    /// results reassembled in job order, so the output is identical to
    /// [`Ils::induce`] (tested). Relationship joins are materialized
    /// once, up front, on the calling thread.
    pub fn induce_parallel(&self, db: &Database, threads: usize) -> Result<IlsOutput> {
        let _span = intensio_obs::Span::stage("induction.run", intensio_obs::Stage::Induction)
            .with_field("mode", "parallel")
            .with_field("threads", threads.max(1));
        intensio_fault::fire("induction.run")?;
        let threads = threads.max(1);
        let classifier_attrs = self.classifier_attr_names();

        /// Column descriptor: (column, source entity, attribute, is key).
        type ColSpec = (String, String, String, bool);
        // Materialize relationship joins first (sequential).
        let mut joined: Vec<Relation> = Vec::new();
        let mut joined_roles: Vec<Vec<Vec<ColSpec>>> = Vec::new();
        for rel in db.relations() {
            if self.is_relationship(db, rel) {
                let roles = self.role_attrs(db, rel);
                joined.push(self.join_roles(db, rel, &roles)?);
                let mut per_role = Vec::new();
                for (_, entity) in &roles {
                    let mut cols = Vec::new();
                    collect_entity_columns(self.model, db, entity, &mut cols, 1);
                    per_role.push(cols);
                }
                joined_roles.push(per_role);
            }
        }

        // Job list: (relation ref, x_col, x_id, y_col, y_id), in the same
        // order the sequential driver visits pairs.
        struct Job<'r> {
            rel: &'r Relation,
            x_col: String,
            x_id: AttrId,
            y_col: String,
            y_id: AttrId,
        }
        let mut jobs: Vec<Job<'_>> = Vec::new();
        let mut join_idx = 0usize;
        for rel in db.relations() {
            if self.is_relationship(db, rel) {
                let jrel = &joined[join_idx];
                let role_cols = &joined_roles[join_idx];
                join_idx += 1;
                for (ai, a_cols) in role_cols.iter().enumerate() {
                    for (bi, b_cols) in role_cols.iter().enumerate() {
                        if ai == bi {
                            continue;
                        }
                        for (x_col, x_entity, x_attr, _) in a_cols {
                            for (y_col, y_entity, y_attr, y_key) in b_cols {
                                if *y_key
                                    || !classifier_attrs.contains(&y_attr.to_ascii_lowercase())
                                {
                                    continue;
                                }
                                jobs.push(Job {
                                    rel: jrel,
                                    x_col: x_col.clone(),
                                    x_id: AttrId::new(x_entity.clone(), x_attr.clone()),
                                    y_col: y_col.clone(),
                                    y_id: AttrId::new(y_entity.clone(), y_attr.clone()),
                                });
                            }
                        }
                    }
                }
            } else {
                for y_attr in rel.schema().attributes() {
                    if y_attr.is_key()
                        || !classifier_attrs.contains(&y_attr.name().to_ascii_lowercase())
                    {
                        continue;
                    }
                    for x_attr in rel.schema().attributes() {
                        if x_attr.name().eq_ignore_ascii_case(y_attr.name()) {
                            continue;
                        }
                        jobs.push(Job {
                            rel,
                            x_col: x_attr.name().to_string(),
                            x_id: AttrId::new(rel.name(), x_attr.name()),
                            y_col: y_attr.name().to_string(),
                            y_id: AttrId::new(rel.name(), y_attr.name()),
                        });
                    }
                }
            }
        }

        let mut stats = IlsStats {
            pairs_examined: jobs.len(),
            ..IlsStats::default()
        };

        // Fan jobs out over scoped threads, keeping job order in the
        // reassembled result.
        let cfg = self.cfg;
        let n = jobs.len();
        let chunk = n.div_ceil(threads).max(1);
        let mut results: Vec<Option<(Vec<InducedRule>, usize)>> = Vec::new();
        results.resize_with(n, || None);
        let errors = std::sync::Mutex::new(Vec::new());
        {
            let mut slots: &mut [Option<(Vec<InducedRule>, usize)>] = &mut results;
            let mut job_slices: &[Job<'_>] = &jobs;
            std::thread::scope(|scope| {
                while !job_slices.is_empty() {
                    let take = chunk.min(job_slices.len());
                    let (job_chunk, rest_jobs) = job_slices.split_at(take);
                    let (slot_chunk, rest_slots) = slots.split_at_mut(take);
                    job_slices = rest_jobs;
                    slots = rest_slots;
                    let errors = &errors;
                    scope.spawn(move || {
                        for (job, slot) in job_chunk.iter().zip(slot_chunk) {
                            match induce_pair_ids_with_stats(
                                job.rel,
                                &job.x_col,
                                job.x_id.clone(),
                                &job.y_col,
                                job.y_id.clone(),
                                &cfg,
                            ) {
                                Ok(pair) => *slot = Some(pair),
                                Err(e) => {
                                    errors.lock().expect("mutex").push(e);
                                }
                            }
                        }
                    });
                }
            });
        }
        if let Some(e) = errors.into_inner().expect("mutex").into_iter().next() {
            return Err(e);
        }

        let mut rules = RuleSet::new();
        for slot in results.into_iter().flatten() {
            let (pair_rules, constructed) = slot;
            stats.rules_constructed += constructed;
            for r in pair_rules {
                stats.rules_kept += 1;
                let subtype = self.model.subtype_label_for(&r.y.attribute, &r.y_value);
                let mut rule = r.into_rule();
                rule.rhs_subtype = subtype;
                rules.push(rule);
            }
        }
        record_induction_metrics(&stats);
        lint_fresh_rules(&rules, &self.cfg);
        Ok(IlsOutput { rules, stats })
    }

    /// Extension beyond the paper's §5.2.1: learn *multi-clause* rules
    /// with the decision-tree learner (§3.2's general technique) and
    /// merge them with the pairwise rules.
    ///
    /// For each classifying attribute `Y` of a relation, a tree is
    /// trained over the non-key attributes; every pure root-to-leaf path
    /// of depth ≥ 2 whose support clears `N_c` becomes a conjunctive
    /// rule — knowledge the single-pair algorithm cannot express. Tree
    /// clauses arrive half-open; they are closed against the observed
    /// extrema so they remain storable as rule relations (§5.2.2's
    /// closed-clause format).
    pub fn induce_with_trees(&self, db: &Database) -> Result<IlsOutput> {
        let mut out = self.induce(db)?;
        let classifier_attrs = self.classifier_attr_names();
        for rel in db.relations() {
            if self.is_relationship(db, rel) {
                continue;
            }
            for y_attr in rel.schema().attributes() {
                if y_attr.is_key()
                    || !classifier_attrs.contains(&y_attr.name().to_ascii_lowercase())
                {
                    continue;
                }
                let features: Vec<&str> = rel
                    .schema()
                    .attributes()
                    .iter()
                    .filter(|a| !a.is_key() && !a.name().eq_ignore_ascii_case(y_attr.name()))
                    .map(|a| a.name())
                    .collect();
                if features.is_empty() {
                    continue;
                }
                let Ok(tree) = crate::tree::learn(
                    rel,
                    &features,
                    y_attr.name(),
                    &crate::tree::TreeConfig::default(),
                ) else {
                    continue;
                };
                for mut rule in crate::tree::to_closed_rules(&tree, rel, rel.name())? {
                    if rule.lhs.len() < 2 || rule.support < self.cfg.min_support {
                        continue;
                    }
                    rule.rhs_subtype =
                        rule.rhs.range.as_point().and_then(|v| {
                            self.model.subtype_label_for(&rule.rhs.attr.attribute, v)
                        });
                    out.rules.push(rule);
                    out.stats.rules_kept += 1;
                }
            }
        }
        Ok(out)
    }

    /// The classifying attribute names declared by the model's
    /// hierarchies (lowercase).
    fn classifier_attr_names(&self) -> BTreeSet<String> {
        self.model
            .classifiers()
            .into_iter()
            .map(|(_, c)| c.attribute.to_ascii_lowercase())
            .collect()
    }

    /// A relation is a relationship when at least two of its attributes
    /// are object-valued (their KER domain names another object type
    /// stored in the database).
    pub(crate) fn is_relationship(&self, db: &Database, rel: &Relation) -> bool {
        self.role_attrs(db, rel).len() >= 2
    }

    /// The object-valued attributes of a relation: `(attr name, target
    /// entity relation name)`.
    pub(crate) fn role_attrs(&self, db: &Database, rel: &Relation) -> Vec<(String, String)> {
        let Some(ot) = self.model.object_type(rel.name()) else {
            return Vec::new();
        };
        ot.declared_attrs
            .iter()
            .filter_map(|a| {
                let target = a.domain().name();
                if self.model.contains_type(target)
                    && db.contains(target)
                    && !target.eq_ignore_ascii_case(rel.name())
                {
                    Some((a.name().to_string(), target.to_string()))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Intra-object induction: for every non-key classifying attribute Y
    /// of the relation, pair it with every other attribute X.
    fn induce_intra(
        &self,
        rel: &Relation,
        classifier_attrs: &BTreeSet<String>,
        stats: &mut IlsStats,
    ) -> Result<Vec<InducedRule>> {
        let mut out = Vec::new();
        let object = rel.name();
        for y_attr in rel.schema().attributes() {
            if y_attr.is_key() {
                continue;
            }
            if !classifier_attrs.contains(&y_attr.name().to_ascii_lowercase()) {
                continue;
            }
            for x_attr in rel.schema().attributes() {
                if x_attr.name().eq_ignore_ascii_case(y_attr.name()) {
                    continue;
                }
                stats.pairs_examined += 1;
                let (rules, constructed) = induce_pair_ids_with_stats(
                    rel,
                    x_attr.name(),
                    RuleAttrId::new(object, x_attr.name()),
                    y_attr.name(),
                    RuleAttrId::new(object, y_attr.name()),
                    &self.cfg,
                )?;
                stats.rules_constructed += constructed;
                out.extend(rules);
            }
        }
        Ok(out)
    }

    /// Inter-object induction over a relationship relation.
    fn induce_inter(
        &self,
        db: &Database,
        rel: &Relation,
        classifier_attrs: &BTreeSet<String>,
        stats: &mut IlsStats,
    ) -> Result<Vec<InducedRule>> {
        let roles = self.role_attrs(db, rel);
        let joined = self.join_roles(db, rel, &roles)?;

        // Columns per role: (column name in `joined`, entity name, attr
        // name, is_key_of_entity).
        let mut role_cols: Vec<Vec<(String, String, String, bool)>> = Vec::new();
        for (_, entity) in &roles {
            let mut cols = Vec::new();
            collect_entity_columns(self.model, db, entity, &mut cols, 1);
            role_cols.push(cols);
        }

        let mut out = Vec::new();
        for (ai, a_cols) in role_cols.iter().enumerate() {
            for (bi, b_cols) in role_cols.iter().enumerate() {
                if ai == bi {
                    continue;
                }
                for (x_col, x_entity, x_attr, _) in a_cols {
                    for (y_col, y_entity, y_attr, y_key) in b_cols {
                        if *y_key || !classifier_attrs.contains(&y_attr.to_ascii_lowercase()) {
                            continue;
                        }
                        stats.pairs_examined += 1;
                        let (rules, constructed) = induce_pair_ids_with_stats(
                            &joined,
                            x_col,
                            AttrId::new(x_entity.clone(), x_attr.clone()),
                            y_col,
                            AttrId::new(y_entity.clone(), y_attr.clone()),
                            &self.cfg,
                        )?;
                        stats.rules_constructed += constructed;
                        out.extend(rules);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Join a relationship relation with its role entities (and one more
    /// hop of object-valued attributes). Columns are named
    /// `ENTITY.Attr`.
    pub(crate) fn join_roles(
        &self,
        db: &Database,
        rel: &Relation,
        roles: &[(String, String)],
    ) -> Result<Relation> {
        // Plan the joined schema.
        let mut attrs: Vec<Attribute> = Vec::new();
        for (_role_attr, entity) in roles {
            let mut cols: Vec<(String, String, String, bool)> = Vec::new();
            collect_entity_columns(self.model, db, entity, &mut cols, 1);
            for (col, src_entity, attr, _) in &cols {
                let src_rel = db.get(src_entity)?;
                let idx = src_rel.schema().require(src_entity, attr)?;
                attrs.push(Attribute::new(
                    col.clone(),
                    src_rel.schema().attr(idx).domain().clone(),
                ));
            }
        }
        let schema = Schema::new(attrs)?;
        let mut joined = Relation::new(format!("{}⋈roles", rel.name()), schema);

        // Key-indexed lookup per entity (including hop-2 targets).
        let mut lookups: HashMap<String, HashMap<ValueKey, &intensio_storage::tuple::Tuple>> =
            HashMap::new();
        let mut entities_needed: BTreeSet<String> = BTreeSet::new();
        for (_, entity) in roles {
            entities_needed.insert(entity.clone());
            for (hop_attr, hop_entity) in self.entity_hops(db, entity) {
                let _ = hop_attr;
                entities_needed.insert(hop_entity);
            }
        }
        for entity in &entities_needed {
            let erel = db.get(entity)?;
            let keys = erel.schema().key_indices();
            let [kidx] = keys.as_slice() else {
                return Err(StorageError::Invalid(format!(
                    "entity {entity} needs a single-attribute key for role joins"
                )));
            };
            let mut map = HashMap::with_capacity(erel.len());
            for t in erel.iter() {
                map.insert(ValueKey(t.get(*kidx).clone()), t);
            }
            lookups.insert(entity.to_ascii_lowercase(), map);
        }

        // Per-role column plans, resolved to source relation + index.
        // (source entity lowercase, attribute index, hop via-attribute
        // index in the role entity or None for the entity's own column).
        struct ColPlan {
            src_entity: String,
            attr_idx: usize,
            via_idx: Option<usize>,
        }
        let mut role_plans: Vec<(usize, String, Vec<ColPlan>)> = Vec::new(); // (rel attr idx, entity, cols)
        for (role_attr, entity) in roles {
            let ri = rel.schema().require(rel.name(), role_attr)?;
            let erel = db.get(entity)?;
            let mut cols: Vec<(String, String, String, bool)> = Vec::new();
            collect_entity_columns(self.model, db, entity, &mut cols, 1);
            let hops = self.entity_hops(db, entity);
            let mut plans = Vec::with_capacity(cols.len());
            for (_, src_entity, attr, _) in &cols {
                if src_entity.eq_ignore_ascii_case(entity) {
                    plans.push(ColPlan {
                        src_entity: src_entity.to_ascii_lowercase(),
                        attr_idx: erel.schema().require(entity, attr)?,
                        via_idx: None,
                    });
                } else {
                    let via = hops
                        .iter()
                        .find(|(_, e)| e.eq_ignore_ascii_case(src_entity))
                        .map(|(via, _)| via.clone())
                        .ok_or_else(|| {
                            StorageError::Invalid(format!(
                                "no reference from {entity} to {src_entity}"
                            ))
                        })?;
                    let srel = db.get(src_entity)?;
                    plans.push(ColPlan {
                        src_entity: src_entity.to_ascii_lowercase(),
                        attr_idx: srel.schema().require(src_entity, attr)?,
                        via_idx: Some(erel.schema().require(entity, &via)?),
                    });
                }
            }
            role_plans.push((ri, entity.clone(), plans));
        }

        // Produce joined tuples (inner join: dangling references skip).
        'tuples: for t in rel.iter() {
            let mut values = Vec::new();
            for (ri, entity, plans) in &role_plans {
                let key = ValueKey(t.get(*ri).clone());
                let Some(entity_tuple) = lookups[&entity.to_ascii_lowercase()].get(&key) else {
                    continue 'tuples;
                };
                for plan in plans {
                    match plan.via_idx {
                        None => values.push(entity_tuple.get(plan.attr_idx).clone()),
                        Some(vi) => {
                            let k = ValueKey(entity_tuple.get(vi).clone());
                            match lookups[&plan.src_entity].get(&k) {
                                Some(ht) => values.push(ht.get(plan.attr_idx).clone()),
                                None => values.push(intensio_storage::value::Value::Null),
                            }
                        }
                    }
                }
            }
            joined.insert(intensio_storage::tuple::Tuple::new(values))?;
        }
        Ok(joined)
    }

    /// Object-valued attributes of an entity: `(attr, target entity)`.
    fn entity_hops(&self, db: &Database, entity: &str) -> Vec<(String, String)> {
        let Some(ot) = self.model.object_type(entity) else {
            return Vec::new();
        };
        ot.declared_attrs
            .iter()
            .filter_map(|a| {
                let target = a.domain().name();
                if self.model.contains_type(target)
                    && db.contains(target)
                    && !target.eq_ignore_ascii_case(entity)
                {
                    Some((a.name().to_string(), target.to_string()))
                } else {
                    None
                }
            })
            .collect()
    }
}

/// Columns contributed by an entity to a role join: its own attributes
/// plus (at `depth` ≥ 1) the attributes of entities it references.
/// Each entry is `(column name, source entity, attribute, is key)`.
pub(crate) fn collect_entity_columns(
    model: &KerModel,
    db: &Database,
    entity: &str,
    out: &mut Vec<(String, String, String, bool)>,
    depth: usize,
) {
    let Ok(erel) = db.get(entity) else { return };
    let mut hops: Vec<(String, String)> = Vec::new();
    for a in erel.schema().attributes() {
        out.push((
            format!("{entity}.{}", a.name()),
            entity.to_string(),
            a.name().to_string(),
            a.is_key(),
        ));
        // Hop detection via the KER model.
        if depth > 0 {
            if let Some(ot) = model.object_type(entity) {
                if let Some(decl) = ot
                    .declared_attrs
                    .iter()
                    .find(|d| d.name().eq_ignore_ascii_case(a.name()))
                {
                    let target = decl.domain().name();
                    if model.contains_type(target)
                        && db.contains(target)
                        && !target.eq_ignore_ascii_case(entity)
                    {
                        hops.push((a.name().to_string(), target.to_string()));
                    }
                }
            }
        }
    }
    for (_, target) in hops {
        if let Ok(trel) = db.get(&target) {
            for a in trel.schema().attributes() {
                // Skip the target's key (it duplicates the referencing
                // attribute's values).
                if a.is_key() {
                    continue;
                }
                out.push((
                    format!("{target}.{}", a.name()),
                    target.clone(),
                    a.name().to_string(),
                    false,
                ));
            }
        }
    }
}
