//! An ID3-style decision-tree learner.
//!
//! §3.2 grounds the ILS in classic inductive learning ([QUIN79],
//! [MICH83]): "recursively determine a set of descriptors that classify
//! each example and select the best descriptor from a set of examples
//! based on ... theoretical information content". This module implements
//! that technique directly: information-gain attribute selection,
//! categorical multi-way splits, binary threshold splits for numeric
//! attributes, and extraction of the leaves as classification rules.

use intensio_rules::range::{Endpoint, ValueRange};
use intensio_rules::rule::{AttrId, Clause, Rule, RuleSet};
use intensio_storage::error::{Result, StorageError};
use intensio_storage::relation::Relation;
use intensio_storage::value::{Value, ValueKey};
use std::collections::BTreeMap;

/// A decision-tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A leaf predicting a class value with `support` examples, of which
    /// `errors` disagree (non-zero only when the data is inseparable).
    Leaf {
        /// Predicted target value.
        class: Value,
        /// Examples reaching this leaf.
        support: usize,
        /// Examples whose target disagrees with the prediction.
        errors: usize,
    },
    /// A categorical split: one branch per observed value.
    SplitCategorical {
        /// The splitting attribute's column index.
        attr: usize,
        /// Branches by attribute value.
        branches: Vec<(Value, Node)>,
        /// Fallback for unmatched values (majority leaf).
        default: Box<Node>,
    },
    /// A numeric split: `<= threshold` goes left, otherwise right.
    SplitNumeric {
        /// The splitting attribute's column index.
        attr: usize,
        /// Split threshold.
        threshold: Value,
        /// Branch for values `<= threshold`.
        le: Box<Node>,
        /// Branch for values `> threshold`.
        gt: Box<Node>,
    },
}

/// A trained decision tree over a relation's attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionTree {
    /// The relation the tree was trained on.
    pub relation: String,
    /// Feature column indices and names.
    pub features: Vec<(usize, String)>,
    /// Target column index and name.
    pub target: (usize, String),
    /// The root node.
    pub root: Node,
}

/// Configuration for tree induction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeConfig {
    /// Maximum depth (a bare leaf is depth 0). Limits overfitting.
    pub max_depth: usize,
    /// Minimum examples to attempt a split.
    pub min_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_split: 2,
        }
    }
}

fn entropy(counts: &BTreeMap<ValueKey, usize>) -> f64 {
    let total: usize = counts.values().sum();
    if total == 0 {
        return 0.0;
    }
    let mut h = 0.0;
    for &n in counts.values() {
        if n > 0 {
            let p = n as f64 / total as f64;
            h -= p * p.log2();
        }
    }
    h
}

fn class_counts(
    rows: &[&intensio_storage::tuple::Tuple],
    target: usize,
) -> BTreeMap<ValueKey, usize> {
    let mut counts = BTreeMap::new();
    for r in rows {
        *counts.entry(ValueKey(r.get(target).clone())).or_insert(0) += 1;
    }
    counts
}

fn majority(counts: &BTreeMap<ValueKey, usize>) -> (Value, usize, usize) {
    let total: usize = counts.values().sum();
    let (best, n) = counts
        .iter()
        .max_by_key(|(_, n)| **n)
        .map(|(k, n)| (k.0.clone(), *n))
        .unwrap_or((Value::Null, 0));
    (best, total, total - n)
}

/// Train a decision tree on `rel`, predicting `target` from `features`.
pub fn learn(
    rel: &Relation,
    features: &[&str],
    target: &str,
    cfg: &TreeConfig,
) -> Result<DecisionTree> {
    let target_idx = rel.schema().require(rel.name(), target)?;
    let mut feat_idx = Vec::with_capacity(features.len());
    for f in features {
        let i = rel.schema().require(rel.name(), f)?;
        if i == target_idx {
            return Err(StorageError::Invalid(
                "target cannot be a feature".to_string(),
            ));
        }
        feat_idx.push((i, rel.schema().attr(i).name().to_string()));
    }
    if rel.is_empty() {
        return Err(StorageError::Invalid(
            "cannot learn from an empty relation".to_string(),
        ));
    }
    let rows: Vec<&intensio_storage::tuple::Tuple> = rel.iter().collect();
    let root = build(&rows, &feat_idx, target_idx, cfg, 0);
    Ok(DecisionTree {
        relation: rel.name().to_string(),
        features: feat_idx,
        target: (target_idx, rel.schema().attr(target_idx).name().to_string()),
        root,
    })
}

enum Split {
    Cat(usize),
    Num(usize, Value),
}

fn build(
    rows: &[&intensio_storage::tuple::Tuple],
    features: &[(usize, String)],
    target: usize,
    cfg: &TreeConfig,
    depth: usize,
) -> Node {
    let counts = class_counts(rows, target);
    let (class, support, errors) = majority(&counts);
    if errors == 0 || depth >= cfg.max_depth || rows.len() < cfg.min_split {
        return Node::Leaf {
            class,
            support,
            errors,
        };
    }
    let base = entropy(&counts);

    let mut best: Option<(f64, Split)> = None;
    let consider = |gain: f64, split: Split, best: &mut Option<(f64, Split)>| {
        if gain > 1e-9 && best.as_ref().map(|(g, _)| gain > *g).unwrap_or(true) {
            *best = Some((gain, split));
        }
    };
    for (fi, _) in features {
        let numeric = rows
            .iter()
            .all(|r| matches!(r.get(*fi), Value::Int(_) | Value::Real(_) | Value::Null));
        if numeric {
            let mut vals: Vec<f64> = rows.iter().filter_map(|r| r.get(*fi).as_real()).collect();
            vals.sort_by(f64::total_cmp);
            vals.dedup();
            for w in vals.windows(2) {
                let thr = (w[0] + w[1]) / 2.0;
                let (mut le, mut gt) = (BTreeMap::new(), BTreeMap::new());
                let (mut n_le, mut n_gt) = (0usize, 0usize);
                for r in rows {
                    match r.get(*fi).as_real() {
                        Some(v) if v <= thr => {
                            *le.entry(ValueKey(r.get(target).clone())).or_insert(0) += 1;
                            n_le += 1;
                        }
                        Some(_) => {
                            *gt.entry(ValueKey(r.get(target).clone())).or_insert(0) += 1;
                            n_gt += 1;
                        }
                        None => {}
                    }
                }
                if n_le == 0 || n_gt == 0 {
                    continue;
                }
                let total = (n_le + n_gt) as f64;
                let gain = base
                    - (n_le as f64 / total) * entropy(&le)
                    - (n_gt as f64 / total) * entropy(&gt);
                consider(gain, Split::Num(*fi, Value::Real(thr)), &mut best);
            }
        } else {
            let mut parts: BTreeMap<ValueKey, BTreeMap<ValueKey, usize>> = BTreeMap::new();
            for r in rows {
                let v = r.get(*fi);
                if v.is_null() {
                    continue;
                }
                *parts
                    .entry(ValueKey(v.clone()))
                    .or_default()
                    .entry(ValueKey(r.get(target).clone()))
                    .or_insert(0) += 1;
            }
            if parts.len() < 2 {
                continue;
            }
            let total: usize = parts.values().map(|m| m.values().sum::<usize>()).sum();
            let gain = base
                - parts
                    .values()
                    .map(|m| {
                        let n: usize = m.values().sum();
                        (n as f64 / total as f64) * entropy(m)
                    })
                    .sum::<f64>();
            consider(gain, Split::Cat(*fi), &mut best);
        }
    }

    match best {
        None => Node::Leaf {
            class,
            support,
            errors,
        },
        Some((_, Split::Num(fi, thr))) => {
            let t = thr.as_real().expect("numeric threshold");
            let (le_rows, gt_rows): (Vec<_>, Vec<_>) = rows
                .iter()
                .copied()
                .partition(|r| r.get(fi).as_real().map(|v| v <= t).unwrap_or(true));
            Node::SplitNumeric {
                attr: fi,
                threshold: thr,
                le: Box::new(build(&le_rows, features, target, cfg, depth + 1)),
                gt: Box::new(build(&gt_rows, features, target, cfg, depth + 1)),
            }
        }
        Some((_, Split::Cat(fi))) => {
            let mut groups: BTreeMap<ValueKey, Vec<&intensio_storage::tuple::Tuple>> =
                BTreeMap::new();
            for r in rows {
                if !r.get(fi).is_null() {
                    groups
                        .entry(ValueKey(r.get(fi).clone()))
                        .or_default()
                        .push(r);
                }
            }
            let branches = groups
                .into_iter()
                .map(|(v, rs)| (v.0, build(&rs, features, target, cfg, depth + 1)))
                .collect();
            Node::SplitCategorical {
                attr: fi,
                branches,
                default: Box::new(Node::Leaf {
                    class,
                    support,
                    errors,
                }),
            }
        }
    }
}

impl DecisionTree {
    /// Predict the target value for a tuple of the training relation's
    /// schema.
    pub fn classify(&self, tuple: &intensio_storage::tuple::Tuple) -> Value {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class, .. } => return class.clone(),
                Node::SplitCategorical {
                    attr,
                    branches,
                    default,
                } => {
                    let v = tuple.get(*attr);
                    node = branches
                        .iter()
                        .find(|(bv, _)| bv.sem_eq(v))
                        .map(|(_, n)| n)
                        .unwrap_or(default);
                }
                Node::SplitNumeric {
                    attr,
                    threshold,
                    le,
                    gt,
                } => {
                    let v = tuple.get(*attr).as_real();
                    let t = threshold.as_real().expect("numeric threshold");
                    node = if v.map(|x| x <= t).unwrap_or(true) {
                        le
                    } else {
                        gt
                    };
                }
            }
        }
    }

    /// Training accuracy: fraction of tuples classified correctly.
    pub fn accuracy_on(&self, rel: &Relation) -> f64 {
        if rel.is_empty() {
            return 1.0;
        }
        let correct = rel
            .iter()
            .filter(|t| self.classify(t).sem_eq(t.get(self.target.0)))
            .count();
        correct as f64 / rel.len() as f64
    }

    /// Extract each root-to-leaf path as a rule (`if path-clauses then
    /// target = class`). Paths whose leaf still has errors are skipped
    /// unless `include_impure`.
    pub fn to_rules(&self, object: &str, include_impure: bool) -> RuleSet {
        let mut rules = Vec::new();
        let mut path: Vec<Clause> = Vec::new();
        self.walk(&self.root, object, &mut path, include_impure, &mut rules);
        RuleSet::from_rules(rules)
    }

    fn walk(
        &self,
        node: &Node,
        object: &str,
        path: &mut Vec<Clause>,
        include_impure: bool,
        out: &mut Vec<Rule>,
    ) {
        match node {
            Node::Leaf {
                class,
                support,
                errors,
            } => {
                if *errors == 0 || include_impure {
                    let rhs =
                        Clause::equals(AttrId::new(object, self.target.1.clone()), class.clone());
                    out.push(Rule::new(0, path.clone(), rhs).with_support(*support));
                }
            }
            Node::SplitCategorical { attr, branches, .. } => {
                let name = self.attr_name(*attr);
                for (v, child) in branches {
                    path.push(Clause::equals(AttrId::new(object, name.clone()), v.clone()));
                    self.walk(child, object, path, include_impure, out);
                    path.pop();
                }
            }
            Node::SplitNumeric {
                attr,
                threshold,
                le,
                gt,
            } => {
                let name = self.attr_name(*attr);
                path.push(Clause {
                    attr: AttrId::new(object, name.clone()),
                    range: ValueRange {
                        lo: None,
                        hi: Some(Endpoint::incl(threshold.clone())),
                    },
                });
                self.walk(le, object, path, include_impure, out);
                path.pop();
                path.push(Clause {
                    attr: AttrId::new(object, name),
                    range: ValueRange {
                        lo: Some(Endpoint::excl(threshold.clone())),
                        hi: None,
                    },
                });
                self.walk(gt, object, path, include_impure, out);
                path.pop();
            }
        }
    }

    fn attr_name(&self, idx: usize) -> String {
        self.features
            .iter()
            .find(|(i, _)| *i == idx)
            .map(|(_, n)| n.clone())
            .expect("split attribute is a feature")
    }

    /// Depth of the tree (a bare leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::SplitCategorical { branches, .. } => {
                    1 + branches.iter().map(|(_, c)| d(c)).max().unwrap_or(0)
                }
                Node::SplitNumeric { le, gt, .. } => 1 + d(le).max(d(gt)),
            }
        }
        d(&self.root)
    }

    /// Number of leaves.
    pub fn leaves(&self) -> usize {
        fn l(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::SplitCategorical { branches, .. } => branches.iter().map(|(_, c)| l(c)).sum(),
                Node::SplitNumeric { le, gt, .. } => l(le) + l(gt),
            }
        }
        l(&self.root)
    }
}

/// Extract a tree's pure-leaf paths as rules with every clause range
/// *closed* against the relation's observed attribute extrema, so the
/// rules conform to the paper's closed-clause format and can be stored
/// as rule relations (§5.2.2).
pub fn to_closed_rules(tree: &DecisionTree, rel: &Relation, object: &str) -> Result<Vec<Rule>> {
    let mut out = Vec::new();
    for mut rule in tree.to_rules(object, false) {
        let mut ok = true;
        for clause in &mut rule.lhs {
            let observed = rel.distinct_values(&clause.attr.attribute)?;
            let observed: Vec<&Value> = observed.iter().filter(|v| !v.is_null()).collect();
            if clause.range.lo.is_none() {
                match observed
                    .iter()
                    .find(|v| clause.range.contains(v))
                    .or(observed.first())
                {
                    Some(v) => {
                        clause.range.lo = Some(intensio_rules::range::Endpoint::incl((*v).clone()))
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if clause.range.hi.is_none() {
                match observed
                    .iter()
                    .rev()
                    .find(|v| clause.range.contains(v))
                    .or(observed.last())
                {
                    Some(v) => {
                        clause.range.hi = Some(intensio_rules::range::Endpoint::incl((*v).clone()))
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            // Snap both endpoints to observed values inside the range:
            // tree thresholds are synthetic midpoints (often Real on an
            // Int column) and exclusive bounds are not representable in
            // the closed clause format. Data-grounded semantics are
            // unchanged.
            for end_is_lo in [true, false] {
                let nearest = if end_is_lo {
                    observed.iter().find(|v| clause.range.contains(v))
                } else {
                    observed.iter().rev().find(|v| clause.range.contains(v))
                };
                match nearest {
                    Some(v) => {
                        let new = intensio_rules::range::Endpoint::incl((*v).clone());
                        if end_is_lo {
                            clause.range.lo = Some(new);
                        } else {
                            clause.range.hi = Some(new);
                        }
                    }
                    None => {
                        ok = false;
                    }
                }
            }
            if !ok {
                break;
            }
        }
        if ok {
            out.push(rule);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_storage::domain::Domain;
    use intensio_storage::schema::{Attribute, Schema};
    use intensio_storage::tuple;
    use intensio_storage::value::ValueType;

    fn class_rel() -> Relation {
        let schema = Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new("Type", Domain::char_n(4)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut r = Relation::new("CLASS", schema);
        r.insert_all([
            tuple!["0101", "SSBN", 16600],
            tuple!["0102", "SSBN", 7250],
            tuple!["0103", "SSBN", 7250],
            tuple!["0201", "SSN", 6000],
            tuple!["0203", "SSN", 4450],
            tuple!["0204", "SSN", 3640],
            tuple!["0215", "SSN", 2145],
            tuple!["1301", "SSBN", 30000],
        ])
        .unwrap();
        r
    }

    #[test]
    fn learns_displacement_threshold() {
        let rel = class_rel();
        let tree = learn(&rel, &["Displacement"], "Type", &TreeConfig::default()).unwrap();
        assert_eq!(tree.accuracy_on(&rel), 1.0);
        assert_eq!(tree.depth(), 1, "one threshold separates SSN from SSBN");
        match &tree.root {
            Node::SplitNumeric { threshold, .. } => {
                let t = threshold.as_real().unwrap();
                // The same boundary the paper's R8/R9 capture.
                assert!(t > 6000.0 && t < 7250.0, "threshold {t}");
            }
            other => panic!("expected numeric split, got {other:?}"),
        }
    }

    #[test]
    fn classify_unseen_values() {
        let rel = class_rel();
        let tree = learn(&rel, &["Displacement"], "Type", &TreeConfig::default()).unwrap();
        assert_eq!(
            tree.classify(&tuple!["9999", "?", 20000]),
            Value::str("SSBN")
        );
        assert_eq!(tree.classify(&tuple!["9999", "?", 3000]), Value::str("SSN"));
    }

    #[test]
    fn categorical_split() {
        let schema = Schema::new(vec![
            Attribute::new("Color", Domain::char_n(8)),
            Attribute::new("Label", Domain::char_n(4)),
        ])
        .unwrap();
        let mut r = Relation::new("T", schema);
        r.insert_all([
            tuple!["red", "hot"],
            tuple!["red", "hot"],
            tuple!["blue", "cold"],
            tuple!["blue", "cold"],
        ])
        .unwrap();
        let tree = learn(&r, &["Color"], "Label", &TreeConfig::default()).unwrap();
        assert_eq!(tree.accuracy_on(&r), 1.0);
        assert_eq!(tree.leaves(), 2);
        let v = tree.classify(&tuple!["green", "?"]);
        assert!(v == Value::str("hot") || v == Value::str("cold"));
    }

    #[test]
    fn rules_from_tree() {
        let rel = class_rel();
        let tree = learn(&rel, &["Displacement"], "Type", &TreeConfig::default()).unwrap();
        let rules = tree.to_rules("CLASS", false);
        assert_eq!(rules.len(), 2);
        let texts: Vec<String> = rules.iter().map(|r| r.to_string()).collect();
        assert!(texts.iter().any(|t| t.contains("SSN")));
        assert!(texts.iter().any(|t| t.contains("SSBN")));
    }

    #[test]
    fn depth_limit_creates_impure_leaf() {
        let schema = Schema::new(vec![
            Attribute::new("X", Domain::basic(ValueType::Int)),
            Attribute::new("Y", Domain::char_n(1)),
        ])
        .unwrap();
        let mut r = Relation::new("T", schema);
        r.insert_all([
            tuple![1, "a"],
            tuple![2, "b"],
            tuple![3, "a"],
            tuple![4, "b"],
        ])
        .unwrap();
        let cfg = TreeConfig {
            max_depth: 0,
            min_split: 2,
        };
        let tree = learn(&r, &["X"], "Y", &cfg).unwrap();
        match &tree.root {
            Node::Leaf { errors, .. } => assert_eq!(*errors, 2),
            other => panic!("expected leaf at depth 0, got {other:?}"),
        }
        assert_eq!(tree.to_rules("T", false).len(), 0);
        assert_eq!(tree.to_rules("T", true).len(), 1);
    }

    #[test]
    fn multiclass_ship_types() {
        let schema = Schema::new(vec![
            Attribute::new("Type", Domain::char_n(4)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut r = Relation::new("B", schema);
        let bands = [
            ("SSBN", 7250, 16600),
            ("SSN", 1720, 6000),
            ("CVN", 75700, 81600),
            ("CV", 41900, 61000),
            ("BB", 45000, 45000),
        ];
        for (ty, lo, hi) in bands {
            for k in 0..4 {
                let d = lo + (hi - lo) * k / 3;
                r.insert(tuple![ty, d]).unwrap();
            }
        }
        let tree = learn(&r, &["Displacement"], "Type", &TreeConfig::default()).unwrap();
        assert!(
            tree.accuracy_on(&r) >= 0.9,
            "accuracy {}",
            tree.accuracy_on(&r)
        );
    }

    #[test]
    fn error_cases() {
        let rel = class_rel();
        assert!(learn(&rel, &["Nope"], "Type", &TreeConfig::default()).is_err());
        assert!(learn(&rel, &["Type"], "Type", &TreeConfig::default()).is_err());
        let empty = Relation::new(
            "E",
            Schema::new(vec![
                Attribute::new("X", Domain::basic(ValueType::Int)),
                Attribute::new("Y", Domain::basic(ValueType::Int)),
            ])
            .unwrap(),
        );
        assert!(learn(&empty, &["X"], "Y", &TreeConfig::default()).is_err());
    }
}
