//! Query analysis for the inference processor.
//!
//! The intensional query processor (paper §4, §6) inspects the *query
//! condition and object types specified in the query*: which relations
//! it ranges over, which single-relation restrictions it applies
//! (`CLASS.DISPLACEMENT > 8000`, `INSTALL.SONAR = "BQS-04"`), and which
//! equi-joins connect the relations. This module extracts that structure
//! from a parsed query.
//!
//! Conjuncts outside the supported shape (disjunctions, negations,
//! non-equality cross-relation comparisons) are collected in
//! `unsupported`. Ignoring a conjunct can only *weaken* the query
//! condition, so forward inference over the remaining conjuncts stays
//! sound (its answer still contains the extensional answer).

use crate::ast::{SelectQuery, TableRef};
use crate::exec::SqlError;
use intensio_storage::catalog::Database;
use intensio_storage::expr::{CmpOp, Expr};
use intensio_storage::value::Value;

/// An attribute occurrence resolved to its relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundAttr {
    /// The relation name (not the alias).
    pub relation: String,
    /// The alias used in the query.
    pub alias: String,
    /// The attribute name (in the relation's declared spelling).
    pub attribute: String,
}

/// A single-relation restriction `attr op constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct Restriction {
    /// The restricted attribute.
    pub attr: BoundAttr,
    /// The comparison operator (attribute on the left).
    pub op: CmpOp,
    /// The constant operand.
    pub value: Value,
}

/// A cross-relation equality `a.x = b.y`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinCond {
    /// One side.
    pub left: BoundAttr,
    /// The other side.
    pub right: BoundAttr,
}

/// The extracted structure of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnalysis {
    /// The FROM relations.
    pub relations: Vec<TableRef>,
    /// Single-relation restrictions.
    pub restrictions: Vec<Restriction>,
    /// Equi-join conditions.
    pub joins: Vec<JoinCond>,
    /// Conjuncts the analyzer could not express (rendered).
    pub unsupported: Vec<String>,
}

impl QueryAnalysis {
    /// Restrictions on a given relation (by name, case-insensitive).
    pub fn restrictions_on(&self, relation: &str) -> Vec<&Restriction> {
        self.restrictions
            .iter()
            .filter(|r| r.attr.relation.eq_ignore_ascii_case(relation))
            .collect()
    }

    /// Whether the query references a relation.
    pub fn references(&self, relation: &str) -> bool {
        self.relations
            .iter()
            .any(|t| t.name.eq_ignore_ascii_case(relation))
    }
}

/// Analyze a parsed query against a database catalog.
pub fn analyze(db: &Database, q: &SelectQuery) -> Result<QueryAnalysis, SqlError> {
    let schemas: Vec<_> = q
        .from
        .iter()
        .map(|t| db.get(&t.name).map(|r| r.schema()))
        .collect::<Result<_, _>>()?;

    let resolve = |attr: &intensio_storage::expr::AttrRef| -> Result<BoundAttr, SqlError> {
        let idx = match &attr.qualifier {
            Some(qal) => q
                .from
                .iter()
                .position(|t| t.alias.eq_ignore_ascii_case(qal))
                .ok_or_else(|| SqlError::Semantic(format!("unknown alias {qal}")))?,
            None => {
                let mut found = None;
                for (i, s) in schemas.iter().enumerate() {
                    if s.index_of(&attr.name).is_some() {
                        if found.is_some() {
                            return Err(SqlError::Semantic(format!(
                                "ambiguous attribute {}",
                                attr.name
                            )));
                        }
                        found = Some(i);
                    }
                }
                found
                    .ok_or_else(|| SqlError::Semantic(format!("unknown attribute {}", attr.name)))?
            }
        };
        let col = schemas[idx].index_of(&attr.name).ok_or_else(|| {
            SqlError::Semantic(format!(
                "relation {} has no attribute {}",
                q.from[idx].name, attr.name
            ))
        })?;
        Ok(BoundAttr {
            relation: q.from[idx].name.clone(),
            alias: q.from[idx].alias.clone(),
            attribute: schemas[idx].attr(col).name().to_string(),
        })
    };

    let mut out = QueryAnalysis {
        relations: q.from.clone(),
        restrictions: Vec::new(),
        joins: Vec::new(),
        unsupported: Vec::new(),
    };

    let Some(w) = &q.where_clause else {
        return Ok(out);
    };
    for c in w.conjuncts() {
        match c {
            Expr::Cmp { op, left, right } => match (&**left, &**right) {
                (Expr::Attr(a), Expr::Const(v)) => {
                    out.restrictions.push(Restriction {
                        attr: resolve(a)?,
                        op: *op,
                        value: v.clone(),
                    });
                }
                (Expr::Const(v), Expr::Attr(a)) => {
                    out.restrictions.push(Restriction {
                        attr: resolve(a)?,
                        op: op.flip(),
                        value: v.clone(),
                    });
                }
                (Expr::Attr(a), Expr::Attr(b)) if *op == CmpOp::Eq => {
                    out.joins.push(JoinCond {
                        left: resolve(a)?,
                        right: resolve(b)?,
                    });
                }
                _ => out.unsupported.push(c.to_string()),
            },
            other => out.unsupported.push(other.to_string()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use intensio_storage::prelude::*;
    use intensio_storage::tuple;

    fn db() -> Database {
        let mut db = Database::new();
        let sub = Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Class", Domain::char_n(4)),
        ])
        .unwrap();
        let mut s = Relation::new("SUBMARINE", sub);
        s.insert(tuple!["SSBN730", "0101"]).unwrap();
        db.create(s).unwrap();
        let cls = Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new("Type", Domain::char_n(4)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        db.create(Relation::new("CLASS", cls)).unwrap();
        db
    }

    #[test]
    fn extracts_example1_structure() {
        let db = db();
        let q = parse(
            "SELECT SUBMARINE.ID, CLASS.TYPE FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
        )
        .unwrap();
        let a = analyze(&db, &q).unwrap();
        assert_eq!(a.relations.len(), 2);
        assert_eq!(a.joins.len(), 1);
        assert_eq!(a.restrictions.len(), 1);
        let r = &a.restrictions[0];
        assert_eq!(r.attr.relation, "CLASS");
        assert_eq!(r.attr.attribute, "Displacement");
        assert_eq!(r.op, CmpOp::Gt);
        assert_eq!(r.value, Value::Int(8000));
        assert!(a.unsupported.is_empty());
        assert_eq!(a.restrictions_on("class").len(), 1);
        assert!(a.references("submarine"));
    }

    #[test]
    fn flips_constant_on_left() {
        let db = db();
        let q = parse("SELECT Id FROM SUBMARINE WHERE 8000 < Class").unwrap();
        let a = analyze(&db, &q).unwrap();
        assert_eq!(a.restrictions[0].op, CmpOp::Gt);
    }

    #[test]
    fn unsupported_conjuncts_recorded() {
        let db = db();
        let q = parse("SELECT Id FROM SUBMARINE WHERE Id = 'X' AND (Class = '1' OR Class = '2')")
            .unwrap();
        let a = analyze(&db, &q).unwrap();
        assert_eq!(a.restrictions.len(), 1);
        assert_eq!(a.unsupported.len(), 1);
    }

    #[test]
    fn bare_attributes_resolve_uniquely() {
        let db = db();
        let q = parse("SELECT Id FROM SUBMARINE, CLASS WHERE Displacement > 5").unwrap();
        let a = analyze(&db, &q).unwrap();
        assert_eq!(a.restrictions[0].attr.relation, "CLASS");
        // "Class" exists in both relations: ambiguous.
        let q = parse("SELECT Id FROM SUBMARINE, CLASS WHERE Class = '0101'").unwrap();
        assert!(analyze(&db, &q).is_err());
    }
}
