//! Query plan explanation: a textual rendering of the executor's
//! strategy for a query — pushed restrictions (with index eligibility),
//! the greedy join order, residual predicates, grouping, and ordering.

use crate::analyze::{analyze, QueryAnalysis};
use crate::ast::{SelectItem, SelectQuery};
use crate::exec::SqlError;
use intensio_storage::catalog::Database;
use intensio_storage::expr::CmpOp;
use std::fmt::Write as _;

/// Produce a human-readable plan for a query.
pub fn explain(db: &Database, q: &SelectQuery) -> Result<String, SqlError> {
    let analysis: QueryAnalysis = analyze(db, q)?;
    let mut out = String::new();
    let _ = writeln!(out, "plan:");

    // Scans with pushed restrictions.
    for t in &q.from {
        let rel = db.get(&t.name)?;
        let restrictions: Vec<String> = analysis
            .restrictions
            .iter()
            .filter(|r| r.attr.alias.eq_ignore_ascii_case(&t.alias))
            .map(|r| {
                let indexable = matches!(
                    r.op,
                    CmpOp::Eq | CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge
                );
                format!(
                    "{}.{} {} {}{}",
                    t.alias,
                    r.attr.attribute,
                    r.op,
                    r.value,
                    if indexable {
                        " [index range scan]"
                    } else {
                        " [scan]"
                    }
                )
            })
            .collect();
        let _ = write!(
            out,
            "  scan {} as {} ({} tuples)",
            t.name,
            t.alias,
            rel.len()
        );
        if restrictions.is_empty() {
            let _ = writeln!(out);
        } else {
            let _ = writeln!(out, " where {}", restrictions.join(" and "));
        }
    }

    // Greedy join order: same rule as the executor — start with the
    // first FROM entry, repeatedly attach a table connected by an
    // equi-join, cartesian otherwise.
    let mut bound: Vec<&str> = vec![q.from[0].alias.as_str()];
    let mut remaining: Vec<&str> = q.from[1..].iter().map(|t| t.alias.as_str()).collect();
    let mut pending = analysis.joins.clone();
    while !remaining.is_empty() {
        let next = pending.iter().position(|j| {
            let (l, r) = (j.left.alias.as_str(), j.right.alias.as_str());
            (bound.contains(&l) && remaining.contains(&r))
                || (bound.contains(&r) && remaining.contains(&l))
        });
        match next {
            Some(ji) => {
                let j = pending.remove(ji);
                let new = if bound.contains(&j.left.alias.as_str()) {
                    j.right.alias.clone()
                } else {
                    j.left.alias.clone()
                };
                let _ = writeln!(
                    out,
                    "  equi-join on {}.{} = {}.{} (index probe into {new})",
                    j.left.alias, j.left.attribute, j.right.alias, j.right.attribute,
                );
                remaining.retain(|t| !t.eq_ignore_ascii_case(&new));
                let idx = q
                    .from
                    .iter()
                    .position(|t| t.alias.eq_ignore_ascii_case(&new))
                    .expect("alias known");
                bound.push(q.from[idx].alias.as_str());
            }
            None => {
                let t = remaining.remove(0);
                let _ = writeln!(out, "  cartesian product with {t}");
                bound.push(t);
            }
        }
    }
    for j in &pending {
        let _ = writeln!(
            out,
            "  residual join check {}.{} = {}.{}",
            j.left.alias, j.left.attribute, j.right.alias, j.right.attribute
        );
    }
    for u in &analysis.unsupported {
        let _ = writeln!(out, "  residual filter {u}");
    }

    if !q.group_by.is_empty()
        || q.targets
            .iter()
            .any(|t| matches!(t, SelectItem::Aggregate { .. }))
    {
        let keys: Vec<String> = q.group_by.iter().map(|a| a.to_string()).collect();
        if keys.is_empty() {
            let _ = writeln!(out, "  aggregate (single group)");
        } else {
            let _ = writeln!(out, "  aggregate group by {}", keys.join(", "));
        }
    }
    if q.distinct {
        let _ = writeln!(out, "  distinct");
    }
    if !q.order_by.is_empty() {
        let keys: Vec<String> = q.order_by.iter().map(|a| a.to_string()).collect();
        let _ = writeln!(out, "  sort by {}", keys.join(", "));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use intensio_storage::domain::Domain;
    use intensio_storage::relation::Relation;
    use intensio_storage::schema::{Attribute, Schema};
    use intensio_storage::tuple;

    fn db() -> Database {
        let mut d = Database::new();
        let s1 = Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Class", Domain::char_n(4)),
        ])
        .unwrap();
        let mut sub = Relation::new("SUBMARINE", s1);
        sub.insert(tuple!["SSBN730", "0101"]).unwrap();
        d.create(sub).unwrap();
        let s2 = Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new(
                "Displacement",
                Domain::basic(intensio_storage::value::ValueType::Int),
            ),
        ])
        .unwrap();
        let mut cls = Relation::new("CLASS", s2);
        cls.insert(tuple!["0101", 16600]).unwrap();
        d.create(cls).unwrap();
        d
    }

    #[test]
    fn explains_a_join_query() {
        let d = db();
        let q = parse(
            "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000 \
             ORDER BY ID",
        )
        .unwrap();
        let plan = explain(&d, &q).unwrap();
        assert!(plan.contains("scan SUBMARINE"));
        assert!(plan.contains("[index range scan]"));
        assert!(plan.contains("equi-join on SUBMARINE.Class = CLASS.Class"));
        assert!(plan.contains("sort by ID"));
    }

    #[test]
    fn explains_aggregates_and_cartesian() {
        let d = db();
        let q = parse("SELECT COUNT(*) FROM SUBMARINE, CLASS").unwrap();
        let plan = explain(&d, &q).unwrap();
        assert!(plan.contains("cartesian product"));
        assert!(plan.contains("aggregate (single group)"));
        let q2 = parse("SELECT Class, COUNT(*) FROM SUBMARINE GROUP BY Class").unwrap();
        let plan2 = explain(&d, &q2).unwrap();
        assert!(plan2.contains("aggregate group by Class"));
    }
}
