//! Abstract syntax for the SQL subset the paper's examples use
//! (`SELECT`/`FROM`/`WHERE` with conjunctive conditions, equi-joins, and
//! `ORDER BY`), extended with `DISTINCT`, `OR`/`NOT`, and parentheses.

use intensio_storage::expr::{AttrRef, Expr};
use intensio_storage::ops::Aggregate;

/// A relation in the `FROM` list with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// The relation name.
    pub name: String,
    /// The alias (defaults to the relation name).
    pub alias: String,
}

impl TableRef {
    /// A table reference with the alias defaulted to the name.
    pub fn named(name: impl Into<String>) -> TableRef {
        let name = name.into();
        TableRef {
            alias: name.clone(),
            name,
        }
    }
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — every attribute of every FROM relation.
    Star,
    /// An attribute reference with an optional output name
    /// (`SUBMARINE.NAME` or `NAME AS ShipName`).
    Attr {
        /// The referenced attribute.
        attr: AttrRef,
        /// Output column name override (`AS`).
        output: Option<String>,
    },
    /// An aggregate over the (grouped) result: `COUNT(*)`,
    /// `MIN(Displacement)`, ...
    Aggregate {
        /// The aggregate function.
        func: Aggregate,
        /// The aggregated attribute; `None` for `COUNT(*)`.
        arg: Option<AttrRef>,
        /// Output column name override (`AS`).
        output: Option<String>,
    },
}

/// A parsed `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectQuery {
    /// Whether `DISTINCT` was given.
    pub distinct: bool,
    /// The select list.
    pub targets: Vec<SelectItem>,
    /// The FROM relations.
    pub from: Vec<TableRef>,
    /// The WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY attributes.
    pub group_by: Vec<AttrRef>,
    /// ORDER BY attributes (ascending).
    pub order_by: Vec<AttrRef>,
}
