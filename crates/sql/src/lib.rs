//! # intensio-sql
//!
//! The SQL front end of the intensional query processing system: the
//! paper's worked examples (§6) pose queries in SQL over the ship test
//! bed. This crate provides:
//!
//! * a parser for the `SELECT`/`FROM`/`WHERE [AND ...]`/`ORDER BY`
//!   subset those examples use (plus `DISTINCT`, `OR`, `NOT`, aliases);
//! * an executor with restriction push-down and hash equi-joins that
//!   computes the *extensional* answer;
//! * [`analyze`] — extraction of the query's restrictions and join
//!   structure, which the inference processor consumes to derive the
//!   *intensional* answer.
//!
//! ```
//! use intensio_sql::query;
//! use intensio_storage::prelude::*;
//! use intensio_storage::tuple;
//!
//! let mut db = Database::new();
//! let schema = Schema::new(vec![
//!     Attribute::key("Class", Domain::char_n(4)),
//!     Attribute::new("Displacement", Domain::basic(ValueType::Int)),
//! ]).unwrap();
//! let mut class = Relation::new("CLASS", schema);
//! class.insert(tuple!["0101", 16600]).unwrap();
//! class.insert(tuple!["0215", 2145]).unwrap();
//! db.create(class).unwrap();
//!
//! let r = query(&db, "SELECT Class FROM CLASS WHERE Displacement > 8000").unwrap();
//! assert_eq!(r.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod ast;
pub mod exec;
pub mod explain;
pub mod parser;

pub use analyze::{analyze, BoundAttr, JoinCond, QueryAnalysis, Restriction};
pub use ast::{SelectItem, SelectQuery, TableRef};
pub use exec::{execute, query, SqlError};
pub use explain::explain;
pub use parser::{parse, SqlParseError};
