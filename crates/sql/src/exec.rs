//! SQL execution: restriction push-down, greedy hash equi-joins, residual
//! predicate evaluation, projection, and ordering.

use crate::ast::{SelectItem, SelectQuery, TableRef};
use crate::parser::{parse, SqlParseError};
use intensio_storage::catalog::Database;
use intensio_storage::domain::Domain;
use intensio_storage::error::StorageError;
use intensio_storage::expr::{AttrRef, CmpOp, Env, Expr};
use intensio_storage::ops;
use intensio_storage::relation::Relation;
use intensio_storage::schema::{Attribute, Schema};
use intensio_storage::tuple::Tuple;
use intensio_storage::value::ValueKey;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// An error from parsing or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Parse failure.
    Parse(SqlParseError),
    /// Storage-engine failure.
    Storage(StorageError),
    /// Semantic failure (unknown alias, ambiguous attribute, ...).
    Semantic(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(e) => write!(f, "{e}"),
            SqlError::Storage(e) => write!(f, "{e}"),
            SqlError::Semantic(m) => write!(f, "SQL error: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<SqlParseError> for SqlError {
    fn from(e: SqlParseError) -> Self {
        SqlError::Parse(e)
    }
}

impl From<StorageError> for SqlError {
    fn from(e: StorageError) -> Self {
        SqlError::Storage(e)
    }
}

/// Parse and execute a query against a database.
pub fn query(db: &Database, src: &str) -> Result<Relation, SqlError> {
    execute(db, &parse(src)?)
}

/// A resolved attribute: which FROM entry and which column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Resolved {
    table: usize,
    column: usize,
}

/// Resolution context: alias → index, schema per index.
struct Ctx<'a> {
    from: &'a [TableRef],
    schemas: Vec<&'a Schema>,
}

impl<'a> Ctx<'a> {
    fn resolve(&self, attr: &AttrRef) -> Result<Resolved, SqlError> {
        match &attr.qualifier {
            Some(q) => {
                let table = self
                    .from
                    .iter()
                    .position(|t| t.alias.eq_ignore_ascii_case(q))
                    .ok_or_else(|| SqlError::Semantic(format!("unknown relation or alias: {q}")))?;
                let column = self.schemas[table].index_of(&attr.name).ok_or_else(|| {
                    SqlError::Semantic(format!(
                        "relation {} has no attribute {}",
                        self.from[table].name, attr.name
                    ))
                })?;
                Ok(Resolved { table, column })
            }
            None => {
                let mut found = None;
                for (i, s) in self.schemas.iter().enumerate() {
                    if let Some(c) = s.index_of(&attr.name) {
                        if found.is_some() {
                            return Err(SqlError::Semantic(format!(
                                "ambiguous attribute: {}",
                                attr.name
                            )));
                        }
                        found = Some(Resolved {
                            table: i,
                            column: c,
                        });
                    }
                }
                found.ok_or_else(|| SqlError::Semantic(format!("unknown attribute: {}", attr.name)))
            }
        }
    }
}

/// The aliases referenced by an expression, as table indices.
fn tables_of(e: &Expr, ctx: &Ctx<'_>) -> Result<HashSet<usize>, SqlError> {
    let mut out = HashSet::new();
    for a in e.attr_refs() {
        out.insert(ctx.resolve(a)?.table);
    }
    Ok(out)
}

/// Execute a parsed query.
pub fn execute(db: &Database, q: &SelectQuery) -> Result<Relation, SqlError> {
    if q.from.is_empty() {
        return Err(SqlError::Semantic("FROM list is empty".to_string()));
    }
    // Duplicate alias check.
    for (i, t) in q.from.iter().enumerate() {
        if q.from[..i]
            .iter()
            .any(|u| u.alias.eq_ignore_ascii_case(&t.alias))
        {
            return Err(SqlError::Semantic(format!("duplicate alias: {}", t.alias)));
        }
    }

    let base: Vec<&Relation> = q
        .from
        .iter()
        .map(|t| db.get(&t.name))
        .collect::<Result<_, _>>()?;
    let ctx = Ctx {
        from: &q.from,
        schemas: base.iter().map(|r| r.schema()).collect(),
    };

    // Classify WHERE conjuncts.
    let mut restrictions: Vec<Vec<&Expr>> = vec![Vec::new(); q.from.len()];
    let mut joins: Vec<(Resolved, Resolved, &Expr)> = Vec::new();
    let mut residual: Vec<&Expr> = Vec::new();
    if let Some(w) = &q.where_clause {
        for c in w.conjuncts() {
            let tables = tables_of(c, &ctx)?;
            match tables.len() {
                0 | 1 => {
                    let t = tables.into_iter().next().unwrap_or(0);
                    restrictions[t].push(c);
                }
                2 => {
                    if let Expr::Cmp {
                        op: CmpOp::Eq,
                        left,
                        right,
                    } = c
                    {
                        if let (Expr::Attr(a), Expr::Attr(b)) = (&**left, &**right) {
                            let ra = ctx.resolve(a)?;
                            let rb = ctx.resolve(b)?;
                            if ra.table != rb.table {
                                joins.push((ra, rb, c));
                                continue;
                            }
                        }
                    }
                    residual.push(c);
                }
                _ => residual.push(c),
            }
        }
    }

    // Push restrictions down onto each base relation.
    let mut filtered: Vec<Relation> = Vec::with_capacity(base.len());
    for (i, rel) in base.iter().enumerate() {
        if restrictions[i].is_empty() {
            filtered.push((*rel).clone());
        } else {
            let pred = Expr::conjoin(restrictions[i].iter().map(|e| (*e).clone()).collect())
                .expect("non-empty");
            filtered.push(ops::select_indexed(rel, &q.from[i].alias, &pred)?);
        }
    }

    // Greedy join: rows are vectors of one tuple per joined table.
    let mut bound: Vec<usize> = vec![0]; // table indices joined so far
    let mut rows: Vec<Vec<Tuple>> = filtered[0].iter().map(|t| vec![t.clone()]).collect();
    let mut remaining: Vec<usize> = (1..q.from.len()).collect();
    let mut pending_joins: Vec<(Resolved, Resolved)> =
        joins.iter().map(|(a, b, _)| (*a, *b)).collect();

    while !remaining.is_empty() {
        // Prefer a table connected to the bound set by an equi-join.
        let next_info = pending_joins.iter().enumerate().find_map(|(ji, (a, b))| {
            let (inb, outb) = (bound.contains(&a.table), bound.contains(&b.table));
            match (inb, outb) {
                (true, false) => Some((ji, *a, *b)),
                (false, true) => Some((ji, *b, *a)),
                _ => None,
            }
        });
        let (new_rows, new_table) = match next_info {
            Some((ji, bound_side, new_side)) => {
                pending_joins.remove(ji);
                let pos_in_bound = bound
                    .iter()
                    .position(|&t| t == bound_side.table)
                    .expect("bound side is bound");
                // Hash the new side.
                let mut table: HashMap<ValueKey, Vec<&Tuple>> = HashMap::new();
                for t in filtered[new_side.table].iter() {
                    let v = t.get(new_side.column);
                    if !v.is_null() {
                        table.entry(ValueKey(v.clone())).or_default().push(t);
                    }
                }
                let mut out = Vec::new();
                for row in &rows {
                    let v = row[pos_in_bound].get(bound_side.column);
                    if v.is_null() {
                        continue;
                    }
                    if let Some(matches) = table.get(&ValueKey(v.clone())) {
                        for m in matches {
                            let mut r = row.clone();
                            r.push((*m).clone());
                            out.push(r);
                        }
                    }
                }
                (out, new_side.table)
            }
            None => {
                // No connecting join: cartesian with the next table.
                let t = remaining[0];
                let mut out = Vec::new();
                for row in &rows {
                    for m in filtered[t].iter() {
                        let mut r = row.clone();
                        r.push(m.clone());
                        out.push(r);
                    }
                }
                (out, t)
            }
        };
        rows = new_rows;
        bound.push(new_table);
        remaining.retain(|&t| t != new_table);
    }

    // Join conditions not consumed by the greedy pass (redundant edges
    // between already-joined tables) and residual predicates apply now.
    let mut post: Vec<&Expr> = residual;
    for (a, b, e) in joins.iter() {
        if pending_joins.contains(&(*a, *b)) {
            post.push(e);
        }
    }

    if !post.is_empty() {
        let order = bound.clone();
        rows.retain(|row| {
            let mut env = Env::empty();
            for (pos, &t) in order.iter().enumerate() {
                env.push(&q.from[t].alias, ctx.schemas[t], &row[pos]);
            }
            post.iter().all(|e| e.eval_bool(&env).unwrap_or(false))
        });
    }

    // Aggregate path: any aggregate item or a GROUP BY clause routes
    // through grouped projection.
    let table_pos: HashMap<usize, usize> =
        bound.iter().enumerate().map(|(pos, &t)| (t, pos)).collect();
    let has_aggregate = !q.group_by.is_empty()
        || q.targets
            .iter()
            .any(|t| matches!(t, SelectItem::Aggregate { .. }));
    if has_aggregate {
        return project_grouped(q, &ctx, &rows, &table_pos);
    }

    // Projection.
    let mut out_cols: Vec<(String, Resolved)> = Vec::new();
    for item in &q.targets {
        match item {
            SelectItem::Star => {
                for (ti, s) in ctx.schemas.iter().enumerate() {
                    for (ci, a) in s.attributes().iter().enumerate() {
                        out_cols.push((
                            a.name().to_string(),
                            Resolved {
                                table: ti,
                                column: ci,
                            },
                        ));
                    }
                }
            }
            SelectItem::Attr { attr, output } => {
                let r = ctx.resolve(attr)?;
                let name = output.clone().unwrap_or_else(|| attr.name.clone());
                out_cols.push((name, r));
            }
            SelectItem::Aggregate { .. } => unreachable!("handled by project_grouped"),
        }
    }
    // Disambiguate duplicate output names with alias prefixes.
    let mut names: Vec<String> = Vec::with_capacity(out_cols.len());
    for (i, (name, r)) in out_cols.iter().enumerate() {
        let dup = out_cols
            .iter()
            .enumerate()
            .any(|(j, (n, _))| j != i && n.eq_ignore_ascii_case(name));
        if dup {
            names.push(format!("{}.{}", q.from[r.table].alias, name));
        } else {
            names.push(name.clone());
        }
    }

    let mut attrs: Vec<Attribute> = Vec::with_capacity(out_cols.len());
    for ((_, r), name) in out_cols.iter().zip(&names) {
        let src_attr = ctx.schemas[r.table].attr(r.column);
        attrs.push(Attribute::new(name.clone(), src_attr.domain().clone()));
    }
    let schema = Schema::new(attrs).map_err(SqlError::from)?;
    let mut result = Relation::new("result", schema);

    for row in &rows {
        let vals = out_cols
            .iter()
            .map(|(_, r)| row[table_pos[&r.table]].get(r.column).clone())
            .collect();
        result.insert(Tuple::new(vals))?;
    }

    let mut result = if q.distinct {
        ops::unique(&result)
    } else {
        result
    };
    result.set_name("result");

    if !q.order_by.is_empty() {
        // Order-by attributes are matched against output column names
        // first, then against source attributes.
        let mut keys: Vec<String> = Vec::new();
        for a in &q.order_by {
            if result.schema().index_of(&a.name).is_some() {
                keys.push(a.name.clone());
            } else {
                let r = ctx.resolve(a)?;
                let prefixed = format!("{}.{}", q.from[r.table].alias, a.name);
                if result.schema().index_of(&prefixed).is_some() {
                    keys.push(prefixed);
                } else {
                    return Err(SqlError::Semantic(format!(
                        "ORDER BY attribute {} is not in the select list",
                        a
                    )));
                }
            }
        }
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        result.sort_by_names(&refs)?;
    }
    Ok(result)
}

/// Grouped projection for aggregate queries: group the joined rows by
/// the GROUP BY attributes and compute one output row per group.
fn project_grouped(
    q: &SelectQuery,
    ctx: &Ctx<'_>,
    rows: &[Vec<Tuple>],
    table_pos: &HashMap<usize, usize>,
) -> Result<Relation, SqlError> {
    use intensio_storage::value::Value;

    // Resolve the grouping attributes.
    let mut group_cols: Vec<(String, Resolved)> = Vec::new();
    for a in &q.group_by {
        group_cols.push((a.name.clone(), ctx.resolve(a)?));
    }
    // Validate the select list: plain attributes must be grouped; `*`
    // is not meaningful under aggregation.
    for item in &q.targets {
        match item {
            SelectItem::Star => {
                return Err(SqlError::Semantic(
                    "`*` cannot be combined with aggregates".to_string(),
                ))
            }
            SelectItem::Attr { attr, .. } => {
                let r = ctx.resolve(attr)?;
                if !group_cols.iter().any(|(_, g)| *g == r) {
                    return Err(SqlError::Semantic(format!(
                        "attribute {attr} must appear in GROUP BY"
                    )));
                }
            }
            SelectItem::Aggregate { .. } => {}
        }
    }

    // Group rows.
    let mut groups: std::collections::BTreeMap<
        Vec<intensio_storage::value::ValueKey>,
        Vec<&Vec<Tuple>>,
    > = std::collections::BTreeMap::new();
    for row in rows {
        let key: Vec<intensio_storage::value::ValueKey> = group_cols
            .iter()
            .map(|(_, r)| {
                intensio_storage::value::ValueKey(row[table_pos[&r.table]].get(r.column).clone())
            })
            .collect();
        groups.entry(key).or_default().push(row);
    }

    // Output values per group, in target order.
    let mut out_rows: Vec<Vec<Value>> = Vec::new();
    let mut emit = |members: &[&Vec<Tuple>],
                    key: &[intensio_storage::value::ValueKey]|
     -> Result<(), SqlError> {
        let mut vals = Vec::with_capacity(q.targets.len());
        for item in &q.targets {
            match item {
                SelectItem::Star => unreachable!("validated"),
                SelectItem::Attr { attr, .. } => {
                    let r = ctx.resolve(attr)?;
                    let pos = group_cols
                        .iter()
                        .position(|(_, g)| *g == r)
                        .expect("validated");
                    vals.push(key[pos].0.clone());
                }
                SelectItem::Aggregate { func, arg, .. } => {
                    let column: Vec<Value> = match arg {
                        None => vec![Value::Int(1); members.len()],
                        Some(a) => {
                            let r = ctx.resolve(a)?;
                            members
                                .iter()
                                .map(|row| row[table_pos[&r.table]].get(r.column).clone())
                                .collect()
                        }
                    };
                    vals.push(ops::aggregate(*func, &column).map_err(SqlError::from)?);
                }
            }
        }
        out_rows.push(vals);
        Ok(())
    };
    for (key, members) in &groups {
        emit(members, key)?;
    }
    // Global aggregate over an empty input still yields one row.
    if groups.is_empty() && q.group_by.is_empty() {
        emit(&[], &[])?;
    }

    // Output column names.
    let mut names: Vec<String> = Vec::with_capacity(q.targets.len());
    for item in &q.targets {
        let name = match item {
            SelectItem::Star => unreachable!("validated"),
            SelectItem::Attr { attr, output } => {
                output.clone().unwrap_or_else(|| attr.name.clone())
            }
            SelectItem::Aggregate { func, arg, output } => output.clone().unwrap_or_else(|| {
                let f = match func {
                    ops::Aggregate::Count => "count",
                    ops::Aggregate::Sum => "sum",
                    ops::Aggregate::Min => "min",
                    ops::Aggregate::Max => "max",
                    ops::Aggregate::Avg => "avg",
                };
                match arg {
                    None => f.to_string(),
                    Some(a) => format!("{f}_{}", a.name),
                }
            }),
        };
        names.push(name);
    }

    // Schema: grouped attributes keep their domains; aggregates are
    // typed from computed values.
    let mut attrs: Vec<Attribute> = Vec::with_capacity(q.targets.len());
    for (i, (item, name)) in q.targets.iter().zip(&names).enumerate() {
        let domain = match item {
            SelectItem::Attr { attr, .. } => {
                let r = ctx.resolve(attr)?;
                ctx.schemas[r.table].attr(r.column).domain().clone()
            }
            _ => {
                let ty = out_rows
                    .iter()
                    .find_map(|row| row[i].value_type())
                    .unwrap_or(intensio_storage::value::ValueType::Int);
                Domain::basic(ty)
            }
        };
        attrs.push(Attribute::new(name.clone(), domain));
    }
    let schema = Schema::new(attrs).map_err(SqlError::from)?;
    let mut result = Relation::new("result", schema);
    for vals in out_rows {
        result.insert(Tuple::new(vals))?;
    }

    if !q.order_by.is_empty() {
        let mut keys: Vec<String> = Vec::new();
        for a in &q.order_by {
            if result.schema().index_of(&a.name).is_some() {
                keys.push(a.name.clone());
            } else {
                return Err(SqlError::Semantic(format!(
                    "ORDER BY attribute {a} is not in the select list"
                )));
            }
        }
        let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        result.sort_by_names(&refs)?;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_storage::domain::Domain;
    use intensio_storage::tuple;
    use intensio_storage::value::{Value, ValueType};

    fn ship_db() -> Database {
        let mut db = Database::new();
        let sub_schema = Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Name", Domain::char_n(20)),
            Attribute::new("Class", Domain::char_n(4)),
        ])
        .unwrap();
        let mut sub = Relation::new("SUBMARINE", sub_schema);
        sub.insert_all([
            tuple!["SSBN730", "Rhode Island", "0101"],
            tuple!["SSBN130", "Typhoon", "1301"],
            tuple!["SSN582", "Bonefish", "0215"],
            tuple!["SSN671", "Narwhal", "0203"],
        ])
        .unwrap();
        db.create(sub).unwrap();

        let cls_schema = Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new("ClassName", Domain::char_n(20)),
            Attribute::new("Type", Domain::char_n(4)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut cls = Relation::new("CLASS", cls_schema);
        cls.insert_all([
            tuple!["0101", "Ohio", "SSBN", 16600],
            tuple!["1301", "Typhoon", "SSBN", 30000],
            tuple!["0215", "Barbel", "SSN", 2145],
            tuple!["0203", "Narwhal", "SSN", 4450],
        ])
        .unwrap();
        db.create(cls).unwrap();

        let inst_schema = Schema::new(vec![
            Attribute::new("Ship", Domain::char_n(7)),
            Attribute::new("Sonar", Domain::char_n(8)),
        ])
        .unwrap();
        let mut inst = Relation::new("INSTALL", inst_schema);
        inst.insert_all([
            tuple!["SSBN730", "BQQ-5"],
            tuple!["SSN582", "BQS-04"],
            tuple!["SSN671", "BQQ-2"],
        ])
        .unwrap();
        db.create(inst).unwrap();
        db
    }

    #[test]
    fn example1_join_and_restriction() {
        let db = ship_db();
        let r = query(
            &db,
            "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
             FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        let ids: Vec<&str> = r.iter().map(|t| t.get(0).as_str().unwrap()).collect();
        assert!(ids.contains(&"SSBN730"));
        assert!(ids.contains(&"SSBN130"));
        // Output columns keep the queried attribute names.
        assert!(r.schema().index_of("Class").is_some());
        assert!(r.schema().index_of("Type").is_some());

        // When the same output name occurs twice, alias prefixes
        // disambiguate.
        let r2 = query(
            &db,
            "SELECT SUBMARINE.CLASS, CLASS.CLASS FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS",
        )
        .unwrap();
        assert!(r2.schema().index_of("SUBMARINE.Class").is_some());
        assert!(r2.schema().index_of("CLASS.Class").is_some());
    }

    #[test]
    fn three_way_join_example3() {
        let db = ship_db();
        let r = query(
            &db,
            "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
             FROM SUBMARINE, CLASS, INSTALL \
             WHERE SUBMARINE.CLASS = CLASS.CLASS \
             AND SUBMARINE.ID = INSTALL.SHIP \
             AND INSTALL.SONAR = \"BQS-04\"",
        )
        .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples()[0].get(0), &Value::str("Bonefish"));
    }

    #[test]
    fn star_selects_everything() {
        let db = ship_db();
        let r = query(&db, "SELECT * FROM CLASS WHERE Type = 'SSN'").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.schema().arity(), 4);
    }

    #[test]
    fn distinct_and_order_by() {
        let db = ship_db();
        let r = query(&db, "SELECT DISTINCT Type FROM CLASS ORDER BY Type").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0].get(0), &Value::str("SSBN"));
    }

    #[test]
    fn aliases_work() {
        let db = ship_db();
        let r = query(
            &db,
            "SELECT s.Name FROM SUBMARINE s, CLASS c \
             WHERE s.Class = c.Class AND c.Type = 'SSBN' ORDER BY Name",
        )
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0].get(0), &Value::str("Rhode Island"));
    }

    #[test]
    fn cartesian_when_no_join() {
        let db = ship_db();
        let r = query(&db, "SELECT s.Id, c.Class FROM SUBMARINE s, CLASS c").unwrap();
        assert_eq!(r.len(), 16);
    }

    #[test]
    fn semantic_errors() {
        let db = ship_db();
        assert!(matches!(
            query(&db, "SELECT Nope FROM CLASS"),
            Err(SqlError::Semantic(_))
        ));
        assert!(matches!(
            query(&db, "SELECT x.Class FROM CLASS"),
            Err(SqlError::Semantic(_))
        ));
        assert!(matches!(
            query(&db, "SELECT Class FROM SUBMARINE, CLASS"),
            Err(SqlError::Semantic(_)),
        ));
        assert!(query(&db, "SELECT Id FROM MISSING").is_err());
        assert!(matches!(
            query(&db, "SELECT Id FROM SUBMARINE s, CLASS s"),
            Err(SqlError::Semantic(_))
        ));
    }

    #[test]
    fn residual_predicates_apply() {
        let db = ship_db();
        // Non-equality cross-table comparison: residual after the join.
        let r = query(
            &db,
            "SELECT s.Id FROM SUBMARINE s, CLASS c \
             WHERE s.Class = c.Class AND s.Id != c.ClassName AND c.Displacement >= 2145",
        )
        .unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn or_predicate() {
        let db = ship_db();
        let r = query(
            &db,
            "SELECT Class FROM CLASS WHERE Displacement > 20000 OR Type = 'SSN' ORDER BY Class",
        )
        .unwrap();
        assert_eq!(r.len(), 3);
    }
}
