//! Lexer and parser for the SQL subset.

use crate::ast::{SelectItem, SelectQuery, TableRef};
use intensio_storage::expr::{ArithOp, AttrRef, CmpOp, Expr};
use intensio_storage::value::Value;
use std::fmt;

/// A SQL parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlParseError {
    /// Description of the failure.
    pub message: String,
    /// Byte offset in the source.
    pub offset: usize,
}

impl fmt::Display for SqlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for SqlParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num {
        text: String,
        value: f64,
        is_int: bool,
    },
    Star,
    LParen,
    RParen,
    Comma,
    Dot,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
    Slash,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, SqlParseError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let start = i;
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '*' => {
                out.push((Tok::Star, start));
                i += 1;
            }
            '(' => {
                out.push((Tok::LParen, start));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, start));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, start));
                i += 1;
            }
            '.' => {
                out.push((Tok::Dot, start));
                i += 1;
            }
            '=' => {
                out.push((Tok::Eq, start));
                i += 1;
            }
            '+' => {
                out.push((Tok::Plus, start));
                i += 1;
            }
            '-' => {
                // `--` line comment.
                if b.get(i + 1) == Some(&b'-') {
                    while i < b.len() && b[i] != b'\n' {
                        i += 1;
                    }
                } else {
                    out.push((Tok::Minus, start));
                    i += 1;
                }
            }
            '/' => {
                out.push((Tok::Slash, start));
                i += 1;
            }
            '!' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ne, start));
                    i += 2;
                } else {
                    return Err(SqlParseError {
                        message: "expected `=` after `!`".into(),
                        offset: start,
                    });
                }
            }
            '<' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Le, start));
                    i += 2;
                } else if b.get(i + 1) == Some(&b'>') {
                    out.push((Tok::Ne, start));
                    i += 2;
                } else {
                    out.push((Tok::Lt, start));
                    i += 1;
                }
            }
            '>' => {
                if b.get(i + 1) == Some(&b'=') {
                    out.push((Tok::Ge, start));
                    i += 2;
                } else {
                    out.push((Tok::Gt, start));
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        Some(&q) if q as char == quote => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch as char);
                            i += 1;
                        }
                        None => {
                            return Err(SqlParseError {
                                message: "unterminated string".into(),
                                offset: start,
                            })
                        }
                    }
                }
                out.push((Tok::Str(s), start));
            }
            d if d.is_ascii_digit() => {
                let mut text = String::new();
                let mut is_int = true;
                while i < b.len() && (b[i] as char).is_ascii_digit() {
                    text.push(b[i] as char);
                    i += 1;
                }
                if i + 1 < b.len() && b[i] == b'.' && (b[i + 1] as char).is_ascii_digit() {
                    is_int = false;
                    text.push('.');
                    i += 1;
                    while i < b.len() && (b[i] as char).is_ascii_digit() {
                        text.push(b[i] as char);
                        i += 1;
                    }
                }
                let value: f64 = text.parse().map_err(|_| SqlParseError {
                    message: format!("bad number {text}"),
                    offset: start,
                })?;
                out.push((
                    Tok::Num {
                        text,
                        value,
                        is_int,
                    },
                    start,
                ));
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let mut s = String::new();
                while i < b.len() {
                    let ch = b[i] as char;
                    if ch.is_ascii_alphanumeric() || ch == '_' {
                        s.push(ch);
                        i += 1;
                    } else if ch == '-'
                        && i + 1 < b.len()
                        && (b[i + 1] as char).is_ascii_alphanumeric()
                        && !is_keyword(&s)
                    {
                        // Hyphenated bare constants like BQS-04.
                        s.push(ch);
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(s), start));
            }
            other => {
                return Err(SqlParseError {
                    message: format!("unexpected character {other:?}"),
                    offset: start,
                })
            }
        }
    }
    Ok(out)
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s.to_ascii_uppercase().as_str(),
        "SELECT"
            | "DISTINCT"
            | "FROM"
            | "WHERE"
            | "AND"
            | "OR"
            | "NOT"
            | "ORDER"
            | "GROUP"
            | "BY"
            | "AS"
    )
}

/// Parse a `SELECT` statement.
pub fn parse(src: &str) -> Result<SelectQuery, SqlParseError> {
    let _span = intensio_obs::Span::stage("parse.sql", intensio_obs::Stage::Parse);
    intensio_obs::inc("parse.sql");
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.select()?;
    if !p.at_end() {
        return Err(p.err("trailing input after query"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<(Tok, usize)>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn err(&self, msg: impl Into<String>) -> SqlParseError {
        SqlParseError {
            message: msg.into(),
            offset: self.tokens.get(self.pos).map(|(_, o)| *o).unwrap_or(0),
        }
    }

    fn advance(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn accept(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        match self.peek() {
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.pos += 1;
                true
            }
            _ => false,
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), SqlParseError> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, SqlParseError> {
        match self.advance() {
            Some(Tok::Ident(s)) if !is_keyword(&s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn select(&mut self) -> Result<SelectQuery, SqlParseError> {
        self.expect_kw("select")?;
        let distinct = self.accept_kw("distinct");
        let mut targets = vec![self.select_item()?];
        while self.accept(&Tok::Comma) {
            targets.push(self.select_item()?);
        }
        self.expect_kw("from")?;
        let mut from = vec![self.table_ref()?];
        while self.accept(&Tok::Comma) {
            from.push(self.table_ref()?);
        }
        let where_clause = if self.accept_kw("where") {
            Some(self.disjunction()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.accept_kw("group") {
            self.expect_kw("by")?;
            group_by.push(self.attr_ref()?);
            while self.accept(&Tok::Comma) {
                group_by.push(self.attr_ref()?);
            }
        }
        let mut order_by = Vec::new();
        if self.accept_kw("order") {
            self.expect_kw("by")?;
            order_by.push(self.attr_ref()?);
            while self.accept(&Tok::Comma) {
                order_by.push(self.attr_ref()?);
            }
        }
        Ok(SelectQuery {
            distinct,
            targets,
            from,
            where_clause,
            group_by,
            order_by,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlParseError> {
        if self.accept(&Tok::Star) {
            return Ok(SelectItem::Star);
        }
        // Aggregate function call?
        let func = match self.peek() {
            Some(Tok::Ident(s)) => match s.to_ascii_lowercase().as_str() {
                "count" => Some(intensio_storage::ops::Aggregate::Count),
                "sum" => Some(intensio_storage::ops::Aggregate::Sum),
                "avg" => Some(intensio_storage::ops::Aggregate::Avg),
                "min" => Some(intensio_storage::ops::Aggregate::Min),
                "max" => Some(intensio_storage::ops::Aggregate::Max),
                _ => None,
            },
            _ => None,
        };
        if let Some(func) = func {
            if self.tokens.get(self.pos + 1).map(|(t, _)| t) == Some(&Tok::LParen) {
                self.pos += 2;
                let arg = if self.accept(&Tok::Star) {
                    None
                } else {
                    Some(self.attr_ref()?)
                };
                if !self.accept(&Tok::RParen) {
                    return Err(self.err("expected `)` after aggregate argument"));
                }
                let output = if self.accept_kw("as") {
                    Some(self.ident()?)
                } else {
                    None
                };
                return Ok(SelectItem::Aggregate { func, arg, output });
            }
        }
        let attr = self.attr_ref()?;
        let output = if self.accept_kw("as") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Attr { attr, output })
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlParseError> {
        let name = self.ident()?;
        // Optional alias: a following non-keyword identifier.
        let alias = match self.peek() {
            Some(Tok::Ident(s)) if !is_keyword(s) => {
                let a = s.clone();
                self.pos += 1;
                a
            }
            _ => name.clone(),
        };
        Ok(TableRef { name, alias })
    }

    fn attr_ref(&mut self) -> Result<AttrRef, SqlParseError> {
        let first = self.ident()?;
        if self.accept(&Tok::Dot) {
            let attr = self.ident()?;
            Ok(AttrRef::qualified(first, attr))
        } else {
            Ok(AttrRef::bare(first))
        }
    }

    // WHERE grammar: OR > AND > NOT > comparison.
    fn disjunction(&mut self) -> Result<Expr, SqlParseError> {
        let mut left = self.conjunction()?;
        while self.accept_kw("or") {
            let right = self.conjunction()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn conjunction(&mut self) -> Result<Expr, SqlParseError> {
        let mut left = self.negation()?;
        while self.accept_kw("and") {
            let right = self.negation()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn negation(&mut self) -> Result<Expr, SqlParseError> {
        if self.accept_kw("not") {
            return Ok(Expr::Not(Box::new(self.negation()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, SqlParseError> {
        if self.peek() == Some(&Tok::LParen) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(inner) = self.disjunction() {
                if self.accept(&Tok::RParen) && self.peek_cmp().is_none() {
                    return Ok(inner);
                }
            }
            self.pos = save;
        }
        let left = self.additive()?;
        let op = self
            .next_cmp()
            .ok_or_else(|| self.err("expected comparison operator"))?;
        let right = self.additive()?;
        Ok(Expr::Cmp {
            op,
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    fn peek_cmp(&self) -> Option<CmpOp> {
        match self.peek() {
            Some(Tok::Eq) => Some(CmpOp::Eq),
            Some(Tok::Ne) => Some(CmpOp::Ne),
            Some(Tok::Lt) => Some(CmpOp::Lt),
            Some(Tok::Le) => Some(CmpOp::Le),
            Some(Tok::Gt) => Some(CmpOp::Gt),
            Some(Tok::Ge) => Some(CmpOp::Ge),
            _ => None,
        }
    }

    fn next_cmp(&mut self) -> Option<CmpOp> {
        let op = self.peek_cmp()?;
        self.pos += 1;
        Some(op)
    }

    fn additive(&mut self) -> Result<Expr, SqlParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => ArithOp::Add,
                Some(Tok::Minus) => ArithOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlParseError> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => ArithOp::Mul,
                Some(Tok::Slash) => ArithOp::Div,
                _ => break,
            };
            self.pos += 1;
            let right = self.primary()?;
            left = Expr::Arith {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<Expr, SqlParseError> {
        if self.accept(&Tok::Minus) {
            // Unary minus: negate the operand.
            let inner = self.primary()?;
            return Ok(match inner {
                Expr::Const(Value::Int(v)) => Expr::Const(Value::Int(-v)),
                Expr::Const(Value::Real(v)) => Expr::Const(Value::Real(-v)),
                other => Expr::Arith {
                    op: ArithOp::Sub,
                    left: Box::new(Expr::Const(Value::Int(0))),
                    right: Box::new(other),
                },
            });
        }
        match self.advance() {
            Some(Tok::Num {
                text,
                value,
                is_int,
            }) => Ok(Expr::Const(num_value(&text, value, is_int))),
            Some(Tok::Str(s)) => Ok(Expr::Const(Value::Str(s))),
            Some(Tok::Ident(first)) if !is_keyword(&first) => {
                if self.accept(&Tok::Dot) {
                    let attr = self.ident()?;
                    Ok(Expr::Attr(AttrRef::qualified(first, attr)))
                } else {
                    Ok(Expr::Attr(AttrRef::bare(first)))
                }
            }
            Some(Tok::LParen) => {
                let inner = self.additive()?;
                if !self.accept(&Tok::RParen) {
                    return Err(self.err("expected `)`"));
                }
                Ok(inner)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

fn num_value(text: &str, value: f64, is_int: bool) -> Value {
    if is_int {
        if text.len() > 1 && text.starts_with('0') {
            Value::Str(text.to_string())
        } else {
            Value::Int(value as i64)
        }
    } else {
        Value::Real(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example1() {
        let q = parse(
            "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
             FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS \
             AND CLASS.DISPLACEMENT > 8000",
        )
        .unwrap();
        assert_eq!(q.targets.len(), 4);
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[0], TableRef::named("SUBMARINE"));
        let w = q.where_clause.unwrap();
        assert_eq!(w.conjuncts().len(), 2);
    }

    #[test]
    fn parses_paper_example3() {
        let q = parse(
            "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
             FROM SUBMARINE, CLASS, INSTALL \
             WHERE SUBMARINE.CLASS = CLASS.CLASS \
             AND SUBMARINE.ID = INSTALL.SHIP \
             AND INSTALL.SONAR = \"BQS-04\"",
        )
        .unwrap();
        assert_eq!(q.from.len(), 3);
        let w = q.where_clause.unwrap();
        let cs = w.conjuncts();
        assert_eq!(cs.len(), 3);
        match cs[2] {
            Expr::Cmp { right, .. } => {
                assert_eq!(**right, Expr::Const(Value::str("BQS-04")));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn star_and_aliases() {
        let q = parse("SELECT * FROM CLASS c WHERE c.Type = 'SSN' ORDER BY c.Class").unwrap();
        assert_eq!(q.targets, vec![SelectItem::Star]);
        assert_eq!(q.from[0].alias, "c");
        assert_eq!(q.order_by.len(), 1);
    }

    #[test]
    fn distinct_and_as() {
        let q = parse("SELECT DISTINCT Type AS ShipType FROM CLASS").unwrap();
        assert!(q.distinct);
        match &q.targets[0] {
            SelectItem::Attr { output, .. } => assert_eq!(output.as_deref(), Some("ShipType")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn single_quoted_strings() {
        let q = parse("SELECT Name FROM S WHERE Type = 'SSBN'").unwrap();
        let w = q.where_clause.unwrap();
        match w {
            Expr::Cmp { right, .. } => assert_eq!(*right, Expr::Const(Value::str("SSBN"))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn or_not_parens() {
        let q = parse("SELECT A FROM T WHERE (A = 1 OR B = 2) AND NOT C = 3").unwrap();
        let w = q.where_clause.unwrap();
        match w {
            Expr::And(l, r) => {
                assert!(matches!(*l, Expr::Or(_, _)));
                assert!(matches!(*r, Expr::Not(_)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn leading_zero_class_codes() {
        let q = parse("SELECT A FROM T WHERE Class = 0101").unwrap();
        match q.where_clause.unwrap() {
            Expr::Cmp { right, .. } => assert_eq!(*right, Expr::Const(Value::str("0101"))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ne_spellings() {
        for src in [
            "SELECT A FROM T WHERE A != 1",
            "SELECT A FROM T WHERE A <> 1",
        ] {
            let q = parse(src).unwrap();
            assert!(matches!(
                q.where_clause.unwrap(),
                Expr::Cmp { op: CmpOp::Ne, .. }
            ));
        }
    }

    #[test]
    fn missing_from_rejected() {
        assert!(parse("SELECT A WHERE A = 1").is_err());
        assert!(parse("SELECT FROM T").is_err());
        assert!(parse("SELECT A FROM T garbage extra +").is_err());
    }

    #[test]
    fn line_comments_skipped() {
        let q = parse("SELECT A -- the attribute\nFROM T").unwrap();
        assert_eq!(q.from[0].name, "T");
    }
}
