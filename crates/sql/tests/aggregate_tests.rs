//! SQL aggregates and GROUP BY.

use intensio_sql::query;
use intensio_storage::prelude::*;
use intensio_storage::tuple;

fn db() -> Database {
    let schema = Schema::new(vec![
        Attribute::key("Class", Domain::char_n(4)),
        Attribute::new("Type", Domain::char_n(4)),
        Attribute::new("Displacement", Domain::basic(ValueType::Int)),
    ])
    .unwrap();
    let mut r = Relation::new("CLASS", schema);
    r.insert_all([
        tuple!["0101", "SSBN", 16600],
        tuple!["0102", "SSBN", 7250],
        tuple!["0201", "SSN", 6000],
        tuple!["0215", "SSN", 2145],
        tuple!["1301", "SSBN", 30000],
    ])
    .unwrap();
    let mut d = Database::new();
    d.create(r).unwrap();
    d
}

#[test]
fn count_star() {
    let d = db();
    let r = query(&d, "SELECT COUNT(*) FROM CLASS").unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.tuples()[0].get(0), &Value::Int(5));
    assert_eq!(r.schema().attr(0).name(), "count");
}

#[test]
fn group_by_reproduces_table1_bands() {
    let d = db();
    let r = query(
        &d,
        "SELECT Type, MIN(Displacement) AS lo, MAX(Displacement) AS hi \
         FROM CLASS GROUP BY Type ORDER BY Type",
    )
    .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.tuples()[0], tuple!["SSBN", 7250, 30000]);
    assert_eq!(r.tuples()[1], tuple!["SSN", 2145, 6000]);
}

#[test]
fn aggregates_with_where() {
    let d = db();
    let r = query(
        &d,
        "SELECT COUNT(Class), AVG(Displacement) FROM CLASS WHERE Type = 'SSBN'",
    )
    .unwrap();
    let t = &r.tuples()[0];
    assert_eq!(t.get(0), &Value::Int(3));
    assert_eq!(t.get(1), &Value::Real((16600.0 + 7250.0 + 30000.0) / 3.0));
}

#[test]
fn empty_global_aggregate_yields_one_row() {
    let d = db();
    let r = query(
        &d,
        "SELECT COUNT(*), MIN(Displacement) FROM CLASS WHERE Displacement > 99999",
    )
    .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.tuples()[0].get(0), &Value::Int(0));
    assert!(r.tuples()[0].get(1).is_null());
}

#[test]
fn empty_grouped_aggregate_yields_no_rows() {
    let d = db();
    let r = query(
        &d,
        "SELECT Type, COUNT(*) FROM CLASS WHERE Displacement > 99999 GROUP BY Type",
    )
    .unwrap();
    assert_eq!(r.len(), 0);
}

#[test]
fn ungrouped_attribute_rejected() {
    let d = db();
    assert!(query(&d, "SELECT Class, COUNT(*) FROM CLASS GROUP BY Type").is_err());
    assert!(query(&d, "SELECT *, COUNT(*) FROM CLASS").is_err());
}

#[test]
fn aggregate_over_join() {
    let mut d = db();
    let schema = Schema::new(vec![
        Attribute::key("Id", Domain::char_n(7)),
        Attribute::new("Class", Domain::char_n(4)),
    ])
    .unwrap();
    let mut sub = Relation::new("SUBMARINE", schema);
    sub.insert_all([
        tuple!["SSBN730", "0101"],
        tuple!["SSBN130", "1301"],
        tuple!["SSN582", "0215"],
    ])
    .unwrap();
    d.create(sub).unwrap();
    let r = query(
        &d,
        "SELECT CLASS.Type, COUNT(*) AS boats FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS GROUP BY CLASS.Type ORDER BY Type",
    )
    .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.tuples()[0], tuple!["SSBN", 2]);
    assert_eq!(r.tuples()[1], tuple!["SSN", 1]);
}

#[test]
fn group_by_without_aggregates_is_distinct_projection() {
    let d = db();
    let r = query(&d, "SELECT Type FROM CLASS GROUP BY Type ORDER BY Type").unwrap();
    assert_eq!(r.len(), 2);
}
