//! Robustness: the SQL parser/executor must fail cleanly, never panic,
//! and round-trip simple generated queries.

use intensio_sql::{parse, query};
use intensio_storage::prelude::*;
use intensio_storage::tuple;
use proptest::prelude::*;

fn db() -> Database {
    let schema = Schema::new(vec![
        Attribute::key("K", Domain::char_n(8)),
        Attribute::new("N", Domain::basic(ValueType::Int)),
        Attribute::new("S", Domain::char_n(8)),
    ])
    .unwrap();
    let mut r = Relation::new("T", schema);
    for i in 0..30 {
        r.insert(tuple![format!("K{i:03}"), i as i64, format!("s{}", i % 5)])
            .unwrap();
    }
    let mut d = Database::new();
    d.create(r).unwrap();
    d
}

proptest! {
    #[test]
    fn parser_never_panics(s in "[ -~\n]{0,160}") {
        let _ = parse(&s);
    }

    #[test]
    fn select_like_noise_never_panics(tail in "[ -~]{0,80}") {
        let _ = parse(&format!("SELECT {tail}"));
        let _ = parse(&format!("SELECT A FROM {tail}"));
        let _ = parse(&format!("SELECT A FROM T WHERE {tail}"));
    }

    /// Generated range queries return exactly the rows a direct scan
    /// finds.
    #[test]
    fn range_queries_match_oracle(lo in -5i64..35, hi in -5i64..35) {
        let d = db();
        let sql = format!("SELECT K FROM T WHERE N >= {lo} AND N <= {hi}");
        let got = query(&d, &sql).unwrap();
        let expect = (0..30i64).filter(|n| *n >= lo && *n <= hi).count();
        prop_assert_eq!(got.len(), expect);
    }

    /// DISTINCT over the low-cardinality column is exact.
    #[test]
    fn distinct_matches_oracle(bound in 0i64..30) {
        let d = db();
        let sql = format!("SELECT DISTINCT S FROM T WHERE N < {bound}");
        let got = query(&d, &sql).unwrap();
        let expect = (0..bound.max(0)).map(|n| n % 5).collect::<std::collections::BTreeSet<_>>();
        prop_assert_eq!(got.len(), expect.len());
    }

    /// ORDER BY yields a sorted column, whatever the predicate.
    #[test]
    fn order_by_is_sorted(m in 0i64..6) {
        let d = db();
        let sql = format!("SELECT N FROM T WHERE S = 's{m}' ORDER BY N");
        let got = query(&d, &sql).unwrap();
        let ns: Vec<i64> = got.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        let mut sorted = ns.clone();
        sorted.sort();
        prop_assert_eq!(ns, sorted);
    }
}
