//! Join executor edge cases: null keys, four-way chains, duplicates,
//! self-join via aliases.

use intensio_sql::query;
use intensio_storage::prelude::*;
use intensio_storage::tuple;
use intensio_storage::tuple::Tuple;

fn db() -> Database {
    let mut d = Database::new();

    let a = Schema::new(vec![
        Attribute::key("Id", Domain::char_n(3)),
        Attribute::new("B_ref", Domain::char_n(3)),
    ])
    .unwrap();
    let mut ra = Relation::new("A", a);
    ra.insert(tuple!["a1", "b1"]).unwrap();
    ra.insert(tuple!["a2", "b2"]).unwrap();
    ra.insert(Tuple::new(vec![Value::str("a3"), Value::Null]))
        .unwrap();
    d.create(ra).unwrap();

    let b = Schema::new(vec![
        Attribute::key("Id", Domain::char_n(3)),
        Attribute::new("C_ref", Domain::char_n(3)),
    ])
    .unwrap();
    let mut rb = Relation::new("B", b);
    rb.insert(tuple!["b1", "c1"]).unwrap();
    rb.insert(tuple!["b2", "c1"]).unwrap();
    d.create(rb).unwrap();

    let c = Schema::new(vec![
        Attribute::key("Id", Domain::char_n(3)),
        Attribute::new("D_ref", Domain::char_n(3)),
    ])
    .unwrap();
    let mut rc = Relation::new("C", c);
    rc.insert(tuple!["c1", "d1"]).unwrap();
    d.create(rc).unwrap();

    let e = Schema::new(vec![
        Attribute::key("Id", Domain::char_n(3)),
        Attribute::new("Label", Domain::char_n(8)),
    ])
    .unwrap();
    let mut rd = Relation::new("D", e);
    rd.insert(tuple!["d1", "leaf"]).unwrap();
    d.create(rd).unwrap();
    d
}

#[test]
fn null_join_keys_never_match() {
    let d = db();
    let r = query(&d, "SELECT A.Id FROM A, B WHERE A.B_ref = B.Id ORDER BY Id").unwrap();
    assert_eq!(r.len(), 2, "the null B_ref row must not join");
}

#[test]
fn four_way_chain_join() {
    let d = db();
    let r = query(
        &d,
        "SELECT A.Id, D.Label FROM A, B, C, D \
         WHERE A.B_ref = B.Id AND B.C_ref = C.Id AND C.D_ref = D.Id \
         ORDER BY Id",
    )
    .unwrap();
    assert_eq!(r.len(), 2);
    assert!(r.iter().all(|t| t.get(1) == &Value::str("leaf")));
}

#[test]
fn self_join_with_aliases() {
    let d = db();
    // Pairs of A rows sharing... nothing here, but aliases must at least
    // resolve independently.
    let r = query(
        &d,
        "SELECT x.Id, y.Id FROM A x, A y WHERE x.B_ref = y.B_ref",
    )
    .unwrap();
    // a1-a1 and a2-a2 match; the null row matches nothing (null != null).
    assert_eq!(r.len(), 2);
    // Duplicate output names got alias-prefixed.
    assert!(r.schema().index_of("x.Id").is_some());
    assert!(r.schema().index_of("y.Id").is_some());
}

#[test]
fn duplicate_join_condition_is_harmless() {
    let d = db();
    let r = query(
        &d,
        "SELECT A.Id FROM A, B \
         WHERE A.B_ref = B.Id AND B.Id = A.B_ref ORDER BY Id",
    )
    .unwrap();
    assert_eq!(r.len(), 2, "the redundant edge must not duplicate rows");
}

#[test]
fn restriction_on_joined_table_prunes_before_join() {
    let d = db();
    let r = query(
        &d,
        "SELECT A.Id FROM A, B WHERE A.B_ref = B.Id AND B.C_ref = 'c1' AND A.Id = 'a1'",
    )
    .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.tuples()[0].get(0), &Value::str("a1"));
}
