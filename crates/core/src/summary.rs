//! Aggregate responses over the type hierarchy.
//!
//! The paper positions type hierarchies as usable "to provide an
//! aggregate response to queries" ([SHUM88]) — the summarized answers
//! its introduction motivates. This module implements that companion
//! capability: given an extensional answer, produce a per-hierarchy
//! distribution ("4 ships: all SSN; by class: 0208 ×1, 0209 ×1, ...")
//! by grouping on every classifying attribute present in the answer's
//! schema.

use intensio_ker::model::KerModel;
use intensio_storage::relation::Relation;
use intensio_storage::value::{Value, ValueKey};
use std::collections::BTreeMap;
use std::fmt;

/// One group of an answer summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryGroup {
    /// The grouping value.
    pub value: Value,
    /// The subtype the value selects, if the hierarchy declares one.
    pub subtype: Option<String>,
    /// Number of answer tuples in the group.
    pub count: usize,
}

/// A summary level: the distribution of one classifying attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryLevel {
    /// The classifying attribute (as named in the answer schema).
    pub attribute: String,
    /// The groups, largest first.
    pub groups: Vec<SummaryGroup>,
}

impl SummaryLevel {
    /// Whether every answer tuple falls in a single group.
    pub fn is_uniform(&self) -> bool {
        self.groups.len() == 1
    }
}

/// An aggregate response: total count plus one level per classifying
/// attribute found in the answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerSummary {
    /// Total answer tuples.
    pub total: usize,
    /// Hierarchy levels present in the answer.
    pub levels: Vec<SummaryLevel>,
}

impl AnswerSummary {
    /// Whether any hierarchy level was found.
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }
}

impl fmt::Display for AnswerSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} answers", self.total)?;
        for level in &self.levels {
            write!(f, "  by {}: ", level.attribute)?;
            if level.is_uniform() && self.total > 0 {
                let g = &level.groups[0];
                let label = g.subtype.clone().unwrap_or_else(|| g.value.render_bare());
                writeln!(f, "all {label}")?;
                continue;
            }
            let parts: Vec<String> = level
                .groups
                .iter()
                .map(|g| {
                    let label = g.subtype.clone().unwrap_or_else(|| g.value.render_bare());
                    format!("{label} ×{}", g.count)
                })
                .collect();
            writeln!(f, "{}", parts.join(", "))?;
        }
        Ok(())
    }
}

/// Summarize an answer relation over the model's type hierarchies.
///
/// ```
/// let db = intensio_shipdb::ship_database().unwrap();
/// let model = intensio_shipdb::ship_model().unwrap();
/// let answer = intensio_sql::query(&db, "SELECT Class, Type FROM CLASS").unwrap();
/// let s = intensio_core::summarize(&answer, &model);
/// assert_eq!(s.total, 13);
/// assert!(s.to_string().contains("by Type"));
/// ```
///
/// Every answer column whose name matches a classifying attribute of
/// some hierarchy becomes a summary level. Column names produced by the
/// SQL executor may be alias-prefixed (`c.Type`); the suffix after the
/// last `.` is matched.
pub fn summarize(rel: &Relation, model: &KerModel) -> AnswerSummary {
    let classifier_attrs: Vec<String> = model
        .classifiers()
        .into_iter()
        .map(|(_, c)| c.attribute)
        .collect();

    let mut levels = Vec::new();
    for (idx, attr) in rel.schema().attributes().iter().enumerate() {
        let base_name = attr.name().rsplit('.').next().unwrap_or(attr.name());
        if !classifier_attrs
            .iter()
            .any(|c| c.eq_ignore_ascii_case(base_name))
        {
            continue;
        }
        let mut counts: BTreeMap<ValueKey, usize> = BTreeMap::new();
        for t in rel.iter() {
            *counts.entry(ValueKey(t.get(idx).clone())).or_insert(0) += 1;
        }
        let mut groups: Vec<SummaryGroup> = counts
            .into_iter()
            .map(|(v, count)| SummaryGroup {
                subtype: model.subtype_label_for(base_name, &v.0),
                value: v.0,
                count,
            })
            .collect();
        groups.sort_by(|a, b| b.count.cmp(&a.count).then(a.value.total_cmp(&b.value)));
        levels.push(SummaryLevel {
            attribute: attr.name().to_string(),
            groups,
        });
    }
    AnswerSummary {
        total: rel.len(),
        levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntensionalQueryProcessor;

    fn system() -> IntensionalQueryProcessor {
        IntensionalQueryProcessor::new(
            intensio_shipdb::ship_database().unwrap(),
            intensio_shipdb::ship_model().unwrap(),
        )
    }

    #[test]
    fn example3_summary_is_uniform_in_type() {
        let iqp = system();
        let r = iqp
            .query_extensional(
                "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
                 FROM SUBMARINE, CLASS, INSTALL \
                 WHERE SUBMARINE.CLASS = CLASS.CLASS \
                 AND SUBMARINE.ID = INSTALL.SHIP AND INSTALL.SONAR = \"BQS-04\"",
            )
            .unwrap();
        let s = summarize(&r, iqp.dictionary().model());
        assert_eq!(s.total, 4);
        // Two classifier columns matched: CLASS (SUBMARINE.Class) and TYPE.
        assert_eq!(s.levels.len(), 2);
        let type_level = s
            .levels
            .iter()
            .find(|l| l.attribute.eq_ignore_ascii_case("type"))
            .unwrap();
        assert!(type_level.is_uniform());
        assert_eq!(type_level.groups[0].subtype.as_deref(), Some("SSN"));
        let class_level = s
            .levels
            .iter()
            .find(|l| l.attribute.to_ascii_lowercase().contains("class"))
            .unwrap();
        assert_eq!(class_level.groups.len(), 4, "four distinct classes");
        let text = s.to_string();
        assert!(text.contains("all SSN"), "{text}");
    }

    #[test]
    fn mixed_answer_lists_distribution() {
        let iqp = system();
        let r = iqp
            .query_extensional("SELECT Class, Type FROM CLASS WHERE Displacement > 6000")
            .unwrap();
        let s = summarize(&r, iqp.dictionary().model());
        let type_level = s
            .levels
            .iter()
            .find(|l| l.attribute.eq_ignore_ascii_case("type"))
            .unwrap();
        assert!(!type_level.is_uniform());
        // Largest group first.
        assert!(type_level.groups[0].count >= type_level.groups[1].count);
    }

    #[test]
    fn no_classifier_columns_gives_empty_summary() {
        let iqp = system();
        let r = iqp.query_extensional("SELECT Name FROM SUBMARINE").unwrap();
        let s = summarize(&r, iqp.dictionary().model());
        assert!(s.is_empty());
        assert_eq!(s.total, 24);
    }
}
