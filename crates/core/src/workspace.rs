//! Whole-system persistence: save an [`IntensionalQueryProcessor`]'s
//! database, KER schema, and learned rules into one directory, and
//! restore it elsewhere — the complete §5.2.2 relocation story ("a
//! database and its associated rule relations can be relocated
//! together", with the schema travelling as KER source).
//!
//! Layout:
//!
//! ```text
//! <dir>/
//!   data/            the database (storage::persist layout)
//!   rules/           the rule relations, as their own database
//!   schema.ker       the KER model, serialized to source
//! ```

use crate::error::IqpError;
use crate::processor::IntensionalQueryProcessor;
use intensio_ker::model::KerModel;
use intensio_ker::render::to_source;
use intensio_rules::encode::RuleRelations;
use intensio_storage::catalog::Database;
use intensio_storage::error::StorageError;
use intensio_storage::persist::{load_database, save_database};
use std::fs;
use std::path::Path;

fn io_err(e: std::io::Error) -> IqpError {
    IqpError::Storage(StorageError::Invalid(format!("io error: {e}")))
}

/// Save the whole system state into `dir`.
///
/// ```
/// use intensio_core::{save_workspace, load_workspace, IntensionalQueryProcessor};
///
/// let mut iqp = IntensionalQueryProcessor::new(
///     intensio_shipdb::ship_database().unwrap(),
///     intensio_shipdb::ship_model().unwrap(),
/// );
/// iqp.learn().unwrap();
///
/// let dir = std::env::temp_dir().join(format!("intensio_doc_{}", std::process::id()));
/// save_workspace(&iqp, &dir).unwrap();
/// let restored = load_workspace(&dir).unwrap();
/// assert_eq!(restored.dictionary().rules().len(), iqp.dictionary().rules().len());
/// std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub fn save_workspace(iqp: &IntensionalQueryProcessor, dir: &Path) -> Result<(), IqpError> {
    fs::create_dir_all(dir).map_err(io_err)?;
    save_database(iqp.db(), &dir.join("data"))?;
    fs::write(dir.join("schema.ker"), to_source(iqp.dictionary().model())).map_err(io_err)?;
    if iqp.dictionary().has_rules() {
        let rels = iqp.dictionary().export_rule_relations()?;
        let mut rules_db = Database::new();
        rules_db.create(rels.rules)?;
        rules_db.create(rels.value_map)?;
        rules_db.create(rels.attr_catalog)?;
        rules_db.create(rels.meta)?;
        save_database(&rules_db, &dir.join("rules"))?;
    }
    Ok(())
}

/// Restore a system saved by [`save_workspace`]. Rules are loaded when
/// present; otherwise the system starts unlearned.
pub fn load_workspace(dir: &Path) -> Result<IntensionalQueryProcessor, IqpError> {
    let db = load_database(&dir.join("data"))?;
    let source = fs::read_to_string(dir.join("schema.ker")).map_err(io_err)?;
    let model = KerModel::parse(&source)?;
    let mut iqp = IntensionalQueryProcessor::new(db, model);
    let rules_dir = dir.join("rules");
    if rules_dir.is_dir() {
        let rules_db = load_database(&rules_dir)?;
        let rels = RuleRelations {
            rules: rules_db.get("RULES")?.clone(),
            value_map: rules_db.get("ATTRVALUEMAP")?.clone(),
            attr_catalog: rules_db.get("ATTRCATALOG")?.clone(),
            meta: rules_db.get("RULEMETA")?.clone(),
        };
        iqp.dictionary_mut().import_rule_relations(&rels)?;
    }
    Ok(iqp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("intensio_ws_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn full_round_trip_with_rules() {
        let dir = tmpdir("full");
        let mut iqp = IntensionalQueryProcessor::new(
            intensio_shipdb::ship_database().unwrap(),
            intensio_shipdb::ship_model().unwrap(),
        );
        iqp.learn().unwrap();
        let n_rules = iqp.dictionary().rules().len();
        save_workspace(&iqp, &dir).unwrap();

        let restored = load_workspace(&dir).unwrap();
        assert_eq!(restored.db().total_tuples(), iqp.db().total_tuples());
        assert_eq!(restored.dictionary().rules().len(), n_rules);
        // The restored system answers intensionally without re-learning.
        let a = restored
            .query(
                "SELECT SUBMARINE.ID, CLASS.TYPE FROM SUBMARINE, CLASS \
                 WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
            )
            .unwrap();
        assert_eq!(a.extensional.len(), 2);
        assert!(a.intensional.subtypes().contains(&"SSBN"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn round_trip_without_rules() {
        let dir = tmpdir("norules");
        let iqp = IntensionalQueryProcessor::new(
            intensio_shipdb::ship_database().unwrap(),
            intensio_shipdb::ship_model().unwrap(),
        );
        save_workspace(&iqp, &dir).unwrap();
        let restored = load_workspace(&dir).unwrap();
        assert!(!restored.dictionary().has_rules());
        // Learning still works on the restored schema + data.
        let mut restored = restored;
        let stats = restored.learn().unwrap();
        assert!(stats.rules_kept > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_workspace_errors() {
        assert!(load_workspace(&tmpdir("missing").join("nope")).is_err());
    }
}
