//! The intelligent data dictionary (paper §5.3): frame-based schema
//! knowledge (the KER model) combined with rule-based semantic knowledge
//! (induced rules, persisted as rule relations so they relocate with the
//! database).

use crate::error::IqpError;
use intensio_ker::model::KerModel;
use intensio_ker::render;
use intensio_rules::encode::{decode, encode, RuleRelations};
use intensio_rules::rule::RuleSet;
use std::fmt;

/// The knowledge base behind the inference processor.
#[derive(Debug, Clone)]
pub struct DataDictionary {
    /// Frame-based knowledge: the KER schema.
    model: KerModel,
    /// Rule-based knowledge: induced semantic rules.
    rules: RuleSet,
}

impl DataDictionary {
    /// A dictionary with schema knowledge only (no rules learned yet).
    pub fn new(model: KerModel) -> DataDictionary {
        DataDictionary {
            model,
            rules: RuleSet::new(),
        }
    }

    /// The frame-based half: the KER model.
    pub fn model(&self) -> &KerModel {
        &self.model
    }

    /// The rule-based half: the current rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Replace the rule set (after a learning run).
    pub fn set_rules(&mut self, rules: RuleSet) {
        self.rules = rules;
    }

    /// Whether semantic rules have been loaded or learned.
    pub fn has_rules(&self) -> bool {
        !self.rules.is_empty()
    }

    /// Export the rules as rule relations (§5.2.2) for relocation with
    /// the database.
    pub fn export_rule_relations(&self) -> Result<RuleRelations, IqpError> {
        encode(&self.rules).map_err(IqpError::from)
    }

    /// Load rules from rule relations (the other end of relocation).
    pub fn import_rule_relations(&mut self, rels: &RuleRelations) -> Result<(), IqpError> {
        self.rules = decode(rels)?;
        Ok(())
    }
}

impl fmt::Display for DataDictionary {
    /// Render the dictionary: frames (type hierarchies and object type
    /// boxes) followed by the numbered rules.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== Intelligent Data Dictionary ===")?;
        f.write_str(&render::render_model(&self.model))?;
        writeln!(f, "== Semantic rules ({}) ==", self.rules.len())?;
        write!(f, "{}", self.rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_rules::rule::{AttrId, Clause, Rule};

    fn sample_rules() -> RuleSet {
        RuleSet::from_rules([Rule::new(
            0,
            vec![Clause::between(
                AttrId::new("CLASS", "Displacement"),
                7250,
                30000,
            )],
            Clause::equals(AttrId::new("CLASS", "Type"), "SSBN"),
        )
        .with_subtype("SSBN")
        .with_support(4)])
    }

    #[test]
    fn rule_relation_round_trip_through_dictionary() {
        let model = intensio_shipdb::ship_model().unwrap();
        let mut dict = DataDictionary::new(model.clone());
        assert!(!dict.has_rules());
        dict.set_rules(sample_rules());
        let exported = dict.export_rule_relations().unwrap();

        let mut other = DataDictionary::new(model);
        other.import_rule_relations(&exported).unwrap();
        assert_eq!(other.rules().len(), 1);
        assert_eq!(
            other.rules().rules()[0].rhs_subtype.as_deref(),
            Some("SSBN")
        );
    }

    #[test]
    fn display_shows_frames_and_rules() {
        let model = intensio_shipdb::ship_model().unwrap();
        let mut dict = DataDictionary::new(model);
        dict.set_rules(sample_rules());
        let text = dict.to_string();
        assert!(text.contains("Intelligent Data Dictionary"));
        assert!(text.contains("object type CLASS"));
        assert!(text.contains("Semantic rules (1)"));
        assert!(text.contains("then x isa SSBN"));
    }
}
