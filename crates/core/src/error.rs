//! The unified error type of the query processing system.

use intensio_ker::ModelError;
use intensio_quel::QuelError;
use intensio_sql::SqlError;
use intensio_storage::error::StorageError;
use std::fmt;

/// Any failure inside the intensional query processor.
#[derive(Debug, Clone, PartialEq)]
pub enum IqpError {
    /// Storage-engine failure.
    Storage(StorageError),
    /// SQL parse/execution failure.
    Sql(SqlError),
    /// QUEL parse/execution failure.
    Quel(QuelError),
    /// KER model failure.
    Model(ModelError),
    /// System-level failure (e.g. querying before learning).
    System(String),
}

impl fmt::Display for IqpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IqpError::Storage(e) => write!(f, "{e}"),
            IqpError::Sql(e) => write!(f, "{e}"),
            IqpError::Quel(e) => write!(f, "{e}"),
            IqpError::Model(e) => write!(f, "{e}"),
            IqpError::System(m) => write!(f, "IQP error: {m}"),
        }
    }
}

impl std::error::Error for IqpError {}

impl From<StorageError> for IqpError {
    fn from(e: StorageError) -> Self {
        IqpError::Storage(e)
    }
}

impl From<SqlError> for IqpError {
    fn from(e: SqlError) -> Self {
        IqpError::Sql(e)
    }
}

impl From<QuelError> for IqpError {
    fn from(e: QuelError) -> Self {
        IqpError::Quel(e)
    }
}

impl From<ModelError> for IqpError {
    fn from(e: ModelError) -> Self {
        IqpError::Model(e)
    }
}
