//! The intensional query processor: Figure 6 wired together.

use crate::dictionary::DataDictionary;
use crate::error::IqpError;
use crate::summary::AnswerSummary;
use intensio_induction::{Ils, IlsStats, InductionConfig};
use intensio_inference::{InferenceConfig, InferenceEngine, IntensionalAnswer};
use intensio_ker::model::KerModel;
use intensio_sql::{analyze, parse};
use intensio_storage::catalog::Database;
use intensio_storage::relation::Relation;

/// A query result: the conventional (extensional) answer together with
/// the derived intensional answer.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The enumerated tuples a conventional system would return.
    pub extensional: Relation,
    /// The characterization derived by type inference.
    pub intensional: IntensionalAnswer,
    /// The aggregate response over the type hierarchy ([SHUM88]-style),
    /// when any classifying attribute appears in the answer.
    pub summary: AnswerSummary,
}

impl Answer {
    /// Render all parts in the style of the paper's examples.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Extensional answer ({} tuples):\n{}\n\nIntensional answer:\n{}",
            self.extensional.len(),
            self.extensional.to_table(),
            self.intensional.render()
        );
        if let Some(h) = self.intensional.headline() {
            out.push_str(&format!("In short: {h}\n"));
        }
        if !self.summary.is_empty() {
            out.push_str(&format!("\nAggregate response:\n{}", self.summary));
        }
        out
    }
}

/// Answer a SQL query against an explicit knowledge state.
///
/// This is the pure core of [`IntensionalQueryProcessor::query`]: it
/// borrows the database and dictionary instead of owning them, so a
/// concurrent service can pin an immutable snapshot of both and answer
/// many queries against it from many threads without cloning or
/// locking. Same inputs, same answer — there is no hidden state.
pub fn answer(
    db: &Database,
    dictionary: &DataDictionary,
    cfg: InferenceConfig,
    sql: &str,
) -> Result<Answer, IqpError> {
    let _span = intensio_obs::Span::stage("core.query", intensio_obs::Stage::Request)
        .with_field("rules", dictionary.rules().len());
    let q = parse(sql).map_err(intensio_sql::SqlError::Parse)?;
    let extensional = intensio_sql::execute(db, &q)?;
    let analysis = analyze(db, &q)?;
    let engine = InferenceEngine::new(dictionary.model(), dictionary.rules(), db, cfg)?;
    let intensional = engine.infer(&analysis);
    let summary = crate::summary::summarize(&extensional, dictionary.model());
    Ok(Answer {
        extensional,
        intensional,
        summary,
    })
}

/// Only the intensional characterization, against an explicit
/// knowledge state (the pure core of
/// [`IntensionalQueryProcessor::query_intensional`]).
pub fn answer_intensional(
    db: &Database,
    dictionary: &DataDictionary,
    cfg: InferenceConfig,
    sql: &str,
) -> Result<IntensionalAnswer, IqpError> {
    let q = parse(sql).map_err(intensio_sql::SqlError::Parse)?;
    let analysis = analyze(db, &q)?;
    let engine = InferenceEngine::new(dictionary.model(), dictionary.rules(), db, cfg)?;
    Ok(engine.infer(&analysis))
}

/// The full system: database + dictionary + ILS + inference processor.
#[derive(Debug, Clone)]
pub struct IntensionalQueryProcessor {
    db: Database,
    dictionary: DataDictionary,
    induction_cfg: InductionConfig,
    inference_cfg: InferenceConfig,
}

impl IntensionalQueryProcessor {
    /// Assemble the system over a database and its KER schema.
    pub fn new(db: Database, model: KerModel) -> IntensionalQueryProcessor {
        IntensionalQueryProcessor {
            db,
            dictionary: DataDictionary::new(model),
            induction_cfg: InductionConfig::default(),
            inference_cfg: InferenceConfig::default(),
        }
    }

    /// Override the induction configuration (builder style).
    pub fn with_induction_config(mut self, cfg: InductionConfig) -> Self {
        self.induction_cfg = cfg;
        self
    }

    /// Override the inference configuration (builder style).
    pub fn with_inference_config(mut self, cfg: InferenceConfig) -> Self {
        self.inference_cfg = cfg;
        self
    }

    /// The underlying database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the database. Learned rules are invalidated —
    /// call [`IntensionalQueryProcessor::learn`] again after bulk
    /// changes.
    pub fn db_mut(&mut self) -> &mut Database {
        self.dictionary
            .set_rules(intensio_rules::rule::RuleSet::new());
        &mut self.db
    }

    /// Mutable access *without* invalidating the learned rules. For
    /// callers performing changes that cannot affect rule validity
    /// (creating scratch relations, QUEL `range of`/`retrieve`); the
    /// caller takes responsibility for calling
    /// [`learn`](Self::learn) after real data changes.
    pub fn db_mut_preserving_rules(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The intelligent data dictionary.
    pub fn dictionary(&self) -> &DataDictionary {
        &self.dictionary
    }

    /// Mutable dictionary access (e.g. to import relocated rule
    /// relations).
    pub fn dictionary_mut(&mut self) -> &mut DataDictionary {
        &mut self.dictionary
    }

    /// Run the inductive learning subsystem, populating the dictionary.
    pub fn learn(&mut self) -> Result<IlsStats, IqpError> {
        let ils = Ils::new(self.dictionary.model(), self.induction_cfg);
        let out = ils.induce(&self.db)?;
        let stats = out.stats.clone();
        self.dictionary.set_rules(out.rules);
        Ok(stats)
    }

    /// Answer a SQL query with both extensional and intensional answers.
    ///
    /// Querying before [`learn`](Self::learn) (or an explicit rule
    /// import) still returns the extensional answer, with an empty
    /// intensional characterization.
    pub fn query(&self, sql: &str) -> Result<Answer, IqpError> {
        answer(&self.db, &self.dictionary, self.inference_cfg, sql)
    }

    /// Only the extensional answer (the conventional query processor).
    pub fn query_extensional(&self, sql: &str) -> Result<Relation, IqpError> {
        intensio_sql::query(&self.db, sql).map_err(IqpError::from)
    }

    /// Semantically optimize a query with the learned rules: inject
    /// restrictions that forward inference proves hold for every answer
    /// ([CHU90]-style semantic query optimization), or detect that the
    /// answer is provably empty. The rewritten query returns exactly
    /// the same extensional answer.
    pub fn optimize(&self, sql: &str) -> Result<intensio_inference::Optimized, IqpError> {
        let q = parse(sql).map_err(intensio_sql::SqlError::Parse)?;
        intensio_inference::optimize(
            &self.db,
            self.dictionary.model(),
            self.dictionary.rules(),
            &q,
        )
        .map_err(IqpError::from)
    }

    /// Only the intensional answer (no tuple enumeration).
    pub fn query_intensional(&self, sql: &str) -> Result<IntensionalAnswer, IqpError> {
        answer_intensional(&self.db, &self.dictionary, self.inference_cfg, sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_storage::value::Value;

    fn system() -> IntensionalQueryProcessor {
        let db = intensio_shipdb::ship_database().unwrap();
        let model = intensio_shipdb::ship_model().unwrap();
        let mut iqp = IntensionalQueryProcessor::new(db, model);
        iqp.learn().unwrap();
        iqp
    }

    #[test]
    fn full_example1_pipeline() {
        let iqp = system();
        let a = iqp
            .query(
                "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
                 FROM SUBMARINE, CLASS \
                 WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
            )
            .unwrap();
        assert_eq!(a.extensional.len(), 2);
        assert!(a.intensional.subtypes().contains(&"SSBN"));
        let rendered = a.render();
        assert!(rendered.contains("Rhode Island"));
        assert!(rendered.contains("Intensional answer"));
    }

    #[test]
    fn query_before_learning_has_empty_intension() {
        let db = intensio_shipdb::ship_database().unwrap();
        let model = intensio_shipdb::ship_model().unwrap();
        let iqp = IntensionalQueryProcessor::new(db, model);
        let a = iqp
            .query("SELECT Class FROM CLASS WHERE Displacement > 8000")
            .unwrap();
        assert_eq!(a.extensional.len(), 2);
        assert!(a.intensional.is_empty());
    }

    #[test]
    fn learning_reports_stats() {
        let db = intensio_shipdb::ship_database().unwrap();
        let model = intensio_shipdb::ship_model().unwrap();
        let mut iqp = IntensionalQueryProcessor::new(db, model);
        let stats = iqp.learn().unwrap();
        assert!(stats.pairs_examined > 0);
        assert!(stats.rules_kept > 0);
        assert!(iqp.dictionary().has_rules());
    }

    #[test]
    fn db_mutation_invalidates_rules() {
        let mut iqp = system();
        assert!(iqp.dictionary().has_rules());
        let _ = iqp.db_mut();
        assert!(!iqp.dictionary().has_rules());
    }

    #[test]
    fn rules_relocate_between_systems() {
        let iqp = system();
        let exported = iqp.dictionary().export_rule_relations().unwrap();

        let db2 = intensio_shipdb::ship_database().unwrap();
        let model2 = intensio_shipdb::ship_model().unwrap();
        let mut iqp2 = IntensionalQueryProcessor::new(db2, model2);
        iqp2.dictionary_mut()
            .import_rule_relations(&exported)
            .unwrap();
        let a = iqp2
            .query_intensional(
                "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
                 WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
            )
            .unwrap();
        assert!(a.subtypes().contains(&"SSBN"));
    }

    #[test]
    fn extensional_only_path() {
        let iqp = system();
        let r = iqp
            .query_extensional("SELECT DISTINCT Type FROM CLASS ORDER BY Type")
            .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0].get(0), &Value::str("SSBN"));
    }

    #[test]
    fn bad_sql_surfaces_error() {
        let iqp = system();
        assert!(iqp.query("SELEKT nothing").is_err());
        assert!(iqp.query("SELECT X FROM MISSING").is_err());
    }
}
