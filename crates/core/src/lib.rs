//! # intensio-core
//!
//! The intensional query processing system of Chu & Lee (ICDE 1991),
//! §5/Figure 6, assembled from the substrate crates:
//!
//! * a **traditional query processor** (`intensio-sql` over
//!   `intensio-storage`) computing extensional answers;
//! * an **intelligent data dictionary** holding the KER schema (frames,
//!   `intensio-ker`) and semantic knowledge (induced rules,
//!   `intensio-rules`, persisted as rule relations);
//! * an **inductive learning subsystem** (`intensio-induction`)
//!   populating the dictionary from database contents;
//! * an **inference processor** (`intensio-inference`) deriving
//!   intensional answers by forward/backward type inference.
//!
//! ```
//! use intensio_core::IntensionalQueryProcessor;
//!
//! let db = intensio_shipdb::ship_database().unwrap();
//! let model = intensio_shipdb::ship_model().unwrap();
//! let mut iqp = IntensionalQueryProcessor::new(db, model);
//! iqp.learn().unwrap();
//!
//! let answer = iqp.query(
//!     "SELECT SUBMARINE.ID, CLASS.TYPE FROM SUBMARINE, CLASS \
//!      WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
//! ).unwrap();
//! assert_eq!(answer.extensional.len(), 2);
//! assert!(answer.intensional.render().contains("SSBN"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dictionary;
pub mod error;
pub mod processor;
pub mod summary;
pub mod workspace;

pub use dictionary::DataDictionary;
pub use error::IqpError;
pub use processor::{answer, answer_intensional, Answer, IntensionalQueryProcessor};
pub use summary::{summarize, AnswerSummary, SummaryGroup, SummaryLevel};
pub use workspace::{load_workspace, save_workspace};
