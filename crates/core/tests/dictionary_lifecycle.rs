//! Dictionary lifecycle details: rule import validation, display of the
//! full dictionary, and interaction between learning configs.

use intensio_core::IntensionalQueryProcessor;
use intensio_induction::{InconsistencyPolicy, InductionConfig, RunScope, SupportMetric};
use intensio_inference::{InferenceConfig, SubsumptionMode};

fn base() -> IntensionalQueryProcessor {
    IntensionalQueryProcessor::new(
        intensio_shipdb::ship_database().unwrap(),
        intensio_shipdb::ship_model().unwrap(),
    )
}

#[test]
fn dictionary_display_is_complete() {
    let mut iqp = base();
    iqp.learn().unwrap();
    let text = iqp.dictionary().to_string();
    assert!(text.contains("Intelligent Data Dictionary"));
    assert!(text.contains("== Type hierarchies =="));
    assert!(text.contains("object type SUBMARINE"));
    assert!(text.contains("Semantic rules"));
    assert!(text.contains("then x isa"));
}

#[test]
fn every_induction_config_combination_runs() {
    for run_scope in [RunScope::FullObservedOrder, RunScope::RemainingOrder] {
        for inconsistency in [
            InconsistencyPolicy::Remove,
            InconsistencyPolicy::MajorityVote,
        ] {
            for support_metric in [SupportMetric::Instances, SupportMetric::DistinctValues] {
                let cfg = InductionConfig {
                    min_support: 2,
                    support_metric,
                    run_scope,
                    inconsistency,
                };
                let mut iqp = base().with_induction_config(cfg);
                let stats = iqp.learn().unwrap();
                assert!(
                    stats.rules_kept > 0,
                    "no rules under {run_scope:?}/{inconsistency:?}/{support_metric:?}"
                );
            }
        }
    }
}

#[test]
fn every_inference_mode_runs() {
    let mut iqp = base();
    iqp.learn().unwrap();
    let sql = "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
               WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000";
    for subsumption in [SubsumptionMode::DataGrounded, SubsumptionMode::PureInterval] {
        for (fwd, bwd) in [(false, false), (true, false), (false, true)] {
            let cfg = InferenceConfig {
                subsumption,
                forward_only: fwd,
                backward_only: bwd,
            };
            let iqp2 =
                IntensionalQueryProcessor::new(iqp.db().clone(), iqp.dictionary().model().clone())
                    .with_inference_config(cfg);
            // Reuse learned rules via export/import to avoid re-learning.
            let mut iqp2 = iqp2;
            iqp2.dictionary_mut()
                .import_rule_relations(&iqp.dictionary().export_rule_relations().unwrap())
                .unwrap();
            let a = iqp2.query(sql).unwrap();
            assert_eq!(a.extensional.len(), 2);
        }
    }
}

#[test]
fn import_garbage_rule_relations_fails_cleanly() {
    use intensio_rules::encode::RuleRelations;
    use intensio_storage::prelude::*;
    use intensio_storage::tuple;

    let mut iqp = base();
    // Build structurally valid relations with a dangling Att_no.
    let rules_schema = Schema::new(vec![
        Attribute::new("RuleNo", Domain::basic(ValueType::Int)),
        Attribute::new("Role", Domain::char_n(1)),
        Attribute::new("Lvalue", Domain::basic(ValueType::Real)),
        Attribute::new("Att_no", Domain::basic(ValueType::Int)),
        Attribute::new("Uvalue", Domain::basic(ValueType::Real)),
    ])
    .unwrap();
    let mut rules = Relation::new("RULES", rules_schema);
    rules.insert(tuple![1, "L", 1.0, 99, 1.0]).unwrap();

    let map_schema = Schema::new(vec![
        Attribute::new("Att_no", Domain::basic(ValueType::Int)),
        Attribute::new("Value", Domain::basic(ValueType::Real)),
        Attribute::new("RealValue", Domain::basic(ValueType::Str)),
    ])
    .unwrap();
    let cat_schema = Schema::new(vec![
        Attribute::new("Att_no", Domain::basic(ValueType::Int)),
        Attribute::new("Object", Domain::basic(ValueType::Str)),
        Attribute::new("Attribute", Domain::basic(ValueType::Str)),
        Attribute::new("AttrType", Domain::basic(ValueType::Str)),
    ])
    .unwrap();
    let meta_schema = Schema::new(vec![
        Attribute::new("RuleNo", Domain::basic(ValueType::Int)),
        Attribute::new("Support", Domain::basic(ValueType::Int)),
        Attribute::new("Subtype", Domain::basic(ValueType::Str)),
    ])
    .unwrap();

    let rels = RuleRelations {
        rules,
        value_map: Relation::new("ATTRVALUEMAP", map_schema),
        attr_catalog: Relation::new("ATTRCATALOG", cat_schema),
        meta: Relation::new("RULEMETA", meta_schema),
    };
    assert!(iqp.dictionary_mut().import_rule_relations(&rels).is_err());
    assert!(
        !iqp.dictionary().has_rules(),
        "failed import leaves no rules"
    );
}
