//! End-to-end reproduction of the paper's §6 Examples 1–3: SQL query →
//! extensional answer (already checked in intensio-shipdb) → analyzed
//! conditions → forward/backward type inference → intensional answer.

use intensio_induction::{Ils, InductionConfig};
use intensio_inference::{InferenceConfig, InferenceEngine, IntensionalAnswer, SubsumptionMode};
use intensio_rules::rule::RuleSet;
use intensio_shipdb::{ship_database, ship_model};
use intensio_sql::{analyze, parse};
use intensio_storage::catalog::Database;
use intensio_storage::value::Value;

fn setup() -> (Database, intensio_ker::model::KerModel, RuleSet) {
    let db = ship_database().unwrap();
    let model = ship_model().unwrap();
    let ils = Ils::new(&model, InductionConfig::with_min_support(3));
    let rules = ils.induce(&db).unwrap().rules;
    (db, model, rules)
}

fn infer(sql: &str, cfg: InferenceConfig) -> IntensionalAnswer {
    let (db, model, rules) = setup();
    let q = parse(sql).unwrap();
    let analysis = analyze(&db, &q).unwrap();
    let engine = InferenceEngine::new(&model, &rules, &db, cfg).unwrap();
    engine.infer(&analysis)
}

const EXAMPLE1: &str = "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
     FROM SUBMARINE, CLASS \
     WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000";

const EXAMPLE2: &str = "SELECT SUBMARINE.NAME, SUBMARINE.CLASS \
     FROM SUBMARINE, CLASS \
     WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = \"SSBN\"";

const EXAMPLE3: &str = "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
     FROM SUBMARINE, CLASS, INSTALL \
     WHERE SUBMARINE.CLASS = CLASS.CLASS \
     AND SUBMARINE.ID = INSTALL.SHIP \
     AND INSTALL.SONAR = \"BQS-04\"";

#[test]
fn example1_forward_inference_concludes_ssbn() {
    // Paper: A_I = "Ship type SSBN has displacement greater than 8000",
    // by forward inference with rule R9.
    let answer = infer(
        EXAMPLE1,
        InferenceConfig {
            forward_only: true,
            ..InferenceConfig::default()
        },
    );
    let ssbn = answer
        .certain
        .iter()
        .find(|f| f.subtype.as_deref() == Some("SSBN"))
        .expect("forward inference must conclude SSBN");
    assert!(ssbn.attr.matches("CLASS", "Type"));
    assert_eq!(ssbn.value, Value::str("SSBN"));
    assert!(ssbn.rule_id.is_some(), "derived from an induced rule");
    let text = answer.render();
    assert!(text.contains("SSBN"), "rendering mentions SSBN: {text}");
}

#[test]
fn example1_needs_data_grounded_subsumption() {
    // Interval containment alone cannot subsume the open condition
    // `Displacement > 8000` under the closed premise [7250, 30000]; the
    // paper's reading is data-grounded. The PureInterval ablation makes
    // the conclusion disappear.
    let answer = infer(
        EXAMPLE1,
        InferenceConfig {
            subsumption: SubsumptionMode::PureInterval,
            forward_only: true,
            ..InferenceConfig::default()
        },
    );
    assert!(
        !answer.subtypes().contains(&"SSBN"),
        "pure-interval subsumption must not fire R9 on an unbounded condition"
    );
}

#[test]
fn example2_backward_inference_describes_classes() {
    // Paper: A_I = "Ship Classes in the range of 0101 to 0103 are SSBN",
    // by backward inference with R5, and the answer is *incomplete*
    // (class 1301 is SSBN too but R_new was pruned).
    let answer = infer(
        EXAMPLE2,
        InferenceConfig {
            backward_only: true,
            ..InferenceConfig::default()
        },
    );
    let r5 = answer
        .partial
        .iter()
        .find(|b| b.x.matches("CLASS", "Class"))
        .expect("backward inference must invert the class-range rule");
    assert!(r5.range.contains(&Value::str("0101")));
    assert!(r5.range.contains(&Value::str("0103")));
    assert!(!r5.range.contains(&Value::str("1301")));
    assert_eq!(
        r5.complete,
        Some(false),
        "the engine must notice 1301 is SSBN but uncovered"
    );
    let text = answer.render();
    assert!(
        text.contains("incomplete"),
        "rendering flags incompleteness: {text}"
    );
}

#[test]
fn example2_completeness_restored_with_nc_1() {
    // The paper notes that keeping R_new (`Class = 1301 -> SSBN`) would
    // make the answer complete. At N_c = 1 the rule survives and the
    // union of backward characterizations covers 1301.
    let db = ship_database().unwrap();
    let model = ship_model().unwrap();
    let rules = Ils::new(&model, InductionConfig::with_min_support(1))
        .induce(&db)
        .unwrap()
        .rules;
    let q = parse(EXAMPLE2).unwrap();
    let analysis = analyze(&db, &q).unwrap();
    let engine = InferenceEngine::new(
        &model,
        &rules,
        &db,
        InferenceConfig {
            backward_only: true,
            ..InferenceConfig::default()
        },
    )
    .unwrap();
    let answer = engine.infer(&analysis);
    let class_chars: Vec<_> = answer
        .partial
        .iter()
        .filter(|b| b.x.matches("CLASS", "Class"))
        .collect();
    assert!(
        class_chars
            .iter()
            .any(|b| b.range.contains(&Value::str("1301"))),
        "R_new must cover class 1301 at N_c = 1"
    );
    let covered_all = |v: &str| class_chars.iter().any(|b| b.range.contains(&Value::str(v)));
    for class in ["0101", "0102", "0103", "1301"] {
        assert!(covered_all(class), "class {class} uncovered");
    }
}

#[test]
fn example3_combined_inference() {
    // Paper: A_I = "Ship type SSN with class 0208 to 0215 is equipped
    // with sonar BQS-04" — forward (R17: type is SSN; R11: sonar type is
    // BQS) combined with backward (R16: classes 0208..0215 carry BQS).
    let answer = infer(EXAMPLE3, InferenceConfig::default());

    // Forward: ship type SSN.
    assert!(
        answer
            .certain
            .iter()
            .any(|f| f.attr.matches("CLASS", "Type") && f.value == Value::str("SSN")),
        "forward must conclude ship type SSN; got {:#?}",
        answer.certain
    );
    // Forward: sonar type BQS.
    assert!(
        answer
            .certain
            .iter()
            .any(|f| f.attr.matches("SONAR", "SonarType") && f.value == Value::str("BQS")),
        "forward must conclude sonar type BQS"
    );
    // Backward from `y isa BQS`: classes 0208..0215.
    let r16 = answer
        .partial
        .iter()
        .find(|b| {
            b.x.matches("SUBMARINE", "Class")
                && b.value == Value::str("BQS")
                && b.range.contains(&Value::str("0208"))
        })
        .expect("backward must invert the class->BQS rule");
    assert!(r16.range.contains(&Value::str("0215")));
    assert!(!r16.range.contains(&Value::str("0207")));

    let text = answer.render();
    assert!(text.contains("SSN"));
    assert!(text.contains("BQS"));
}

#[test]
fn example3_forward_only_misses_the_class_range() {
    let answer = infer(
        EXAMPLE3,
        InferenceConfig {
            forward_only: true,
            ..InferenceConfig::default()
        },
    );
    assert!(
        !answer
            .partial
            .iter()
            .any(|b| b.x.matches("SUBMARINE", "Class")),
        "forward-only mode must not produce backward characterizations"
    );
}

#[test]
fn schema_constraints_match_induced_on_the_hand_tuned_ship_schema() {
    // Appendix B's schema hand-encodes the displacement bands and class
    // ranges as `with` constraints, so on the ship test bed the
    // constraint-only baseline keeps pace on Example 2 — both sides
    // derive the class-range and displacement-band characterizations.
    let db = ship_database().unwrap();
    let model = ship_model().unwrap();
    let schema_rules = intensio_inference::rules_from_schema(&model);
    let induced = Ils::new(&model, InductionConfig::with_min_support(3))
        .induce(&db)
        .unwrap()
        .rules;

    let q = parse(EXAMPLE2).unwrap();
    let analysis = analyze(&db, &q).unwrap();
    let cfg = InferenceConfig::default();
    let with_schema = InferenceEngine::new(&model, &schema_rules, &db, cfg)
        .unwrap()
        .infer(&analysis);
    let with_induced = InferenceEngine::new(&model, &induced, &db, cfg)
        .unwrap()
        .infer(&analysis);
    assert!(!with_schema.partial.is_empty());
    assert!(with_induced.partial.len() >= with_schema.partial.len());
}

#[test]
fn constraint_only_baseline_fails_without_hand_written_rules() {
    // §7: "type inference with induced rules is a more effective
    // technique to derive intensional answers than using integrity
    // constraints". The fair comparison is a schema that declares only
    // the hierarchy (derivations) without hand-encoded semantic rules —
    // the synthetic fleet's schema is exactly that. There the
    // constraint-only baseline derives nothing, while induction learns
    // the displacement bands and id runs from the data.
    let fleet = intensio_shipdb::generate(intensio_shipdb::FleetConfig::default()).unwrap();
    let model = fleet.ker_model();
    let schema_rules = intensio_inference::rules_from_schema(&model);
    assert!(
        schema_rules.is_empty(),
        "the synthetic schema declares no constraint rules"
    );

    let induced = Ils::new(&model, InductionConfig::with_min_support(2))
        .induce(&fleet.db)
        .unwrap()
        .rules;
    assert!(!induced.is_empty());

    // A query over a displacement band inside type T01's range.
    let (lo, _hi) = fleet.type_band["T01"];
    let sql = format!(
        "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > {}",
        lo
    );
    let q = parse(&sql).unwrap();
    let analysis = analyze(&fleet.db, &q).unwrap();
    let cfg = InferenceConfig::default();

    let with_schema = InferenceEngine::new(&model, &schema_rules, &fleet.db, cfg)
        .unwrap()
        .infer(&analysis);
    let with_induced = InferenceEngine::new(&model, &induced, &fleet.db, cfg)
        .unwrap()
        .infer(&analysis);

    assert!(
        with_schema.is_empty(),
        "no induced rules, no hand-written constraints → no answer"
    );
    assert!(
        !with_induced.is_empty(),
        "induced rules must characterize the band query"
    );
}

#[test]
fn inference_trace_is_populated() {
    let answer = infer(EXAMPLE1, InferenceConfig::default());
    assert!(
        answer.steps.iter().any(|s| s.starts_with("forward:")),
        "steps: {:?}",
        answer.steps
    );
}

#[test]
fn no_rules_no_answer() {
    let db = ship_database().unwrap();
    let model = ship_model().unwrap();
    let empty = RuleSet::new();
    let q = parse(EXAMPLE1).unwrap();
    let analysis = analyze(&db, &q).unwrap();
    let engine = InferenceEngine::new(&model, &empty, &db, InferenceConfig::default()).unwrap();
    let answer = engine.infer(&analysis);
    assert!(answer.is_empty());
    assert!(answer.render().contains("No intensional characterization"));
}

#[test]
fn headlines_read_like_the_paper() {
    let a1 = infer(EXAMPLE1, InferenceConfig::default());
    let h1 = a1.headline().expect("example 1 has a headline");
    assert!(h1.contains("SSBN"), "{h1}");

    let a2 = infer(
        EXAMPLE2,
        InferenceConfig {
            backward_only: true,
            ..InferenceConfig::default()
        },
    );
    let h2 = a2.headline().expect("example 2 has a headline");
    assert!(h2.contains("SSBN"), "{h2}");

    let a3 = infer(EXAMPLE3, InferenceConfig::default());
    let h3 = a3.headline().expect("example 3 has a headline");
    assert!(h3.contains("SSN"), "{h3}");
    assert!(
        IntensionalAnswer::default().headline().is_none(),
        "empty answers have no headline"
    );
}

#[test]
fn pruning_directly_subsumed_rules_preserves_the_example_answers() {
    // The serve install path drops rules whose premise lies inside a
    // wider rule with the same conclusion (`RuleSet::minimize`). That
    // prune is answer-preserving: the engine applies rules one at a
    // time, so a narrower duplicate can never contribute a fact the
    // wider rule does not. Plant redundant duplicates *after* the
    // organic set (so surviving rule ids — and therefore citations —
    // are untouched by the renumber) and require byte-identical
    // renders for Examples 1-3 before and after the prune.
    use intensio_rules::rule::{Clause, Rule};

    let (db, model, organic) = setup();
    let mut with_redundant: Vec<Rule> = organic.iter().cloned().collect();
    let mut planted = 0usize;
    for r in organic.iter() {
        // Duplicate each single-clause rule with the identical premise
        // and conclusion: subsumed by its original by construction.
        if let [clause] = r.lhs.as_slice() {
            let mut dup = Rule::new(
                0,
                vec![Clause {
                    attr: clause.attr.clone(),
                    range: clause.range.clone(),
                }],
                r.rhs.clone(),
            )
            .with_support(r.support);
            dup.rhs_subtype = r.rhs_subtype.clone();
            with_redundant.push(dup);
            planted += 1;
            if planted == 3 {
                break;
            }
        }
    }
    assert_eq!(planted, 3, "shipdb induces single-clause rules");
    let unpruned = RuleSet::from_rules(with_redundant);

    let mut pruned = unpruned.clone();
    let removed = pruned.minimize();
    assert_eq!(removed, 3, "every planted duplicate is dropped");
    assert_eq!(pruned.len(), organic.len(), "the organic set shrinks back");
    for (a, b) in organic.iter().zip(pruned.iter()) {
        assert_eq!(a, b, "survivors keep their ids and content");
    }

    for sql in [EXAMPLE1, EXAMPLE2, EXAMPLE3] {
        let q = parse(sql).unwrap();
        let analysis = analyze(&db, &q).unwrap();
        let before = InferenceEngine::new(&model, &unpruned, &db, InferenceConfig::default())
            .unwrap()
            .infer(&analysis);
        let after = InferenceEngine::new(&model, &pruned, &db, InferenceConfig::default())
            .unwrap()
            .infer(&analysis);
        assert_eq!(
            before.render(),
            after.render(),
            "prune changed the intensional answer for {sql}"
        );
    }
}
