//! Edge cases of the inference engine: contradictions, unsupported
//! operators, chained forward inference, and alias handling.

use intensio_induction::{Ils, InductionConfig};
use intensio_inference::{InferenceConfig, InferenceEngine, IntensionalAnswer};
use intensio_rules::rule::{AttrId, Clause, Rule, RuleSet};
use intensio_shipdb::{ship_database, ship_model};
use intensio_sql::{analyze, parse};
use intensio_storage::catalog::Database;
use intensio_storage::value::Value;

fn infer_with(sql: &str, rules: &RuleSet, cfg: InferenceConfig) -> IntensionalAnswer {
    let db = ship_database().unwrap();
    let model = ship_model().unwrap();
    let q = parse(sql).unwrap();
    let analysis = analyze(&db, &q).unwrap();
    let engine = InferenceEngine::new(&model, rules, &db, cfg).unwrap();
    engine.infer(&analysis)
}

fn learned(nc: usize) -> RuleSet {
    let db = ship_database().unwrap();
    let model = ship_model().unwrap();
    Ils::new(&model, InductionConfig::with_min_support(nc))
        .induce(&db)
        .unwrap()
        .rules
}

#[test]
fn contradictory_conditions_derive_nothing_wrong() {
    // Displacement > 20000 AND < 10000: empty answer; forward inference
    // may or may not fire, but the trace records the contradiction and
    // nothing unsound is claimed about a non-empty answer set.
    let rules = learned(3);
    let a = infer_with(
        "SELECT Class FROM CLASS WHERE Displacement > 20000 AND Displacement < 10000",
        &rules,
        InferenceConfig::default(),
    );
    assert!(
        a.steps.iter().any(|s| s.contains("contradiction")) || a.certain.is_empty(),
        "either flag the contradiction or stay silent: {:?}",
        a.steps
    );
}

#[test]
fn not_equal_restrictions_are_ignored_soundly() {
    // != has no interval form; the engine must not fire anything from it
    // alone.
    let rules = learned(3);
    let a = infer_with(
        "SELECT Class FROM CLASS WHERE Type != 'SSN'",
        &rules,
        InferenceConfig::default(),
    );
    assert!(a.certain.is_empty(), "{:?}", a.certain);
}

#[test]
fn forward_chaining_reaches_fixpoint_through_rule_chains() {
    // Hand-built chain: A=1 -> B=2 -> C=3. A query fixing A must derive
    // C through two forward steps.
    let mut db = Database::new();
    {
        use intensio_storage::prelude::*;
        use intensio_storage::tuple;
        let schema = Schema::new(vec![
            Attribute::new("A", Domain::basic(ValueType::Int)),
            Attribute::new("B", Domain::basic(ValueType::Int)),
            Attribute::new("C", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        let mut r = Relation::new("T", schema);
        r.insert_all([tuple![1, 2, 3], tuple![5, 6, 7]]).unwrap();
        db.create(r).unwrap();
    }
    let model = intensio_ker::model::KerModel::parse(
        "object type T\n  has: A domain: integer\n  has: B domain: integer\n  has: C domain: integer",
    )
    .unwrap();
    let rules = RuleSet::from_rules([
        Rule::new(
            0,
            vec![Clause::equals(AttrId::new("T", "A"), 1)],
            Clause::equals(AttrId::new("T", "B"), 2),
        ),
        Rule::new(
            0,
            vec![Clause::equals(AttrId::new("T", "B"), 2)],
            Clause::equals(AttrId::new("T", "C"), 3),
        ),
    ]);
    let q = parse("SELECT A FROM T WHERE A = 1").unwrap();
    let analysis = analyze(&db, &q).unwrap();
    let engine = InferenceEngine::new(&model, &rules, &db, InferenceConfig::default()).unwrap();
    let a = engine.infer(&analysis);
    assert!(
        a.certain
            .iter()
            .any(|f| f.attr.matches("T", "C") && f.value == Value::Int(3)),
        "two-step chain must conclude C = 3: {:?}",
        a.certain
    );
}

#[test]
fn aliases_resolve_through_analysis() {
    let rules = learned(3);
    let a = infer_with(
        "SELECT s.ID FROM SUBMARINE s, CLASS c \
         WHERE s.CLASS = c.CLASS AND c.DISPLACEMENT > 8000",
        &rules,
        InferenceConfig {
            forward_only: true,
            ..InferenceConfig::default()
        },
    );
    assert!(a.subtypes().contains(&"SSBN"), "{:?}", a.certain);
}

#[test]
fn queries_on_unruled_relations_yield_nothing() {
    let rules = learned(3);
    let a = infer_with(
        "SELECT TypeName FROM TYPE WHERE Type = 'SSN'",
        &rules,
        InferenceConfig::default(),
    );
    // TYPE.Type is a key; no rules conclude on it within the TYPE
    // relation — but the classifier bridges Type values across the
    // schema, so at most backward characterizations referencing CLASS
    // may appear; certain facts must not invent anything about TYPE.
    assert!(a
        .certain
        .iter()
        .all(|f| !f.attr.matches("TYPE", "TypeName")));
}

#[test]
fn rule_set_isolation_no_cross_talk() {
    // An engine built over an empty rule set derives nothing even for
    // Example 1's condition.
    let empty = RuleSet::new();
    let a = infer_with(
        "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
        &empty,
        InferenceConfig::default(),
    );
    assert!(a.is_empty());
}

#[test]
fn multiple_restrictions_on_one_attribute_intersect() {
    let rules = learned(3);
    // 7000 < D < 8000: observed displacements in that window: {7250};
    // all are SSBN.
    let a = infer_with(
        "SELECT Class FROM CLASS WHERE Displacement > 7000 AND Displacement < 8000",
        &rules,
        InferenceConfig {
            forward_only: true,
            ..InferenceConfig::default()
        },
    );
    assert!(a.subtypes().contains(&"SSBN"), "{:?}", a.certain);
}
