//! The inference processor: forward and backward type inference over
//! induced rules and the type hierarchy (paper §4).
//!
//! **Forward** inference fires a rule when the query's condition on the
//! rule's premise attribute is *subsumed by* the premise. Subsumption is
//! data-grounded by default: the paper's Example 1 treats
//! `Displacement > 8000` as subsumed by `7250 <= Displacement <= 30000`
//! because every *database* displacement above 8000 lies in the rule's
//! range — interval containment alone would reject it (the condition is
//! unbounded above). The engine therefore checks that every observed
//! value of the attribute satisfying the condition lies in the premise
//! range. A `PureInterval` mode is provided as an ablation.
//!
//! **Backward** inference inverts rules whose consequence the query (or
//! a forward conclusion) fixes, yielding descriptions of a subset of the
//! answer, with an explicit completeness check that reproduces the
//! paper's Example 2 caveat about class 1301.

use crate::answer::{BackwardCharacterization, Direction, ForwardFact, IntensionalAnswer, RuleUse};
use intensio_ker::model::KerModel;
use intensio_rules::range::ValueRange;
use intensio_rules::rule::{AttrId, Rule, RuleSet};
use intensio_sql::QueryAnalysis;
use intensio_storage::catalog::Database;
use intensio_storage::error::Result;
use intensio_storage::value::{Value, ValueKey};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// How premise subsumption is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubsumptionMode {
    /// Every observed attribute value satisfying the query condition
    /// must lie in the premise range (the paper's semantics).
    #[default]
    DataGrounded,
    /// The condition's interval must be contained in the premise
    /// interval (ablation; rejects open-ended conditions like `> 8000`).
    PureInterval,
}

/// Inference engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InferenceConfig {
    /// Subsumption semantics.
    pub subsumption: SubsumptionMode,
    /// When true, skip backward inference.
    pub forward_only: bool,
    /// When true, skip forward inference.
    pub backward_only: bool,
}

fn attr_key(a: &AttrId) -> (String, String) {
    (
        a.object.to_ascii_lowercase(),
        a.attribute.to_ascii_lowercase(),
    )
}

/// The inference processor.
pub struct InferenceEngine<'a> {
    model: &'a KerModel,
    rules: &'a RuleSet,
    cfg: InferenceConfig,
    /// Distinct observed values per attribute (sorted).
    observed: HashMap<(String, String), Vec<Value>>,
    /// Per-relation (X, Y) joint support for completeness checks:
    /// observed X values per (X attr, Y attr, y value).
    db_snapshot: DbSnapshot,
}

/// Column-index map plus materialized rows for one relation.
type RelationSnapshot = (HashMap<String, usize>, Vec<Vec<Value>>);

/// Lightweight snapshot of the relations the rules mention.
struct DbSnapshot {
    /// relation (lowercase) -> (attr lowercase -> column index, rows).
    relations: HashMap<String, RelationSnapshot>,
}

impl DbSnapshot {
    fn build(db: &Database, attrs: &BTreeSet<(String, String)>) -> DbSnapshot {
        let mut relations = HashMap::new();
        for (rel_name, _) in attrs {
            if relations.contains_key(rel_name) {
                continue;
            }
            if let Ok(rel) = db.get(rel_name) {
                let cols: HashMap<String, usize> = rel
                    .schema()
                    .attributes()
                    .iter()
                    .enumerate()
                    .map(|(i, a)| (a.name().to_ascii_lowercase(), i))
                    .collect();
                let rows: Vec<Vec<Value>> = rel.iter().map(|t| t.values().to_vec()).collect();
                relations.insert(rel_name.clone(), (cols, rows));
            }
        }
        DbSnapshot { relations }
    }

    /// Observed X values among rows with Y = y (same relation only).
    fn x_values_where_y(&self, x: &AttrId, y: &AttrId, y_value: &Value) -> Option<Vec<Value>> {
        if !x.object.eq_ignore_ascii_case(&y.object) {
            return None;
        }
        let (cols, rows) = self.relations.get(&x.object.to_ascii_lowercase())?;
        let xi = *cols.get(&x.attribute.to_ascii_lowercase())?;
        let yi = *cols.get(&y.attribute.to_ascii_lowercase())?;
        let mut set: BTreeSet<ValueKey> = BTreeSet::new();
        for row in rows {
            if row[yi].sem_eq(y_value) {
                set.insert(ValueKey(row[xi].clone()));
            }
        }
        Some(set.into_iter().map(|k| k.0).collect())
    }
}

impl<'a> InferenceEngine<'a> {
    /// Build an engine over a model, rule set, and database (the
    /// database supplies observed values for data-grounded subsumption
    /// and completeness checks).
    pub fn new(
        model: &'a KerModel,
        rules: &'a RuleSet,
        db: &Database,
        cfg: InferenceConfig,
    ) -> Result<InferenceEngine<'a>> {
        intensio_fault::fire("inference.engine")?;
        let mut attrs: BTreeSet<(String, String)> = BTreeSet::new();
        for r in rules.iter() {
            for c in &r.lhs {
                attrs.insert(attr_key(&c.attr));
            }
            attrs.insert(attr_key(&r.rhs.attr));
        }
        let mut observed = HashMap::new();
        for (rel_name, attr_name) in &attrs {
            if let Ok(rel) = db.get(rel_name) {
                if let Ok(vals) = rel.distinct_values(attr_name) {
                    observed.insert(
                        (rel_name.clone(), attr_name.clone()),
                        vals.into_iter().filter(|v| !v.is_null()).collect(),
                    );
                }
            }
        }
        let db_snapshot = DbSnapshot::build(db, &attrs);
        Ok(InferenceEngine {
            model,
            rules,
            cfg,
            observed,
            db_snapshot,
        })
    }

    /// Derive the intensional answer for an analyzed query.
    pub fn infer(&self, analysis: &QueryAnalysis) -> IntensionalAnswer {
        let _span = intensio_obs::Span::stage("inference.infer", intensio_obs::Stage::Inference)
            .with_field("restrictions", analysis.restrictions.len())
            .with_field("rules", self.rules.len());
        // Latency/panic injection point. `infer` is infallible, so an
        // `error` spec here is swallowed; arm `inference.engine` to make
        // inference fail, or `delay`/`panic` here.
        let _ = intensio_fault::fire("inference.infer");
        let mut answer = IntensionalAnswer::default();

        // Equivalence classes from equi-joins, for fact propagation.
        let equiv = self.equivalences(analysis);

        // Initial facts: query restrictions as ranges, intersected per
        // attribute and propagated across joins.
        let mut facts: BTreeMap<(String, String), ValueRange> = BTreeMap::new();
        for r in &analysis.restrictions {
            let Some(range) = ValueRange::from_cmp(r.op, r.value.clone()) else {
                continue; // != has no interval form
            };
            let attr = AttrId::new(r.attr.relation.clone(), r.attr.attribute.clone());
            self.add_fact(&mut facts, &equiv, &attr, range, &mut answer.steps);
        }
        let given: BTreeSet<(String, String)> = facts.keys().cloned().collect();

        // Forward chaining to fixpoint.
        if !self.cfg.backward_only {
            let mut forward_span =
                intensio_obs::Span::enter("inference.forward").with_field("given", given.len());
            let mut fired: BTreeSet<u32> = BTreeSet::new();
            loop {
                let mut progressed = false;
                for rule in self.rules.iter() {
                    if fired.contains(&rule.id) {
                        continue;
                    }
                    if !self.premise_satisfied(rule, &facts) {
                        continue;
                    }
                    fired.insert(rule.id);
                    progressed = true;
                    let rhs_value = rule
                        .rhs
                        .range
                        .as_point()
                        .cloned()
                        .expect("induced consequences are points");
                    answer.steps.push(format!(
                        "forward: R{} fires, concluding {} = {}",
                        rule.id, rule.rhs.attr, rhs_value
                    ));
                    answer.provenance.push(RuleUse {
                        rule_id: rule.id,
                        support: rule.support,
                        direction: Direction::Forward,
                        conclusion: format!("{} = {}", rule.rhs.attr, rhs_value),
                    });
                    intensio_obs::inc("inference.forward_fired");
                    let subtype = rule.rhs_subtype.clone().or_else(|| {
                        self.model
                            .subtype_label_for(&rule.rhs.attr.attribute, &rhs_value)
                    });
                    answer.certain.push(ForwardFact {
                        attr: rule.rhs.attr.clone(),
                        value: rhs_value.clone(),
                        subtype,
                        rule_id: Some(rule.id),
                    });
                    self.add_fact(
                        &mut facts,
                        &equiv,
                        &rule.rhs.attr,
                        ValueRange::point(rhs_value),
                        &mut answer.steps,
                    );
                }
                if !progressed {
                    break;
                }
            }
            // Deduplicate identical conclusions from different rules.
            answer
                .certain
                .dedup_by(|a, b| a.attr == b.attr && a.value == b.value && a.subtype == b.subtype);
            forward_span.field("fired", fired.len());
            drop(forward_span);
        }

        // Backward inference: from every point fact (given or derived),
        // invert rules concluding it.
        if !self.cfg.forward_only {
            let mut backward_span = intensio_obs::Span::enter("inference.backward");
            let mut inverted = 0usize;
            for ((obj, attr_name), range) in &facts {
                let Some(value) = range.as_point() else {
                    continue;
                };
                for rule in self.rules.iter() {
                    if !rule.rhs.attr.matches(obj, attr_name) {
                        continue;
                    }
                    let Some(rhs_value) = rule.rhs.range.as_point() else {
                        continue;
                    };
                    if !rhs_value.sem_eq(value) {
                        continue;
                    }
                    // Single-premise rules only (the paper's induced
                    // rules are single-clause).
                    let [lhs] = rule.lhs.as_slice() else { continue };
                    let complete = self.backward_completeness(rule, &lhs.attr, value);
                    answer.steps.push(format!(
                        "backward: R{} inverted — instances with {} {} have {} = {}",
                        rule.id, lhs.attr, lhs.range, rule.rhs.attr, value
                    ));
                    answer.provenance.push(RuleUse {
                        rule_id: rule.id,
                        support: rule.support,
                        direction: Direction::Backward,
                        conclusion: format!(
                            "{} {} ⇒ {} = {}",
                            lhs.attr, lhs.range, rule.rhs.attr, value
                        ),
                    });
                    inverted += 1;
                    intensio_obs::inc("inference.backward_inverted");
                    answer.partial.push(BackwardCharacterization {
                        x: lhs.attr.clone(),
                        range: lhs.range.clone(),
                        y: rule.rhs.attr.clone(),
                        value: value.clone(),
                        subtype: rule.rhs_subtype.clone().or_else(|| {
                            self.model
                                .subtype_label_for(&rule.rhs.attr.attribute, value)
                        }),
                        rule_id: rule.id,
                        complete,
                    });
                }
            }
            backward_span.field("inverted", inverted);
            drop(backward_span);
        }

        // Suppress trivial backward echoes: a backward characterization
        // whose X attribute the query already fixed to the same range
        // adds nothing.
        answer.partial.retain(|b| {
            let k = attr_key(&b.x);
            match (given.contains(&k), facts.get(&k)) {
                (true, Some(r)) => r != &b.range,
                _ => true,
            }
        });
        // Two rules with the same premise and conclusion (a redundant
        // duplicate the install-time prune would drop) invert to the
        // same description; keep the first — iteration is in rule-id
        // order, so the citation is stable — and the answer reads the
        // same whether or not the duplicate was pruned.
        let mut seen_descriptions = BTreeSet::new();
        answer.partial.retain(|b| {
            seen_descriptions.insert(format!(
                "{}|{}|{}|{}|{:?}",
                b.x, b.range, b.y, b.value, b.subtype
            ))
        });
        // Keep provenance consistent with the surviving characterizations.
        let kept_backward: BTreeSet<u32> = answer.partial.iter().map(|b| b.rule_id).collect();
        answer.provenance.retain(|u| match u.direction {
            Direction::Forward => true,
            Direction::Backward => kept_backward.contains(&u.rule_id),
        });
        for u in &answer.provenance {
            intensio_obs::inc(&format!("inference.rule.R{}.used", u.rule_id));
        }

        answer
    }

    /// Referential equivalences from the KER schema: an object-valued
    /// attribute holds the referenced entity's key, so facts transfer
    /// between them (`INSTALL.Sonar` ≡ `SONAR.Sonar`,
    /// `SUBMARINE.Class` ≡ `CLASS.Class`). This is how a condition on a
    /// relationship attribute reaches rules phrased over the entity —
    /// the paper's Example 3 relies on it (`INSTALL.SONAR = "BQS-04"`
    /// fires R17/R11, which speak of `y.Sonar`).
    fn schema_equivalences(&self) -> Vec<(AttrId, AttrId)> {
        let mut out = Vec::new();
        for type_name in self.model.type_names() {
            let Some(ot) = self.model.object_type(type_name) else {
                continue;
            };
            for a in &ot.declared_attrs {
                let target = a.domain().name();
                if !self.model.contains_type(target) || target.eq_ignore_ascii_case(type_name) {
                    continue;
                }
                let Some(tt) = self.model.object_type(target) else {
                    continue;
                };
                let Some(key) = tt.declared_attrs.iter().find(|k| k.is_key()) else {
                    continue;
                };
                out.push((
                    AttrId::new(ot.name.clone(), a.name().to_string()),
                    AttrId::new(tt.name.clone(), key.name().to_string()),
                ));
            }
        }
        out
    }

    /// Join-equivalence classes: attr -> every attr equated with it.
    fn equivalences(&self, analysis: &QueryAnalysis) -> HashMap<(String, String), Vec<AttrId>> {
        // Union-find over the attributes mentioned in joins.
        let mut parent: HashMap<(String, String), (String, String)> = HashMap::new();
        fn find(
            parent: &mut HashMap<(String, String), (String, String)>,
            k: (String, String),
        ) -> (String, String) {
            let p = parent.get(&k).cloned();
            match p {
                None => k,
                Some(p) if p == k => k,
                Some(p) => {
                    let root = find(parent, p);
                    parent.insert(k, root.clone());
                    root
                }
            }
        }
        let mut members: HashMap<(String, String), BTreeSet<(String, String)>> = HashMap::new();
        let mut ids: HashMap<(String, String), AttrId> = HashMap::new();
        let mut edges: Vec<(AttrId, AttrId)> = analysis
            .joins
            .iter()
            .map(|j| {
                (
                    AttrId::new(j.left.relation.clone(), j.left.attribute.clone()),
                    AttrId::new(j.right.relation.clone(), j.right.attribute.clone()),
                )
            })
            .collect();
        edges.extend(self.schema_equivalences());
        for (a, b) in &edges {
            let (ka, kb) = (attr_key(a), attr_key(b));
            let (a, b) = (a.clone(), b.clone());
            ids.insert(ka.clone(), a);
            ids.insert(kb.clone(), b);
            let ra = find(&mut parent, ka.clone());
            let rb = find(&mut parent, kb.clone());
            parent.insert(ka.clone(), ra.clone());
            parent.insert(kb, ra.clone());
            if ra != rb {
                parent.insert(rb, ra);
            }
        }
        let keys: Vec<(String, String)> = ids.keys().cloned().collect();
        for k in keys {
            let r = find(&mut parent, k.clone());
            members.entry(r).or_default().insert(k);
        }
        let mut out: HashMap<(String, String), Vec<AttrId>> = HashMap::new();
        for set in members.values() {
            for k in set {
                let peers: Vec<AttrId> = set
                    .iter()
                    .filter(|o| *o != k)
                    .filter_map(|o| ids.get(o).cloned())
                    .collect();
                out.insert(k.clone(), peers);
            }
        }
        out
    }

    /// Record a fact, intersecting with any existing fact on the
    /// attribute, and propagate it across join equivalences.
    fn add_fact(
        &self,
        facts: &mut BTreeMap<(String, String), ValueRange>,
        equiv: &HashMap<(String, String), Vec<AttrId>>,
        attr: &AttrId,
        range: ValueRange,
        steps: &mut Vec<String>,
    ) {
        let mut queue = vec![(attr.clone(), range)];
        while let Some((a, r)) = queue.pop() {
            let k = attr_key(&a);
            let merged = match facts.get(&k) {
                Some(existing) => match existing.intersect(&r) {
                    Some(i) => i,
                    None => {
                        steps.push(format!("contradiction on {a}: {existing} ∧ {r} is empty"));
                        r.clone()
                    }
                },
                None => r.clone(),
            };
            let changed = facts.get(&k) != Some(&merged);
            facts.insert(k.clone(), merged.clone());
            if changed {
                if let Some(peers) = equiv.get(&k) {
                    for p in peers {
                        queue.push((p.clone(), merged.clone()));
                    }
                }
            }
        }
    }

    /// Is a rule's premise subsumed by the current facts?
    ///
    /// Every premise clause must be satisfied, and at least one premise
    /// attribute must actually be constrained by the query (otherwise
    /// any database-wide regularity would fire).
    fn premise_satisfied(
        &self,
        rule: &Rule,
        facts: &BTreeMap<(String, String), ValueRange>,
    ) -> bool {
        let mut any_constrained = false;
        for clause in &rule.lhs {
            let k = attr_key(&clause.attr);
            let fact = facts.get(&k);
            if fact.is_some() {
                any_constrained = true;
            }
            let satisfied = match self.cfg.subsumption {
                SubsumptionMode::PureInterval => match fact {
                    Some(f) => clause.range.subsumes(f),
                    None => false,
                },
                SubsumptionMode::DataGrounded => {
                    let Some(observed) = self.observed.get(&k) else {
                        return false;
                    };
                    let matching: Vec<&Value> = observed
                        .iter()
                        .filter(|v| fact.map(|f| f.contains(v)).unwrap_or(true))
                        .collect();
                    !matching.is_empty() && matching.iter().all(|v| clause.range.contains(v))
                }
            };
            if !satisfied {
                return false;
            }
        }
        any_constrained
    }

    /// Does the rule's premise range cover *every* observed X value
    /// whose Y equals `value`? (`None` when X and Y live in different
    /// relations and the joint distribution is not directly checkable.)
    fn backward_completeness(&self, rule: &Rule, x: &AttrId, value: &Value) -> Option<bool> {
        let xs = self
            .db_snapshot
            .x_values_where_y(x, &rule.rhs.attr, value)?;
        let lhs = rule.lhs_clause(&x.object, &x.attribute)?;
        Some(xs.iter().all(|v| lhs.range.contains(v)))
    }
}
