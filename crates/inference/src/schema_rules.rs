//! Rules taken from the schema's `with` constraints alone — the
//! integrity-constraint baseline ([MOTR89]) that §7 compares against.
//!
//! The paper's closing claim is that *induced rules* make type inference
//! more effective than using integrity constraints only. This module
//! compiles the KER schema's constraint and structure rules into a
//! [`RuleSet`] so the same inference engine can run with schema
//! knowledge only, and the two intensional answers can be compared
//! (bench `baseline_compare`).

use intensio_ker::ast::{ClauseAst, ConsequenceAst, ConstraintAst};
use intensio_ker::model::KerModel;
use intensio_rules::range::{Endpoint, ValueRange};
use intensio_rules::rule::{AttrId, Clause, Rule, RuleSet};
use intensio_storage::expr::CmpOp;

/// Compile every constraint/structure rule in the model into runtime
/// rules. Rules whose consequence cannot be grounded (an `isa` to a
/// subtype with no single-equality derivation) are skipped.
pub fn rules_from_schema(model: &KerModel) -> RuleSet {
    let mut out = Vec::new();
    for type_name in model.type_names() {
        let Some(ot) = model.object_type(type_name) else {
            continue;
        };
        for c in &ot.constraints {
            let ConstraintAst::Rule {
                roles,
                premise,
                consequence,
            } = c
            else {
                continue;
            };
            let object_for = |qualifier: &Option<String>| -> String {
                match qualifier {
                    Some(q) => roles
                        .iter()
                        .find(|r| r.var.eq_ignore_ascii_case(q))
                        .map(|r| r.type_name.clone())
                        .unwrap_or_else(|| q.clone()),
                    None => type_name.clone(),
                }
            };

            let mut lhs: Vec<Clause> = Vec::new();
            let mut ok = true;
            for cl in premise {
                match clause_to_runtime(cl, &object_for(&cl.attr.qualifier)) {
                    Some(c) => merge_clause(&mut lhs, c),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok || lhs.is_empty() {
                continue;
            }

            let (rhs, subtype) = match consequence {
                ConsequenceAst::Clause(cl) => {
                    let Some(c) = clause_to_runtime(cl, &object_for(&cl.attr.qualifier)) else {
                        continue;
                    };
                    if !c.range.is_point() {
                        continue; // Horn consequences are equalities
                    }
                    let label = c
                        .range
                        .as_point()
                        .and_then(|v| model.subtype_label_for(&c.attr.attribute, v));
                    (c, label)
                }
                ConsequenceAst::Isa {
                    var,
                    type_name: sub,
                } => {
                    // Ground `x isa SUB` through SUB's derivation.
                    let Some([d]) = model
                        .derivation_of(sub)
                        .and_then(|d| <&[ClauseAst; 1]>::try_from(d).ok())
                    else {
                        continue;
                    };
                    if d.op != CmpOp::Eq {
                        continue;
                    }
                    // The derivation's attribute belongs to SUB's root
                    // hierarchy object; prefer the role's entity type if
                    // the role variable matches, else the hierarchy root.
                    let object = roles
                        .iter()
                        .find(|r| r.var.eq_ignore_ascii_case(var))
                        .map(|r| r.type_name.clone())
                        .unwrap_or_else(|| {
                            model
                                .ancestors_of(sub)
                                .last()
                                .map(|s| s.to_string())
                                .unwrap_or_else(|| sub.clone())
                        });
                    // Use the hierarchy root as the owning object when
                    // the role's type is itself part of the hierarchy
                    // (e.g. role `x isa SONAR`, subtype BQQ of SONAR).
                    let object = if model.is_subtype_of(sub, &object) {
                        object
                    } else {
                        model
                            .ancestors_of(sub)
                            .last()
                            .map(|s| s.to_string())
                            .unwrap_or(object)
                    };
                    (
                        Clause::equals(AttrId::new(object, d.attr.name.clone()), d.value.clone()),
                        Some(sub.clone()),
                    )
                }
            };

            let mut rule = Rule::new(0, lhs, rhs);
            rule.rhs_subtype = subtype;
            out.push(rule);
        }
    }
    RuleSet::from_rules(out)
}

/// Convert a KER clause (`attr op constant`) into a runtime clause.
/// Returns `None` for `!=`, which has no interval form.
fn clause_to_runtime(cl: &ClauseAst, object: &str) -> Option<Clause> {
    let range = match cl.op {
        CmpOp::Eq => ValueRange::point(cl.value.clone()),
        CmpOp::Ne => return None,
        CmpOp::Lt => ValueRange {
            lo: None,
            hi: Some(Endpoint::excl(cl.value.clone())),
        },
        CmpOp::Le => ValueRange {
            lo: None,
            hi: Some(Endpoint::incl(cl.value.clone())),
        },
        CmpOp::Gt => ValueRange {
            lo: Some(Endpoint::excl(cl.value.clone())),
            hi: None,
        },
        CmpOp::Ge => ValueRange {
            lo: Some(Endpoint::incl(cl.value.clone())),
            hi: None,
        },
    };
    Some(Clause {
        attr: AttrId::new(object, cl.attr.name.clone()),
        range,
    })
}

/// Add a clause to a premise, intersecting with an existing clause on
/// the same attribute (chained comparisons arrive as two clauses).
fn merge_clause(lhs: &mut Vec<Clause>, c: Clause) {
    if let Some(existing) = lhs.iter_mut().find(|e| e.attr == c.attr) {
        if let Some(i) = existing.range.intersect(&c.range) {
            existing.range = i;
            return;
        }
    }
    lhs.push(c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_storage::value::Value;

    fn model() -> KerModel {
        intensio_shipdb::ship_model().unwrap()
    }

    #[test]
    fn compiles_class_displacement_rules() {
        let rules = rules_from_schema(&model());
        // The CLASS with-block: two value rules (Class range -> Type) and
        // two structure rules (Displacement range -> isa SSN/SSBN).
        let ssbn: Vec<_> = rules
            .iter()
            .filter(|r| r.rhs_subtype.as_deref() == Some("SSBN"))
            .collect();
        assert!(!ssbn.is_empty());
        let disp = rules.iter().find(|r| {
            r.lhs
                .iter()
                .any(|c| c.attr.matches("CLASS", "Displacement"))
                && r.rhs_subtype.as_deref() == Some("SSBN")
        });
        let disp = disp.expect("displacement structure rule");
        assert!(disp.lhs[0].range.contains(&Value::Int(7250)));
        assert!(disp.lhs[0].range.contains(&Value::Int(30000)));
        assert!(!disp.lhs[0].range.contains(&Value::Int(7000)));
        assert_eq!(disp.rhs.attr, AttrId::new("CLASS", "Type"));
    }

    #[test]
    fn chained_premises_merge_into_one_clause() {
        let rules = rules_from_schema(&model());
        for r in rules.iter() {
            let mut seen = std::collections::BTreeSet::new();
            for c in &r.lhs {
                assert!(
                    seen.insert(c.attr.clone()),
                    "premise mentions {} twice in {r}",
                    c.attr
                );
            }
        }
    }

    #[test]
    fn install_structure_rules_span_objects() {
        let rules = rules_from_schema(&model());
        // `if x.Class = "0203" then y isa BQQ`.
        let r = rules
            .iter()
            .find(|r| {
                r.rhs_subtype.as_deref() == Some("BQQ")
                    && r.lhs.iter().any(|c| c.attr.matches("SUBMARINE", "Class"))
            })
            .expect("INSTALL rule compiled");
        assert_eq!(r.rhs.attr, AttrId::new("SONAR", "SonarType"));
        assert_eq!(r.rhs.range.as_point(), Some(&Value::str("BQQ")));
    }

    #[test]
    fn sonar_range_rules() {
        let rules = rules_from_schema(&model());
        let r = rules
            .iter()
            .find(|r| {
                r.rhs_subtype.as_deref() == Some("BQS")
                    && r.lhs.iter().any(|c| c.attr.matches("SONAR", "Sonar"))
            })
            .expect("BQS rule");
        assert!(r.lhs[0].range.contains(&Value::str("BQS-12")));
        assert!(!r.lhs[0].range.contains(&Value::str("TACTAS")));
    }
}
