//! # intensio-inference
//!
//! The inference processor of Chu & Lee (ICDE 1991), §4: deriving
//! *intensional answers* — characterizations of a query's answer set —
//! by forward and backward type inference over induced rules and the
//! KER type hierarchy.
//!
//! * Forward inference (Modus Ponens) concludes facts that hold for
//!   **every** tuple of the answer: the characterization *contains* the
//!   extensional answer.
//! * Backward inference inverts rules whose consequence the query fixes,
//!   describing a *subset* of the answer, with an explicit completeness
//!   check (the paper's Example 2 caveat).
//! * [`schema_rules::rules_from_schema`] compiles the schema's `with`
//!   constraints into rules, giving the integrity-constraint-only
//!   baseline ([MOTR89]) the paper's conclusion compares against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod answer;
pub mod engine;
pub mod fingerprint;
pub mod optimizer;
pub mod quality;
pub mod schema_rules;

pub use absint::{saturate, saturate_excluding, AbstractState, AbstractValue, Saturation};
pub use answer::{BackwardCharacterization, Direction, ForwardFact, IntensionalAnswer, RuleUse};
pub use engine::{InferenceConfig, InferenceEngine, SubsumptionMode};
pub use fingerprint::condition_fingerprint;
pub use optimizer::{optimize, Optimized};
pub use quality::{evaluate, AnswerQuality};
pub use schema_rules::rules_from_schema;
