//! Semantic query optimization with induced rules.
//!
//! The paper's introduction notes that the same meta-data driving
//! intensional answers was classically used "to improve query processing
//! performance" ([KING81], [HAMM80]), and its companion work [CHU90]
//! (same authors) pursues exactly that. This module closes the loop: the
//! forward conclusions of type inference are *sound restrictions* — they
//! hold for every answer tuple — so they can be injected into the query
//! as extra conjuncts, enabling earlier filtering; and a query whose
//! conditions exclude every stored value is *provably empty* and need
//! not touch the data at all.
//!
//! Both rewrites preserve the extensional answer exactly (tested), since
//! forward facts are superset-sound.

use crate::engine::{InferenceConfig, InferenceEngine};
use intensio_ker::model::KerModel;
use intensio_rules::range::ValueRange;
use intensio_rules::rule::RuleSet;
use intensio_sql::{analyze, QueryAnalysis, SelectQuery, SqlError};
use intensio_storage::catalog::Database;
use intensio_storage::expr::{AttrRef, CmpOp, Expr};
use std::collections::HashMap;

/// The outcome of semantic optimization.
#[derive(Debug, Clone)]
pub enum Optimized {
    /// The query augmented with inferred restrictions (human-readable
    /// descriptions of what was added in `added`).
    Rewritten {
        /// The rewritten query.
        query: SelectQuery,
        /// Descriptions of the injected conjuncts.
        added: Vec<String>,
    },
    /// The query can be answered without touching the data: its
    /// conditions exclude every stored value.
    ProvablyEmpty {
        /// Why the answer set is empty.
        reason: String,
    },
    /// Nothing applicable was inferred.
    Unchanged(SelectQuery),
}

impl Optimized {
    /// The query to execute (the original for `ProvablyEmpty` callers
    /// that want to double-check).
    pub fn query(&self) -> Option<&SelectQuery> {
        match self {
            Optimized::Rewritten { query, .. } | Optimized::Unchanged(query) => Some(query),
            Optimized::ProvablyEmpty { .. } => None,
        }
    }
}

/// Semantically optimize a query using induced rules.
///
/// ```
/// use intensio_inference::{optimize, Optimized};
/// use intensio_induction::{Ils, InductionConfig};
///
/// let db = intensio_shipdb::ship_database().unwrap();
/// let model = intensio_shipdb::ship_model().unwrap();
/// let rules = Ils::new(&model, InductionConfig::default())
///     .induce(&db).unwrap().rules;
/// let q = intensio_sql::parse(
///     "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
///      WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
/// ).unwrap();
/// match optimize(&db, &model, &rules, &q).unwrap() {
///     Optimized::Rewritten { added, .. } => {
///         assert!(added.iter().any(|a| a.contains("Type")));
///     }
///     other => panic!("expected a rewrite, got {other:?}"),
/// }
/// ```
pub fn optimize(
    db: &Database,
    model: &KerModel,
    rules: &RuleSet,
    query: &SelectQuery,
) -> Result<Optimized, SqlError> {
    let analysis = analyze(db, query)?;

    // 1. Provably-empty detection: intersect the restrictions per
    //    attribute and test them against the stored values.
    if let Some(reason) = provably_empty(db, &analysis) {
        return Ok(Optimized::ProvablyEmpty { reason });
    }

    // 2. Restriction introduction from forward inference.
    let engine = InferenceEngine::new(
        model,
        rules,
        db,
        InferenceConfig {
            forward_only: true,
            ..InferenceConfig::default()
        },
    )
    .map_err(SqlError::Storage)?;
    let answer = engine.infer(&analysis);

    let mut new_query = query.clone();
    let mut added = Vec::new();
    for fact in &answer.certain {
        // The fact's relation must be in the FROM list.
        let Some(table) = query
            .from
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(&fact.attr.object))
        else {
            continue;
        };
        // Skip if the query already pins this attribute to a constant.
        let already = analysis.restrictions.iter().any(|r| {
            r.attr.relation.eq_ignore_ascii_case(&fact.attr.object)
                && r.attr.attribute.eq_ignore_ascii_case(&fact.attr.attribute)
                && r.op == CmpOp::Eq
        });
        if already {
            continue;
        }
        let conjunct = Expr::cmp_value(
            AttrRef::qualified(table.alias.clone(), fact.attr.attribute.clone()),
            CmpOp::Eq,
            fact.value.clone(),
        );
        added.push(format!(
            "{}.{} = {}{}",
            table.alias,
            fact.attr.attribute,
            fact.value,
            fact.rule_id
                .map(|id| format!(" (from R{id})"))
                .unwrap_or_default()
        ));
        new_query.where_clause = Some(match new_query.where_clause.take() {
            Some(w) => Expr::And(Box::new(w), Box::new(conjunct)),
            None => conjunct,
        });
    }

    if added.is_empty() {
        Ok(Optimized::Unchanged(new_query))
    } else {
        Ok(Optimized::Rewritten {
            query: new_query,
            added,
        })
    }
}

/// Is some restricted attribute's stored-value set disjoint from the
/// accumulated restriction ranges? (Sound only for current data — like
/// an intensional answer, the verdict describes the database as it is.)
fn provably_empty(db: &Database, analysis: &QueryAnalysis) -> Option<String> {
    // Keyed case-insensitively; display names keep the query's spelling.
    let mut per_attr: HashMap<(String, String), (String, String, ValueRange)> = HashMap::new();
    for r in &analysis.restrictions {
        let Some(range) = ValueRange::from_cmp(r.op, r.value.clone()) else {
            continue;
        };
        let key = (
            r.attr.relation.to_ascii_lowercase(),
            r.attr.attribute.to_ascii_lowercase(),
        );
        let merged = match per_attr.get(&key) {
            Some((_, _, existing)) => match existing.intersect(&range) {
                Some(i) => i,
                None => {
                    return Some(format!(
                        "contradictory conditions on {}.{}",
                        r.attr.relation, r.attr.attribute
                    ))
                }
            },
            None => range,
        };
        per_attr.insert(
            key,
            (r.attr.relation.clone(), r.attr.attribute.clone(), merged),
        );
    }
    for (rel, attr, range) in per_attr.into_values() {
        let Ok(relation) = db.get(&rel) else { continue };
        let Ok(values) = relation.distinct_values(&attr) else {
            continue;
        };
        if !values.iter().any(|v| !v.is_null() && range.contains(v)) {
            return Some(format!("no stored value of {rel}.{attr} satisfies {range}"));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_sql::parse;

    fn setup() -> (Database, KerModel, RuleSet) {
        let db = intensio_shipdb::ship_database().unwrap();
        let model = intensio_shipdb::ship_model().unwrap();
        let rules = intensio_induction::Ils::new(
            &model,
            intensio_induction::InductionConfig::with_min_support(3),
        )
        .induce(&db)
        .unwrap()
        .rules;
        (db, model, rules)
    }

    #[test]
    fn example1_gains_a_type_restriction() {
        let (db, model, rules) = setup();
        let q = parse(
            "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
        )
        .unwrap();
        let opt = optimize(&db, &model, &rules, &q).unwrap();
        match &opt {
            Optimized::Rewritten { query, added } => {
                assert!(added.iter().any(|a| a.contains("Type")), "{added:?}");
                // Semantics preserved: same extensional answer.
                let before = intensio_sql::execute(&db, &q).unwrap();
                let after = intensio_sql::execute(&db, query).unwrap();
                assert_eq!(before.len(), after.len());
            }
            other => panic!("expected rewrite, got {other:?}"),
        }
    }

    #[test]
    fn contradictory_conditions_detected() {
        let (db, model, rules) = setup();
        let q = parse("SELECT Class FROM CLASS WHERE Displacement > 9000 AND Displacement < 8000")
            .unwrap();
        let opt = optimize(&db, &model, &rules, &q).unwrap();
        assert!(matches!(opt, Optimized::ProvablyEmpty { .. }));
    }

    #[test]
    fn out_of_domain_condition_detected() {
        let (db, model, rules) = setup();
        // Max stored displacement is 30000.
        let q = parse("SELECT Class FROM CLASS WHERE Displacement > 50000").unwrap();
        let opt = optimize(&db, &model, &rules, &q).unwrap();
        match opt {
            Optimized::ProvablyEmpty { reason } => {
                assert!(reason.contains("Displacement"), "{reason}");
            }
            other => panic!("expected provably empty, got {other:?}"),
        }
        // And indeed the extensional answer is empty.
        assert_eq!(intensio_sql::execute(&db, &q).unwrap().len(), 0);
    }

    #[test]
    fn already_pinned_attribute_not_duplicated() {
        let (db, model, rules) = setup();
        let q = parse(
            "SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = \"SSBN\"",
        )
        .unwrap();
        let opt = optimize(&db, &model, &rules, &q).unwrap();
        if let Optimized::Rewritten { added, .. } = &opt {
            assert!(
                !added.iter().any(|a| a.contains("Type = \"SSBN\"")),
                "must not re-add the pinned Type restriction: {added:?}"
            );
        }
    }

    #[test]
    fn unconstrained_query_unchanged() {
        let (db, model, rules) = setup();
        let q = parse("SELECT Id FROM SUBMARINE").unwrap();
        let opt = optimize(&db, &model, &rules, &q).unwrap();
        assert!(matches!(opt, Optimized::Unchanged(_)));
    }

    #[test]
    fn rewrite_preserves_semantics_across_workload() {
        let (db, model, rules) = setup();
        for sql in [
            "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
            "SELECT SUBMARINE.NAME FROM SUBMARINE, CLASS, INSTALL \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND SUBMARINE.ID = INSTALL.SHIP \
             AND INSTALL.SONAR = \"BQS-04\"",
            "SELECT Class FROM CLASS WHERE Displacement < 3000",
        ] {
            let q = parse(sql).unwrap();
            let before = intensio_sql::execute(&db, &q).unwrap();
            match optimize(&db, &model, &rules, &q).unwrap() {
                Optimized::Rewritten { query, .. } | Optimized::Unchanged(query) => {
                    let after = intensio_sql::execute(&db, &query).unwrap();
                    assert_eq!(before.len(), after.len(), "changed semantics for {sql}");
                }
                Optimized::ProvablyEmpty { .. } => {
                    assert_eq!(before.len(), 0, "wrongly empty for {sql}");
                }
            }
        }
    }
}
