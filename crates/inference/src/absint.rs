//! Rule application over **abstract states**: the interval-lattice
//! abstract interpretation engine shared by the inference optimizer and
//! the `intensio-check` static analyzer.
//!
//! An [`AbstractState`] maps attributes to [`AbstractValue`]s — an
//! over-approximation of the set of tuples satisfying some condition.
//! The lattice per attribute is
//!
//! ```text
//!            ⊤  (unconstrained)
//!          /   \
//!   Range(..)   Set{..}      intervals with open/closed bounds,
//!          \   /             finite scalar sets
//!            ⊥  (provably empty)
//! ```
//!
//! [`saturate`] applies a rule set *forward* (the paper's Modus Ponens
//! direction) to a state until fixpoint: a rule fires when every premise
//! clause's range contains the state's abstract value for that
//! attribute — then **every** concrete tuple the state admits satisfies
//! the premise, so the conclusion must hold for all of them and is met
//! (∧) into the state. Chained derivations fall out naturally: one
//! rule's conclusion can tighten an attribute enough to fire another
//! rule premised on it. The result stays a superset of the concrete
//! answer set at every step (each meet only removes tuples the rules
//! prove impossible), so a ⊥ state is a *sound* emptiness proof —
//! assuming the rules themselves hold on the data, which is exactly the
//! contract induced rules carry.

use intensio_rules::range::ValueRange;
use intensio_rules::rule::RuleSet;
use intensio_storage::domain::{Bound, Domain, DomainConstraint};
use intensio_storage::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// The abstract value of one attribute: an over-approximation of the
/// values it can take in any tuple of the concrete set.
#[derive(Debug, Clone, PartialEq)]
pub enum AbstractValue {
    /// ⊤ — any value of the attribute's type.
    Top,
    /// An interval with optional open/closed endpoints (ints, floats,
    /// and lexicographically ordered strings all use this form).
    Range(ValueRange),
    /// A finite set of admissible scalars (e.g. a `set of {..}` domain),
    /// sorted and deduplicated for canonical display.
    Set(Vec<Value>),
    /// ⊥ — no value is admissible; the concrete set is provably empty.
    Bottom,
}

impl AbstractValue {
    /// A finite set, canonicalized (sorted, semantically deduplicated).
    /// An empty set is ⊥.
    pub fn set(mut values: Vec<Value>) -> AbstractValue {
        values.sort_by(|a, b| a.compare(b).unwrap_or(std::cmp::Ordering::Equal));
        values.dedup_by(|a, b| a.sem_eq(b));
        if values.is_empty() {
            AbstractValue::Bottom
        } else {
            AbstractValue::Set(values)
        }
    }

    /// Whether this is ⊥.
    pub fn is_bottom(&self) -> bool {
        matches!(self, AbstractValue::Bottom)
    }

    /// The meet (∧, conjunction): the abstract value admitting exactly
    /// what both operands admit — up to the usual interval imprecision,
    /// which only ever keeps the result a superset, never smaller.
    pub fn meet(&self, other: &AbstractValue) -> AbstractValue {
        match (self, other) {
            (AbstractValue::Bottom, _) | (_, AbstractValue::Bottom) => AbstractValue::Bottom,
            (AbstractValue::Top, v) | (v, AbstractValue::Top) => v.clone(),
            (AbstractValue::Range(a), AbstractValue::Range(b)) => match a.intersect(b) {
                Some(r) => AbstractValue::Range(r),
                None => AbstractValue::Bottom,
            },
            (AbstractValue::Set(a), AbstractValue::Set(b)) => AbstractValue::set(
                a.iter()
                    .filter(|v| b.iter().any(|w| w.sem_eq(v)))
                    .cloned()
                    .collect(),
            ),
            (AbstractValue::Set(s), AbstractValue::Range(r))
            | (AbstractValue::Range(r), AbstractValue::Set(s)) => {
                AbstractValue::set(s.iter().filter(|v| r.contains(v)).cloned().collect())
            }
        }
    }

    /// The join (∨, disjunction): the smallest representable value
    /// admitting everything either operand admits. Disjoint intervals
    /// join to their hull — an over-approximation, which is the sound
    /// direction for a superset analysis.
    pub fn join(&self, other: &AbstractValue) -> AbstractValue {
        match (self, other) {
            (AbstractValue::Top, _) | (_, AbstractValue::Top) => AbstractValue::Top,
            (AbstractValue::Bottom, v) | (v, AbstractValue::Bottom) => v.clone(),
            (AbstractValue::Set(a), AbstractValue::Set(b)) => {
                AbstractValue::set(a.iter().chain(b.iter()).cloned().collect())
            }
            (a, b) => match (a.as_range(), b.as_range()) {
                (Some(x), Some(y)) => match x.merge(&y) {
                    Some(hull) => AbstractValue::Range(hull),
                    // Disjoint and non-adjacent: take the convex hull.
                    None => match hull(&x, &y) {
                        Some(h) => AbstractValue::Range(h),
                        None => AbstractValue::Top,
                    },
                },
                _ => AbstractValue::Top,
            },
        }
    }

    /// An interval covering this value (exact for `Range`, the convex
    /// hull for `Set`), `None` for ⊤ (⊥ yields an empty-ish point-free
    /// `None` too — callers check [`AbstractValue::is_bottom`] first).
    pub fn as_range(&self) -> Option<ValueRange> {
        match self {
            AbstractValue::Range(r) => Some(r.clone()),
            AbstractValue::Set(vs) => {
                let lo = vs.first()?.clone();
                let hi = vs.last()?.clone();
                Some(ValueRange::closed(lo, hi))
            }
            AbstractValue::Top | AbstractValue::Bottom => None,
        }
    }

    /// Whether every concrete value this abstract value admits lies in
    /// `range` — the premise-containment test of forward application.
    /// ⊤ is contained only in the full range; ⊥ vacuously in anything.
    pub fn within(&self, range: &ValueRange) -> bool {
        match self {
            AbstractValue::Bottom => true,
            AbstractValue::Top => range.lo.is_none() && range.hi.is_none(),
            AbstractValue::Range(r) => range.subsumes(r),
            AbstractValue::Set(vs) => vs.iter().all(|v| range.contains(v)),
        }
    }

    /// The abstract value of an attribute constrained only by its
    /// declared domain: the meet of the domain's constraint stack
    /// (`range [..]` → interval, `set of {..}` → finite set; `char[n]`
    /// does not restrict the value lattice).
    pub fn from_domain(domain: &Domain) -> AbstractValue {
        let mut out = AbstractValue::Top;
        for c in domain.constraints() {
            let v = match c {
                DomainConstraint::Range {
                    lo,
                    lo_bound,
                    hi,
                    hi_bound,
                } => AbstractValue::Range(ValueRange {
                    lo: Some(endpoint(lo, *lo_bound)),
                    hi: Some(endpoint(hi, *hi_bound)),
                }),
                DomainConstraint::Set(vs) => AbstractValue::set(vs.clone()),
                DomainConstraint::CharLen(_) => continue,
            };
            out = out.meet(&v);
        }
        out
    }
}

fn endpoint(v: &Value, b: Bound) -> intensio_rules::range::Endpoint {
    intensio_rules::range::Endpoint {
        value: v.clone(),
        inclusive: b == Bound::Inclusive,
    }
}

/// The convex hull of two intervals whose endpoints compare.
fn hull(a: &ValueRange, b: &ValueRange) -> Option<ValueRange> {
    // `merge` already handles the touching cases; here the intervals are
    // disjoint, so the hull is simply the outermost bounds.
    let lo = match (&a.lo, &b.lo) {
        (None, _) | (_, None) => None,
        (Some(x), Some(y)) => match x.value.compare(&y.value).ok()? {
            std::cmp::Ordering::Less => Some(x.clone()),
            std::cmp::Ordering::Greater => Some(y.clone()),
            std::cmp::Ordering::Equal => Some(if x.inclusive { x.clone() } else { y.clone() }),
        },
    };
    let hi = match (&a.hi, &b.hi) {
        (None, _) | (_, None) => None,
        (Some(x), Some(y)) => match x.value.compare(&y.value).ok()? {
            std::cmp::Ordering::Greater => Some(x.clone()),
            std::cmp::Ordering::Less => Some(y.clone()),
            std::cmp::Ordering::Equal => Some(if x.inclusive { x.clone() } else { y.clone() }),
        },
    };
    Some(ValueRange { lo, hi })
}

impl fmt::Display for AbstractValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbstractValue::Top => write!(f, "⊤"),
            AbstractValue::Bottom => write!(f, "⊥"),
            AbstractValue::Range(r) => write!(f, "{r}"),
            AbstractValue::Set(vs) => {
                write!(f, "{{")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// An abstract state: per-attribute abstract values, keyed by
/// `(object, attribute)` lowercased. Attributes not present are ⊤.
/// The state as a whole is ⊥ as soon as any attribute is.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AbstractState {
    slots: BTreeMap<(String, String), AbstractValue>,
    empty: bool,
}

impl AbstractState {
    /// The ⊤ state (no constraints).
    pub fn new() -> AbstractState {
        AbstractState::default()
    }

    /// Whether the state is ⊥ — the concrete set is provably empty.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// The abstract value of `object.attribute` (⊤ when unconstrained).
    pub fn value_of(&self, object: &str, attribute: &str) -> &AbstractValue {
        self.slots
            .get(&key(object, attribute))
            .unwrap_or(&AbstractValue::Top)
    }

    /// Meet `v` into the slot for `object.attribute`. Returns whether
    /// the slot actually tightened. A ⊥ result marks the whole state ⊥.
    pub fn constrain(&mut self, object: &str, attribute: &str, v: &AbstractValue) -> bool {
        let slot = self
            .slots
            .entry(key(object, attribute))
            .or_insert(AbstractValue::Top);
        let met = slot.meet(v);
        if met == *slot {
            return false;
        }
        if met.is_bottom() {
            self.empty = true;
        }
        *slot = met;
        true
    }

    /// The constrained slots, in deterministic key order.
    pub fn slots(&self) -> impl Iterator<Item = (&(String, String), &AbstractValue)> {
        self.slots.iter()
    }
}

fn key(object: &str, attribute: &str) -> (String, String) {
    (object.to_ascii_lowercase(), attribute.to_ascii_lowercase())
}

/// The outcome of saturating a rule set over a state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Saturation {
    /// Rule ids in the order they (productively) fired. A rule appears
    /// each time its application tightened the state, so this is the
    /// derivation chain a refutation can cite.
    pub fired: Vec<u32>,
    /// Whether the state reached ⊥.
    pub empty: bool,
}

/// Apply `rules` forward over `state` until fixpoint (or until the
/// state reaches ⊥). Deterministic: rules are tried in id order, and
/// each pass applies every currently-enabled rule before re-testing.
///
/// Termination: every productive application strictly tightens one
/// slot by meeting it with a rule conclusion, and each slot can only
/// tighten finitely often (each meet either yields ⊥ or an interval
/// whose endpoints come from the finite set of rule/seed endpoints), so
/// the pass loop reaches a fixpoint; a generous pass cap guards the
/// degenerate cases.
pub fn saturate(rules: &RuleSet, state: &mut AbstractState) -> Saturation {
    saturate_excluding(rules, state, &[])
}

/// [`saturate`] with some rules held out — the rule-base lints saturate
/// a rule's premise over *the rest* of the set to test whether its own
/// conclusion is derivable without it.
pub fn saturate_excluding(rules: &RuleSet, state: &mut AbstractState, skip: &[u32]) -> Saturation {
    let mut out = Saturation::default();
    if state.is_empty() {
        out.empty = true;
        return out;
    }
    // Each productive pass fires at least one rule; a rule's conclusion
    // can tighten a slot at most twice (once per endpoint) before the
    // meet is idempotent, so 2·|rules| + 1 passes always suffice.
    let max_passes = rules.len() * 2 + 1;
    for _ in 0..max_passes {
        let mut changed = false;
        for rule in rules.iter() {
            if rule.lhs.is_empty() || skip.contains(&rule.id) {
                continue;
            }
            let applicable = rule.lhs.iter().all(|cl| {
                let v = state.value_of(&cl.attr.object, &cl.attr.attribute);
                !matches!(v, AbstractValue::Top) && v.within(&cl.range)
            });
            if !applicable {
                continue;
            }
            let conclusion = AbstractValue::Range(rule.rhs.range.clone());
            if state.constrain(&rule.rhs.attr.object, &rule.rhs.attr.attribute, &conclusion) {
                out.fired.push(rule.id);
                changed = true;
                if state.is_empty() {
                    out.empty = true;
                    return out;
                }
            }
        }
        if !changed {
            break;
        }
    }
    out.empty = state.is_empty();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_rules::rule::{AttrId, Clause, Rule};
    use intensio_storage::value::ValueType;

    fn rule(id: u32, attr: &str, lo: i64, hi: i64, concl_attr: &str, clo: i64, chi: i64) -> Rule {
        Rule::new(
            id,
            vec![Clause::between(AttrId::new("R", attr), lo, hi)],
            Clause::between(AttrId::new("R", concl_attr), clo, chi),
        )
        .with_support(5)
    }

    #[test]
    fn meet_and_join_lattice_laws() {
        let a = AbstractValue::Range(ValueRange::closed(0, 10));
        let b = AbstractValue::Range(ValueRange::closed(5, 20));
        assert_eq!(a.meet(&b), AbstractValue::Range(ValueRange::closed(5, 10)));
        assert_eq!(a.join(&b), AbstractValue::Range(ValueRange::closed(0, 20)));
        assert_eq!(a.meet(&AbstractValue::Top), a);
        assert_eq!(a.join(&AbstractValue::Top), AbstractValue::Top);
        assert_eq!(a.meet(&AbstractValue::Bottom), AbstractValue::Bottom);
        assert_eq!(a.join(&AbstractValue::Bottom), a);
        let c = AbstractValue::Range(ValueRange::closed(30, 40));
        assert_eq!(a.meet(&c), AbstractValue::Bottom);
        // Disjoint join over-approximates to the hull: sound for meets.
        assert_eq!(a.join(&c), AbstractValue::Range(ValueRange::closed(0, 40)));
    }

    #[test]
    fn sets_meet_ranges() {
        let s = AbstractValue::set(vec![Value::Int(1), Value::Int(5), Value::Int(9)]);
        let r = AbstractValue::Range(ValueRange::closed(2, 9));
        assert_eq!(
            s.meet(&r),
            AbstractValue::set(vec![Value::Int(5), Value::Int(9)])
        );
        let empty = s.meet(&AbstractValue::Range(ValueRange::closed(2, 4)));
        assert!(empty.is_bottom());
        assert!(s.within(&ValueRange::closed(0, 10)));
        assert!(!s.within(&ValueRange::closed(2, 10)));
    }

    #[test]
    fn from_domain_covers_constraint_kinds() {
        let d = Domain::int_range("DISPLACEMENT", 2000, 30000);
        assert_eq!(
            AbstractValue::from_domain(&d),
            AbstractValue::Range(ValueRange::closed(2000, 30000))
        );
        let s = Domain::named("TYPE", ValueType::Str).with_constraint(DomainConstraint::Set(vec![
            Value::str("SSN"),
            Value::str("SSBN"),
        ]));
        assert_eq!(
            AbstractValue::from_domain(&s),
            AbstractValue::set(vec![Value::str("SSBN"), Value::str("SSN")])
        );
        assert_eq!(
            AbstractValue::from_domain(&Domain::char_n(4)),
            AbstractValue::Top
        );
    }

    #[test]
    fn saturation_chains_two_rules() {
        // R1: A in [0,10] -> B in [5,5];  R2: B in [4,6] -> C in [1,2].
        let rules = RuleSet::from_rules([
            rule(0, "A", 0, 10, "B", 5, 5),
            rule(0, "B", 4, 6, "C", 1, 2),
        ]);
        let mut state = AbstractState::new();
        state.constrain("R", "A", &AbstractValue::Range(ValueRange::point(3)));
        let sat = saturate(&rules, &mut state);
        assert_eq!(sat.fired, vec![1, 2], "the chain fires in order");
        assert!(!sat.empty);
        assert_eq!(
            state.value_of("R", "C"),
            &AbstractValue::Range(ValueRange::closed(1, 2))
        );
        // Now also require C = 9: the meet is ⊥.
        let mut state = AbstractState::new();
        state.constrain("R", "A", &AbstractValue::Range(ValueRange::point(3)));
        state.constrain("R", "C", &AbstractValue::Range(ValueRange::point(9)));
        let sat = saturate(&rules, &mut state);
        assert!(sat.empty);
        assert!(state.is_empty());
    }

    #[test]
    fn top_premise_never_fires() {
        let rules = RuleSet::from_rules([rule(0, "A", 0, 10, "B", 5, 5)]);
        let mut state = AbstractState::new();
        state.constrain("R", "C", &AbstractValue::Range(ValueRange::point(1)));
        let sat = saturate(&rules, &mut state);
        assert!(
            sat.fired.is_empty(),
            "A is ⊤ — not every tuple satisfies the premise"
        );
    }

    #[test]
    fn partial_premise_coverage_never_fires() {
        let rules = RuleSet::from_rules([rule(0, "A", 0, 10, "B", 5, 5)]);
        let mut state = AbstractState::new();
        state.constrain("R", "A", &AbstractValue::Range(ValueRange::closed(5, 20)));
        let sat = saturate(&rules, &mut state);
        assert!(sat.fired.is_empty());
    }

    #[test]
    fn saturation_terminates_on_cyclic_rules() {
        // A -> B and B -> A: the fixpoint exists and is reached.
        let rules = RuleSet::from_rules([
            rule(0, "A", 0, 10, "B", 0, 10),
            rule(0, "B", 0, 10, "A", 0, 10),
        ]);
        let mut state = AbstractState::new();
        state.constrain("R", "A", &AbstractValue::Range(ValueRange::closed(2, 4)));
        let sat = saturate(&rules, &mut state);
        assert!(!sat.empty);
        assert!(sat.fired.len() <= 2);
    }

    #[test]
    fn multi_premise_rules_need_every_clause_contained() {
        let two = Rule::new(
            0,
            vec![
                Clause::between(AttrId::new("R", "A"), 0, 10),
                Clause::between(AttrId::new("R", "B"), 0, 10),
            ],
            Clause::between(AttrId::new("R", "C"), 1, 1),
        );
        let rules = RuleSet::from_rules([two]);
        let mut state = AbstractState::new();
        state.constrain("R", "A", &AbstractValue::Range(ValueRange::point(5)));
        let sat = saturate(&rules, &mut state);
        assert!(sat.fired.is_empty(), "B is unconstrained");
        state.constrain("R", "B", &AbstractValue::Range(ValueRange::point(5)));
        let sat = saturate(&rules, &mut state);
        assert_eq!(sat.fired, vec![1]);
    }
}
