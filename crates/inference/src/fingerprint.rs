//! Canonical cache keys for intensional answers.
//!
//! An intensional answer is a function of (a) the query's *conditions
//! and object types* — the analyzed relations, single-relation
//! restrictions, and equi-joins the inference engine consumes — and
//! (b) the knowledge state (database + rule set). It does **not**
//! depend on the select list, `DISTINCT`, ordering, or conjuncts the
//! analyzer classified as unsupported (the engine never reads them).
//!
//! [`condition_fingerprint`] renders (a) in a canonical form:
//! case-normalized, type-tagged constants, and order-independent across
//! conjuncts and join sides. Two queries with the same fingerprint get
//! the same intensional answer against the same knowledge state, so a
//! serving layer can cache on `(fingerprint, knowledge epoch)` —
//! the semantic-query-optimization reuse argument of [CHU90] applied
//! to answers instead of plans.

use intensio_sql::QueryAnalysis;
use intensio_storage::expr::CmpOp;
use intensio_storage::value::Value;

/// A canonical, order-independent rendering of the query structure the
/// inference engine consumes. Stable across formatting differences,
/// attribute-case differences, conjunct order, and join-side order.
pub fn condition_fingerprint(analysis: &QueryAnalysis) -> String {
    let mut relations: Vec<String> = analysis
        .relations
        .iter()
        .map(|t| t.name.to_ascii_lowercase())
        .collect();
    relations.sort();
    relations.dedup();

    let mut restrictions: Vec<String> = analysis
        .restrictions
        .iter()
        .map(|r| {
            format!(
                "{}.{}{}{}",
                r.attr.relation.to_ascii_lowercase(),
                r.attr.attribute.to_ascii_lowercase(),
                canonical_op(r.op),
                tagged_value(&r.value)
            )
        })
        .collect();
    restrictions.sort();

    let mut joins: Vec<String> = analysis
        .joins
        .iter()
        .map(|j| {
            let a = format!(
                "{}.{}",
                j.left.relation.to_ascii_lowercase(),
                j.left.attribute.to_ascii_lowercase()
            );
            let b = format!(
                "{}.{}",
                j.right.relation.to_ascii_lowercase(),
                j.right.attribute.to_ascii_lowercase()
            );
            if a <= b {
                format!("{a}~{b}")
            } else {
                format!("{b}~{a}")
            }
        })
        .collect();
    joins.sort();
    joins.dedup();

    format!(
        "from[{}];where[{}];join[{}]",
        relations.join(","),
        restrictions.join(","),
        joins.join(",")
    )
}

fn canonical_op(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

/// Type-tagged constant rendering, so `1` (integer) and `"1"` (string)
/// never collide.
fn tagged_value(v: &Value) -> String {
    match v {
        Value::Null => "n:".to_string(),
        Value::Int(i) => format!("i:{i}"),
        Value::Real(r) => format!("r:{}", r.to_bits()),
        Value::Str(s) => format!("s:{s}"),
        Value::Date(d) => format!("d:{d}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intensio_sql::{analyze, parse};
    use intensio_storage::prelude::*;
    use intensio_storage::tuple;

    fn db() -> Database {
        let mut db = Database::new();
        let sub = Schema::new(vec![
            Attribute::key("Id", Domain::char_n(7)),
            Attribute::new("Class", Domain::char_n(4)),
        ])
        .unwrap();
        let mut s = Relation::new("SUBMARINE", sub);
        s.insert(tuple!["SSBN730", "0101"]).unwrap();
        db.create(s).unwrap();
        let cls = Schema::new(vec![
            Attribute::key("Class", Domain::char_n(4)),
            Attribute::new("Type", Domain::char_n(4)),
            Attribute::new("Displacement", Domain::basic(ValueType::Int)),
        ])
        .unwrap();
        db.create(Relation::new("CLASS", cls)).unwrap();
        db
    }

    fn fp(sql: &str) -> String {
        let d = db();
        let q = parse(sql).unwrap();
        condition_fingerprint(&analyze(&d, &q).unwrap())
    }

    #[test]
    fn equivalent_queries_share_a_fingerprint() {
        // Different select list, conjunct order, join-side order,
        // attribute case, and whitespace: same conditions.
        let a = fp("SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000");
        let b = fp("SELECT CLASS.TYPE, SUBMARINE.NAME FROM SUBMARINE, CLASS \
             WHERE class.displacement > 8000 AND CLASS.CLASS = SUBMARINE.CLASS");
        assert_eq!(a, b);
    }

    #[test]
    fn different_conditions_differ() {
        let base = fp("SELECT Class FROM CLASS WHERE Displacement > 8000");
        assert_ne!(
            base,
            fp("SELECT Class FROM CLASS WHERE Displacement > 8001")
        );
        assert_ne!(
            base,
            fp("SELECT Class FROM CLASS WHERE Displacement >= 8000")
        );
        assert_ne!(base, fp("SELECT Class FROM CLASS"));
    }

    #[test]
    fn value_types_are_tagged() {
        let s = fp("SELECT Id FROM SUBMARINE WHERE Class = '8000'");
        let i = fp("SELECT Id FROM SUBMARINE WHERE Class = 8000");
        assert_ne!(s, i, "string and integer constants must not collide");
    }

    #[test]
    fn fingerprint_is_stable_shape() {
        let got = fp("SELECT Class FROM CLASS WHERE Displacement > 8000");
        assert_eq!(got, "from[class];where[class.displacement>i:8000];join[]");
    }
}
