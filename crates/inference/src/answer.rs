//! Intensional answers: the characterizations derived by type inference
//! (paper §4), with provenance and English rendering.

use intensio_rules::range::ValueRange;
use intensio_rules::rule::AttrId;
use intensio_storage::value::Value;
use std::fmt;

/// Which way a rule was applied during inference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Premise subsumed by the query: the conclusion holds for every
    /// answer (superset-sound).
    Forward,
    /// Consequence fixed by the query: the inverted premise describes a
    /// subset of the answer (subset-sound).
    Backward,
}

impl Direction {
    /// Wire name (`"forward"` / `"backward"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Forward => "forward",
            Direction::Backward => "backward",
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rule application behind an intensional answer: the provenance
/// record surfaced through the protocol's `EXPLAIN` verb and the
/// shell's `\explain` command.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleUse {
    /// The rule's id within the rule set.
    pub rule_id: u32,
    /// The rule's support count (tuples it was induced from).
    pub support: usize,
    /// The inference direction it was applied in.
    pub direction: Direction,
    /// The conclusion it contributed, rendered (`CLASS.Type = SSBN`).
    pub conclusion: String,
}

impl fmt::Display for RuleUse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "R{} ({}, support {}): {}",
            self.rule_id, self.direction, self.support, self.conclusion
        )
    }
}

/// A fact derived by *forward* inference: it holds for **every** tuple of
/// the extensional answer, so the characterization *contains* the answer
/// set (§4: "the intensional answers derived from forward inference
/// characterize a set of instances containing the extensional answer").
#[derive(Debug, Clone, PartialEq)]
pub struct ForwardFact {
    /// The concluded attribute.
    pub attr: AttrId,
    /// The concluded value.
    pub value: Value,
    /// The subtype the value selects in the type hierarchy, if any.
    pub subtype: Option<String>,
    /// The rule that fired (`None` when the fact came from hierarchy
    /// traversal rather than an induced rule).
    pub rule_id: Option<u32>,
}

impl fmt::Display for ForwardFact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.subtype {
            Some(s) => write!(f, "every answer isa {s} ({} = {})", self.attr, self.value),
            None => write!(f, "every answer has {} = {}", self.attr, self.value),
        }?;
        if let Some(id) = self.rule_id {
            write!(f, " [R{id}, forward]")?;
        }
        Ok(())
    }
}

/// A characterization derived by *backward* inference: instances with
/// `x` in `range` are known to satisfy `y = value`, so it describes a
/// **subset** of the extensional answer (§4: "contained in").
#[derive(Debug, Clone, PartialEq)]
pub struct BackwardCharacterization {
    /// The describing attribute.
    pub x: AttrId,
    /// Its range.
    pub range: ValueRange,
    /// The consequence attribute the query fixed.
    pub y: AttrId,
    /// The consequence value.
    pub value: Value,
    /// Subtype label of the consequence, if any.
    pub subtype: Option<String>,
    /// The rule used.
    pub rule_id: u32,
    /// Whether the characterization covers every matching instance:
    /// `Some(false)` reproduces the paper's Example 2 caveat (class 1301
    /// is SSBN but not covered by R5); `None` when completeness cannot
    /// be checked (cross-relation rules).
    pub complete: Option<bool>,
}

impl fmt::Display for BackwardCharacterization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let target = self
            .subtype
            .clone()
            .unwrap_or_else(|| format!("{} = {}", self.y, self.value));
        write!(f, "instances with {} {} are {target}", self.x, self.range)?;
        write!(f, " [R{}, backward", self.rule_id)?;
        match self.complete {
            Some(true) => write!(f, ", complete]"),
            Some(false) => write!(f, ", incomplete]"),
            None => write!(f, "]"),
        }
    }
}

/// The full intensional answer to a query.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntensionalAnswer {
    /// Forward conclusions (superset-sound).
    pub certain: Vec<ForwardFact>,
    /// Backward characterizations (subset-sound).
    pub partial: Vec<BackwardCharacterization>,
    /// Human-readable inference trace.
    pub steps: Vec<String>,
    /// Every rule application behind this answer, in firing order.
    pub provenance: Vec<RuleUse>,
}

impl IntensionalAnswer {
    /// Whether any inference succeeded.
    pub fn is_empty(&self) -> bool {
        self.certain.is_empty() && self.partial.is_empty()
    }

    /// The most specific forward subtype conclusions (those that are not
    /// ancestors of another conclusion are kept).
    pub fn subtypes(&self) -> Vec<&str> {
        self.certain
            .iter()
            .filter_map(|f| f.subtype.as_deref())
            .collect()
    }

    /// A single-sentence summary in the style of the paper's `A_I`
    /// answers, composing the forward conclusions with the most
    /// informative backward characterization — e.g. for Example 3:
    /// *"Every answer is a SSN; instances with SUBMARINE.Class in
    /// [0208, 0215] qualify."*
    pub fn headline(&self) -> Option<String> {
        let mut labels: Vec<String> = Vec::new();
        for f in &self.certain {
            let label = f
                .subtype
                .clone()
                .unwrap_or_else(|| format!("{} = {}", f.attr, f.value));
            if !labels.contains(&label) {
                labels.push(label);
            }
        }
        // Prefer a complete backward characterization; fall back to the
        // first one.
        let back = self
            .partial
            .iter()
            .find(|b| b.complete == Some(true))
            .or_else(|| self.partial.first());
        match (labels.is_empty(), back) {
            (true, None) => None,
            (false, None) => Some(format!("Every answer is a {}.", labels.join(" and "))),
            (true, Some(b)) => {
                let target = b
                    .subtype
                    .clone()
                    .unwrap_or_else(|| format!("{} = {}", b.y, b.value));
                Some(format!(
                    "Instances with {} {} are {target}{}.",
                    b.x,
                    b.range,
                    if b.complete == Some(false) {
                        " (not necessarily all of them)"
                    } else {
                        ""
                    }
                ))
            }
            (false, Some(b)) => Some(format!(
                "Every answer is a {}; instances with {} {} qualify{}.",
                labels.join(" and "),
                b.x,
                b.range,
                if b.complete == Some(false) {
                    " (among others)"
                } else {
                    ""
                }
            )),
        }
    }

    /// Render the answer as English sentences in the spirit of the
    /// paper's `A_I` examples.
    pub fn render(&self) -> String {
        if self.is_empty() {
            return "No intensional characterization could be derived.".to_string();
        }
        let mut out = String::new();
        for f in &self.certain {
            let sentence = match &f.subtype {
                Some(s) => format!(
                    "Every answer is a {s} ({}.{} = {}).",
                    f.attr.object,
                    f.attr.attribute,
                    f.value.render_bare()
                ),
                None => format!(
                    "Every answer has {}.{} = {}.",
                    f.attr.object,
                    f.attr.attribute,
                    f.value.render_bare()
                ),
            };
            let attribution = match f.rule_id {
                Some(id) => format!(" [by rule R{id}, forward inference]"),
                None => " [by type hierarchy]".to_string(),
            };
            out.push_str(&sentence);
            out.push_str(&attribution);
            out.push('\n');
        }
        for b in &self.partial {
            let target = b.subtype.clone().unwrap_or_else(|| {
                format!(
                    "{}.{} = {}",
                    b.y.object,
                    b.y.attribute,
                    b.value.render_bare()
                )
            });
            out.push_str(&format!(
                "Instances with {}.{} {} are {target}.",
                b.x.object, b.x.attribute, b.range
            ));
            out.push_str(&format!(" [by rule R{}, backward inference", b.rule_id));
            match b.complete {
                Some(true) => out.push_str("; this covers all such instances]"),
                Some(false) => out.push_str(
                    "; NOTE: this description is incomplete — other instances also qualify]",
                ),
                None => out.push(']'),
            }
            out.push('\n');
        }
        out
    }
}
