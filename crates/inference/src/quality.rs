//! Empirical quality metrics for intensional answers.
//!
//! §4 states two containment guarantees: forward conclusions describe a
//! set *containing* the extensional answer; backward characterizations
//! describe sets *contained in* it. This module checks both against the
//! actual extensional answer and quantifies how much of the answer the
//! backward characterizations cover — turning the paper's prose
//! guarantees into measured numbers (used by the `nc_sweep` bench).

use crate::answer::IntensionalAnswer;
use intensio_rules::rule::AttrId;
use intensio_storage::catalog::Database;
use intensio_storage::error::Result;
use intensio_storage::relation::Relation;
use intensio_storage::value::Value;

/// Quality measurements for one query's intensional answer.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerQuality {
    /// Extensional answer size.
    pub answer_size: usize,
    /// Forward facts checked against the answer tuples.
    pub forward_facts: usize,
    /// Forward facts violated by some answer tuple (must be 0: forward
    /// inference is superset-sound).
    pub forward_violations: usize,
    /// Backward characterizations checked.
    pub backward_chars: usize,
    /// Backward characterizations that wrongly describe a tuple *not*
    /// satisfying the consequence (must be 0 under the paper's exact
    /// induction settings).
    pub backward_unsound: usize,
    /// Fraction of answer tuples described by at least one backward
    /// characterization (1.0 = the descriptions are collectively
    /// complete; Example 2's pruned `R_new` shows up as < 1.0).
    pub backward_coverage: f64,
}

impl AnswerQuality {
    /// Whether both §4 containment guarantees held empirically.
    pub fn is_sound(&self) -> bool {
        self.forward_violations == 0 && self.backward_unsound == 0
    }
}

/// Locate the column of `attr` in an answer relation: matches the bare
/// attribute name or an alias-prefixed form (`c.Type`).
fn answer_column(answer: &Relation, attr: &AttrId) -> Option<usize> {
    let schema = answer.schema();
    schema.index_of(&attr.attribute).or_else(|| {
        schema.attributes().iter().position(|a| {
            a.name()
                .rsplit('.')
                .next()
                .map(|n| n.eq_ignore_ascii_case(&attr.attribute))
                .unwrap_or(false)
        })
    })
}

/// Evaluate an intensional answer against the extensional answer it
/// characterizes, plus the base database (for backward soundness: the
/// described instances must really satisfy the consequence).
pub fn evaluate(
    db: &Database,
    extensional: &Relation,
    intensional: &IntensionalAnswer,
) -> Result<AnswerQuality> {
    // Forward soundness: every answer tuple whose columns include the
    // concluded attribute must carry the concluded value.
    let mut forward_facts = 0usize;
    let mut forward_violations = 0usize;
    for f in &intensional.certain {
        let Some(col) = answer_column(extensional, &f.attr) else {
            continue; // conclusion not projected in the answer
        };
        forward_facts += 1;
        if extensional.iter().any(|t| !t.get(col).sem_eq(&f.value)) {
            forward_violations += 1;
        }
    }

    // Backward soundness + coverage. A characterization describes base
    // instances with X in range; soundness: each such instance satisfies
    // Y = value in the base relation (same-relation check); coverage:
    // answer tuples whose X column (if projected) falls in some
    // characterization's range.
    let mut backward_chars = 0usize;
    let mut backward_unsound = 0usize;
    for b in &intensional.partial {
        backward_chars += 1;
        if b.x.object.eq_ignore_ascii_case(&b.y.object) {
            if let Ok(rel) = db.get(&b.x.object) {
                let (Some(xi), Some(yi)) = (
                    rel.schema().index_of(&b.x.attribute),
                    rel.schema().index_of(&b.y.attribute),
                ) else {
                    continue;
                };
                let violated = rel
                    .iter()
                    .any(|t| b.range.contains(t.get(xi)) && !t.get(yi).sem_eq(&b.value));
                if violated {
                    backward_unsound += 1;
                }
            }
        }
    }

    let backward_coverage = if extensional.is_empty() || intensional.partial.is_empty() {
        if intensional.partial.is_empty() {
            0.0
        } else {
            1.0
        }
    } else {
        let mut covered = 0usize;
        for t in extensional.iter() {
            let is_covered = intensional.partial.iter().any(|b| {
                answer_column(extensional, &b.x)
                    .map(|col| b.range.contains(t.get(col)))
                    .unwrap_or(false)
            });
            if is_covered {
                covered += 1;
            }
        }
        covered as f64 / extensional.len() as f64
    };

    Ok(AnswerQuality {
        answer_size: extensional.len(),
        forward_facts,
        forward_violations,
        backward_chars,
        backward_unsound,
        backward_coverage,
    })
}

/// Check a forward fact directly against base data: every tuple of the
/// fact's relation matching `filter` must carry the concluded value.
/// Utility for tests that bypass the SQL layer.
pub fn forward_fact_holds(
    db: &Database,
    attr: &AttrId,
    value: &Value,
    filter: impl Fn(&intensio_storage::tuple::Tuple) -> bool,
) -> Result<bool> {
    let rel = db.get(&attr.object)?;
    let idx = rel.schema().require(&attr.object, &attr.attribute)?;
    Ok(rel
        .iter()
        .filter(|t| filter(t))
        .all(|t| t.get(idx).sem_eq(value)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{InferenceConfig, InferenceEngine};
    use intensio_induction::{Ils, InductionConfig};
    use intensio_sql::{analyze, parse};

    fn quality_of(sql: &str, nc: usize) -> AnswerQuality {
        let db = intensio_shipdb::ship_database().unwrap();
        let model = intensio_shipdb::ship_model().unwrap();
        let rules = Ils::new(&model, InductionConfig::with_min_support(nc))
            .induce(&db)
            .unwrap()
            .rules;
        let q = parse(sql).unwrap();
        let extensional = intensio_sql::execute(&db, &q).unwrap();
        let analysis = analyze(&db, &q).unwrap();
        let engine = InferenceEngine::new(&model, &rules, &db, InferenceConfig::default()).unwrap();
        let intensional = engine.infer(&analysis);
        evaluate(&db, &extensional, &intensional).unwrap()
    }

    const EXAMPLE2: &str = "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
         FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = \"SSBN\"";

    #[test]
    fn example1_is_sound() {
        let q = quality_of(
            "SELECT SUBMARINE.ID, CLASS.TYPE FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
            3,
        );
        assert!(q.is_sound(), "{q:?}");
        assert!(q.forward_facts >= 1);
        assert_eq!(q.answer_size, 2);
    }

    #[test]
    fn example2_coverage_reflects_the_pruned_rule() {
        // At N_c = 3 the class-range characterization misses 1301's boat
        // on the Class column, but the displacement characterization
        // still covers every answer row via... the Class column only —
        // coverage is measured on projected columns. The Typhoon row
        // (class 1301) is only covered if some characterization's range
        // contains its values.
        let q3 = quality_of(EXAMPLE2, 3);
        assert!(q3.is_sound());
        let q1 = quality_of(EXAMPLE2, 1);
        assert!(q1.is_sound());
        assert!(
            q1.backward_coverage >= q3.backward_coverage,
            "more rules cannot reduce coverage: {} vs {}",
            q1.backward_coverage,
            q3.backward_coverage
        );
        assert_eq!(q1.backward_coverage, 1.0, "N_c = 1 keeps R_new: complete");
    }

    #[test]
    fn forward_fact_holds_on_base_data() {
        let db = intensio_shipdb::ship_database().unwrap();
        // Every class with displacement > 8000 is SSBN.
        let ok = forward_fact_holds(
            &db,
            &AttrId::new("CLASS", "Type"),
            &Value::str("SSBN"),
            |t| t.get(3).as_int().map(|d| d > 8000).unwrap_or(false),
        )
        .unwrap();
        assert!(ok);
        // ... but not every class with displacement > 5000.
        let not_ok = forward_fact_holds(
            &db,
            &AttrId::new("CLASS", "Type"),
            &Value::str("SSBN"),
            |t| t.get(3).as_int().map(|d| d > 5000).unwrap_or(false),
        )
        .unwrap();
        assert!(!not_ok);
    }
}
