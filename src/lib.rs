//! # intensio
//!
//! A full reproduction of **Wesley W. Chu and Rei-Chi Lee, "Using Type
//! Inference and Induced Rules to Provide Intensional Answers" (ICDE
//! 1991)** as a Rust workspace: an *intensional* query answering system
//! that replies with characterizations ("every answer is an SSBN")
//! instead of — or alongside — enumerated tuples.
//!
//! This umbrella crate re-exports the workspace:
//!
//! | crate | role |
//! |---|---|
//! | [`storage`] | in-memory relational engine (INGRES stand-in) |
//! | [`quel`] | QUEL subset — the language of the §5.2.1 algorithm |
//! | [`sql`] | SQL subset + query analysis for inference |
//! | [`ker`] | the Knowledge-based E-R model (§2, Appendix A) |
//! | [`rules`] | rules, interval algebra, rule relations (§5.2.2) |
//! | [`induction`] | the model-based ILS (§3, §5.2) |
//! | [`inference`] | forward/backward type inference (§4) |
//! | [`core`] | the assembled system (Figure 6) |
//! | [`serve`] | concurrent query service: snapshots, cache, TCP |
//! | [`fault`] | failpoint framework for fault injection & chaos tests |
//! | [`shipdb`] | the naval test bed (§6, Appendices B/C) |
//!
//! ## Quickstart
//!
//! ```
//! use intensio::prelude::*;
//!
//! let mut iqp = IntensionalQueryProcessor::new(
//!     intensio::shipdb::ship_database().unwrap(),
//!     intensio::shipdb::ship_model().unwrap(),
//! );
//! iqp.learn().unwrap();
//! let a = iqp.query(
//!     "SELECT SUBMARINE.NAME, SUBMARINE.CLASS FROM SUBMARINE, CLASS \
//!      WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = \"SSBN\"",
//! ).unwrap();
//! println!("{}", a.render());
//! assert_eq!(a.extensional.len(), 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use intensio_check as check;
pub use intensio_core as core;
pub use intensio_fault as fault;
pub use intensio_induction as induction;
pub use intensio_inference as inference;
pub use intensio_ker as ker;
pub use intensio_obs as obs;
pub use intensio_quel as quel;
pub use intensio_rules as rules;
pub use intensio_serve as serve;
pub use intensio_shipdb as shipdb;
pub use intensio_sql as sql;
pub use intensio_storage as storage;

/// The most common items, for glob import.
pub mod prelude {
    pub use intensio_core::{
        load_workspace, save_workspace, summarize, Answer, AnswerSummary, DataDictionary,
        IntensionalQueryProcessor, IqpError,
    };
    pub use intensio_induction::{Ils, InductionConfig};
    pub use intensio_inference::{
        optimize, InferenceConfig, InferenceEngine, IntensionalAnswer, Optimized, SubsumptionMode,
    };
    pub use intensio_ker::model::KerModel;
    pub use intensio_rules::prelude::*;
    pub use intensio_storage::prelude::*;
}
