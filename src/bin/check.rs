//! `check` — the intensio static analyzer, wired for CI.
//!
//! ```text
//! check [OPTIONS] [SCHEMA.ker ...]
//! check fsck [--json] [--deny-warnings] DATA_DIR
//!
//!   fsck DATA_DIR       offline audit of a serve data directory:
//!                       WAL frame walk, epoch/term chain, checkpoint
//!                       manifests, atomic-write debris (IC060-IC066)
//!   --shipdb            check the built-in Appendix B/C ship database:
//!                       schema lints + rule lints over a freshly
//!                       induced rule set
//!   --sql QUERY         check one SQL query (against --shipdb state)
//!   --quel SCRIPT       check one QUEL script (against --shipdb state)
//!   --mutate NAME       apply a seeded mutation before checking:
//!                       isa-cycle | rule-conflict | empty-query
//!   --nc N              support threshold for the rule lints
//!                       (default: the induction default)
//!   --json              machine-readable output
//!   --deny-warnings     exit nonzero on warnings too
//! ```
//!
//! Exit status: 0 when clean, 1 when any Error (or, with
//! `--deny-warnings`, any Warn) was found, 2 on usage or I/O errors.

use intensio::check::{self, Report, RuleCheckConfig};
use intensio::induction::{Ils, InductionConfig};
use intensio::rules::rule::{AttrId, Clause, Rule};
use std::process::ExitCode;

struct Opts {
    files: Vec<String>,
    shipdb: bool,
    sql: Vec<String>,
    quel: Vec<String>,
    mutate: Option<String>,
    nc: Option<usize>,
    json: bool,
    deny_warnings: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: check [--shipdb] [--sql QUERY] [--quel SCRIPT] \
         [--mutate isa-cycle|rule-conflict|empty-query] [--nc N] \
         [--json] [--deny-warnings] [SCHEMA.ker ...]\n       \
         check fsck [--json] [--deny-warnings] DATA_DIR"
    );
    ExitCode::from(2)
}

/// `check fsck [--json] [--deny-warnings] DATA_DIR` — audit a serve
/// data directory offline and render the findings like any other pass.
fn run_fsck(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut dir = None;
    for a in args {
        match a.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => return usage(),
            f if !f.starts_with('-') && dir.is_none() => dir = Some(f.to_string()),
            _ => return usage(),
        }
    }
    let Some(dir) = dir else { return usage() };
    let path = std::path::Path::new(&dir);
    if !path.is_dir() {
        eprintln!("check: fsck: {dir} is not a directory");
        return ExitCode::from(2);
    }
    let report = check::check_data_dir(path);
    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.fails(deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn parse_args() -> Result<Opts, ExitCode> {
    let mut opts = Opts {
        files: Vec::new(),
        shipdb: false,
        sql: Vec::new(),
        quel: Vec::new(),
        mutate: None,
        nc: None,
        json: false,
        deny_warnings: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--shipdb" => opts.shipdb = true,
            "--sql" => opts.sql.push(args.next().ok_or_else(usage)?),
            "--quel" => opts.quel.push(args.next().ok_or_else(usage)?),
            "--mutate" => opts.mutate = Some(args.next().ok_or_else(usage)?),
            "--nc" => {
                let n = args.next().ok_or_else(usage)?;
                opts.nc = Some(n.parse().map_err(|_| usage())?);
            }
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--help" | "-h" => return Err(usage()),
            f if !f.starts_with('-') => opts.files.push(f.to_string()),
            _ => return Err(usage()),
        }
    }
    if !opts.shipdb
        && opts.files.is_empty()
        && opts.sql.is_empty()
        && opts.quel.is_empty()
        && opts.mutate.is_none()
    {
        return Err(usage());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("fsck") {
        return run_fsck(&argv[1..]);
    }

    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };

    let mutate = opts.mutate.as_deref();
    match mutate {
        None | Some("isa-cycle") | Some("rule-conflict") | Some("empty-query") => {}
        Some(other) => {
            eprintln!("check: unknown mutation {other}");
            return usage();
        }
    }

    let mut report = Report::new();

    // Standalone schema files.
    for f in &opts.files {
        match std::fs::read_to_string(f) {
            Ok(src) => {
                let mut r = check::check_schema_text(&src);
                for d in &mut r.diagnostics {
                    d.origin = f.to_string();
                }
                report.merge(r);
            }
            Err(e) => {
                eprintln!("check: cannot read {f}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    // The built-in test bed, optionally mutated.
    let needs_shipdb =
        opts.shipdb || mutate.is_some() || !opts.sql.is_empty() || !opts.quel.is_empty();
    if needs_shipdb {
        let mut schema_src = intensio::shipdb::SHIP_SCHEMA_KER.to_string();
        if mutate == Some("isa-cycle") {
            // SSBN already derives from CLASS; closing the loop the other
            // way creates CLASS -> SSBN -> CLASS.
            schema_src.push_str("\nCLASS isa SSBN with Type = \"SSBN\"\n");
        }
        report.merge(check::check_schema_text(&schema_src));

        let db = match intensio::shipdb::ship_database() {
            Ok(db) => db,
            Err(e) => {
                eprintln!("check: ship database failed to load: {e}");
                return ExitCode::from(2);
            }
        };
        let model = match intensio::shipdb::ship_model() {
            Ok(m) => m,
            Err(e) => {
                eprintln!("check: ship model failed to resolve: {e}");
                return ExitCode::from(2);
            }
        };

        let cfg = match opts.nc {
            Some(n) => InductionConfig::with_min_support(n),
            None => InductionConfig::default(),
        };
        let mut rules = match Ils::new(&model, cfg).induce(&db) {
            Ok(out) => out.rules,
            Err(e) => {
                eprintln!("check: induction failed: {e}");
                return ExitCode::from(2);
            }
        };
        if mutate == Some("rule-conflict") {
            // A premise overlapping the paper's R9 (7250 <= Displacement
            // <= 30000 => SSBN) that concludes SSN instead.
            rules.push(
                Rule::new(
                    0,
                    vec![Clause::between(
                        AttrId::new("CLASS", "Displacement"),
                        6000,
                        9000,
                    )],
                    Clause::equals(AttrId::new("CLASS", "Type"), "SSN"),
                )
                .with_subtype("SSN")
                .with_support(4),
            );
        }
        let rule_cfg = RuleCheckConfig {
            min_support: cfg.min_support,
        };
        report.merge(check::check_rules(&rules, Some(&db), &rule_cfg));

        let mut sql = opts.sql.clone();
        let quel = opts.quel.clone();
        if mutate == Some("empty-query") {
            // The induced rule concludes Type = SSBN for every class in
            // the 8000..9000 displacement band; requiring SSN as well is
            // provably empty.
            sql.push(
                "SELECT Class FROM CLASS WHERE Displacement >= 8000 \
                 AND Displacement <= 9000 AND Type = \"SSN\""
                    .to_string(),
            );
        }
        for q in &sql {
            report.merge(check::check_sql(q, &db, &rules));
        }
        for q in &quel {
            report.merge(check::check_quel(q, &db, &rules));
        }
    }

    report.sort();
    if opts.json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    if report.fails(opts.deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
