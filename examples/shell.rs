//! An interactive shell over the intensional query processing system —
//! the closest thing to sitting at the 1990 prototype's terminal.
//!
//! Accepts SQL (`SELECT ...`), QUEL (`range of ...`, `retrieve ...`,
//! `delete ...`, `append ...`, `replace ...`), and dot-commands; starts
//! with the ship test bed loaded.
//!
//! ```sh
//! cargo run --example shell            # interactive
//! echo '.rules' | cargo run --example shell   # scripted
//! ```

use intensio::prelude::*;
use std::io::{self, BufRead, Write};

const HELP: &str = "\
commands:
  SELECT ...              run a SQL query (extensional + intensional answer)
  range of / retrieve /   run a QUEL statement against the database
  delete / append / replace
  .learn [N_c]            run the inductive learning subsystem (default N_c = 3)
  .rules                  show the induced rule set
  .dict                   show the intelligent data dictionary (frames + rules)
  .explain SELECT ...     show the executor's plan for a query
  .tables                 list relations
  .schema REL             show a relation's schema
  .show REL               print a relation's contents
  .save DIR / .load DIR   persist / restore the database as CSV files
  .help                   this text
  .quit                   exit";

struct Shell {
    iqp: IntensionalQueryProcessor,
    quel: intensio::quel::Session,
}

impl Shell {
    fn new() -> Shell {
        let db = intensio::shipdb::ship_database().expect("test bed builds");
        let model = intensio::shipdb::ship_model().expect("schema parses");
        Shell {
            iqp: IntensionalQueryProcessor::new(db, model),
            quel: intensio::quel::Session::new(),
        }
    }

    fn dispatch(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return true;
        }
        let lower = line.to_ascii_lowercase();
        let result: std::result::Result<String, String> = if line == ".quit" || line == ".exit" {
            return false;
        } else if line == ".help" {
            Ok(HELP.to_string())
        } else if let Some(rest) = line.strip_prefix(".learn") {
            let nc: usize = rest.trim().parse().unwrap_or(3);
            self.iqp
                .learn_with_nc(nc)
                .map(|stats| {
                    format!(
                        "examined {} pairs, kept {} rules (N_c = {nc})",
                        stats.pairs_examined, stats.rules_kept
                    )
                })
                .map_err(|e| e.to_string())
        } else if line == ".rules" {
            Ok(self.iqp.dictionary().rules().to_string())
        } else if line == ".dict" {
            Ok(self.iqp.dictionary().to_string())
        } else if line == ".tables" {
            Ok(self
                .iqp
                .db()
                .relations()
                .map(|r| format!("{} ({} tuples)", r.name(), r.len()))
                .collect::<Vec<_>>()
                .join("\n"))
        } else if let Some(sql) = line.strip_prefix(".explain ") {
            intensio::sql::parse(sql.trim())
                .map_err(|e| e.to_string())
                .and_then(|q| intensio::sql::explain(self.iqp.db(), &q).map_err(|e| e.to_string()))
        } else if let Some(rel) = line.strip_prefix(".schema ") {
            self.iqp
                .db()
                .get(rel.trim())
                .map(|r| format!("{} {}", r.name(), r.schema()))
                .map_err(|e| e.to_string())
        } else if let Some(rel) = line.strip_prefix(".show ") {
            self.iqp
                .db()
                .get(rel.trim())
                .map(|r| r.to_table())
                .map_err(|e| e.to_string())
        } else if let Some(dir) = line.strip_prefix(".save ") {
            intensio::storage::persist::save_database(
                self.iqp.db(),
                std::path::Path::new(dir.trim()),
            )
            .map(|()| format!("saved to {}", dir.trim()))
            .map_err(|e| e.to_string())
        } else if let Some(dir) = line.strip_prefix(".load ") {
            intensio::storage::persist::load_database(std::path::Path::new(dir.trim()))
                .map(|db| {
                    *self.iqp.db_mut() = db;
                    "loaded (rules invalidated; re-run .learn)".to_string()
                })
                .map_err(|e| e.to_string())
        } else if lower.starts_with("select") {
            self.iqp
                .query(line)
                .map(|a| a.render())
                .map_err(|e| e.to_string())
        } else if ["range", "retrieve", "delete", "append", "replace"]
            .iter()
            .any(|k| lower.starts_with(k))
        {
            // QUEL goes straight at the database. Statements that change
            // base data invalidate learned rules; `range of`, plain
            // `retrieve`, and `retrieve into` (scratch relations) do not.
            let mutating = ["delete", "append", "replace"]
                .iter()
                .any(|k| lower.starts_with(k));
            let db = if mutating {
                self.iqp.db_mut()
            } else {
                self.iqp.db_mut_preserving_rules()
            };
            self.quel
                .execute(db, line)
                .map(|out| match out {
                    intensio::quel::Output::Relation(r) => r.to_table(),
                    intensio::quel::Output::Stored(name) => format!("stored into {name}"),
                    intensio::quel::Output::Affected(n) => format!("{n} tuples affected"),
                    intensio::quel::Output::None => "ok".to_string(),
                })
                .map_err(|e| e.to_string())
        } else {
            Err(format!("unrecognized input (try .help): {line}"))
        };
        match result {
            Ok(s) => println!("{s}"),
            Err(e) => println!("error: {e}"),
        }
        true
    }
}

trait LearnWithNc {
    fn learn_with_nc(
        &mut self,
        nc: usize,
    ) -> std::result::Result<intensio::induction::IlsStats, IqpError>;
}

impl LearnWithNc for IntensionalQueryProcessor {
    fn learn_with_nc(
        &mut self,
        nc: usize,
    ) -> std::result::Result<intensio::induction::IlsStats, IqpError> {
        // Rebuild with the requested threshold, preserving the database.
        let db = self.db().clone();
        let model = self.dictionary().model().clone();
        *self = IntensionalQueryProcessor::new(db, model)
            .with_induction_config(InductionConfig::with_min_support(nc));
        self.learn()
    }
}

fn main() {
    println!("intensio shell — ship test bed loaded; .help for commands");
    let mut shell = Shell::new();
    let stdin = io::stdin();
    let interactive = atty_stdin();
    loop {
        if interactive {
            print!("intensio> ");
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !shell.dispatch(&line) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Crude interactivity check without a dependency: honoring an env
/// override, default to non-interactive (no prompt noise when piped).
fn atty_stdin() -> bool {
    std::env::var("INTENSIO_INTERACTIVE").is_ok()
}
