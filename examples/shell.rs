//! An interactive shell over the intensional query processing system —
//! the closest thing to sitting at the 1990 prototype's terminal.
//!
//! Accepts SQL (`SELECT ...`), QUEL (`range of ...`, `retrieve ...`,
//! `delete ...`, `append ...`, `replace ...`), and dot-commands; starts
//! with the ship test bed loaded.
//!
//! ```sh
//! cargo run --example shell            # interactive, in-process
//! echo '.rules' | cargo run --example shell   # scripted
//! cargo run --example shell -- --connect 127.0.0.1:7878   # remote
//! ```
//!
//! With `--connect HOST:PORT` the shell speaks the `intensio-serve`
//! wire protocol to a running `serve` binary instead of embedding the
//! processor: SQL and QUEL inputs are shipped over TCP, responses are
//! decoded from JSON and pretty-printed with their serving metadata
//! (epoch, cache hit, rule freshness, soundness class).

use intensio::prelude::*;
use std::io::{self, BufRead, Write};

const HELP: &str = "\
commands:
  SELECT ...              run a SQL query (extensional + intensional answer)
  range of / retrieve /   run a QUEL statement against the database
  delete / append / replace
  .learn [N_c]            run the inductive learning subsystem (default N_c = 3)
  .rules                  show the induced rule set
  .dict                   show the intelligent data dictionary (frames + rules)
  .explain SELECT ...     show the executor's plan for a query
  \\explain SELECT ...     show the answer's provenance: which induced
                          rules fired, their supports, and the
                          inference direction (forward/backward)
  .check [SELECT ...]     static analysis: lint the schema and induced
                          rules (no argument), or lint a query against
                          them without executing it
  .tables                 list relations
  .schema REL             show a relation's schema
  .show REL               print a relation's contents
  .save DIR / .load DIR   persist / restore the database as CSV files
  .help                   this text
  .quit                   exit";

struct Shell {
    iqp: IntensionalQueryProcessor,
    quel: intensio::quel::Session,
}

impl Shell {
    fn new() -> Shell {
        let db = intensio::shipdb::ship_database().expect("test bed builds");
        let model = intensio::shipdb::ship_model().expect("schema parses");
        Shell {
            iqp: IntensionalQueryProcessor::new(db, model),
            quel: intensio::quel::Session::new(),
        }
    }

    fn dispatch(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return true;
        }
        let lower = line.to_ascii_lowercase();
        let result: std::result::Result<String, String> = if line == ".quit" || line == ".exit" {
            return false;
        } else if line == ".help" {
            Ok(HELP.to_string())
        } else if let Some(rest) = line.strip_prefix(".learn") {
            let nc: usize = rest.trim().parse().unwrap_or(3);
            self.iqp
                .learn_with_nc(nc)
                .map(|stats| {
                    format!(
                        "examined {} pairs, kept {} rules (N_c = {nc})",
                        stats.pairs_examined, stats.rules_kept
                    )
                })
                .map_err(|e| e.to_string())
        } else if line == ".check" || line.starts_with(".check ") {
            Ok(self.run_check(line.strip_prefix(".check").unwrap_or("").trim()))
        } else if line == ".rules" {
            Ok(self.iqp.dictionary().rules().to_string())
        } else if line == ".dict" {
            Ok(self.iqp.dictionary().to_string())
        } else if line == ".tables" {
            Ok(self
                .iqp
                .db()
                .relations()
                .map(|r| format!("{} ({} tuples)", r.name(), r.len()))
                .collect::<Vec<_>>()
                .join("\n"))
        } else if let Some(sql) = line.strip_prefix(".explain ") {
            intensio::sql::parse(sql.trim())
                .map_err(|e| e.to_string())
                .and_then(|q| intensio::sql::explain(self.iqp.db(), &q).map_err(|e| e.to_string()))
        } else if let Some(sql) = line.strip_prefix("\\explain ") {
            self.iqp
                .query_intensional(sql.trim())
                .map(|a| render_provenance(&a))
                .map_err(|e| e.to_string())
        } else if let Some(rel) = line.strip_prefix(".schema ") {
            self.iqp
                .db()
                .get(rel.trim())
                .map(|r| format!("{} {}", r.name(), r.schema()))
                .map_err(|e| e.to_string())
        } else if let Some(rel) = line.strip_prefix(".show ") {
            self.iqp
                .db()
                .get(rel.trim())
                .map(|r| r.to_table())
                .map_err(|e| e.to_string())
        } else if let Some(dir) = line.strip_prefix(".save ") {
            intensio::storage::persist::save_database(
                self.iqp.db(),
                std::path::Path::new(dir.trim()),
            )
            .map(|()| format!("saved to {}", dir.trim()))
            .map_err(|e| e.to_string())
        } else if let Some(dir) = line.strip_prefix(".load ") {
            intensio::storage::persist::load_database(std::path::Path::new(dir.trim()))
                .map(|db| {
                    *self.iqp.db_mut() = db;
                    "loaded (rules invalidated; re-run .learn)".to_string()
                })
                .map_err(|e| e.to_string())
        } else if lower.starts_with("select") {
            self.iqp
                .query(line)
                .map(|a| a.render())
                .map_err(|e| e.to_string())
        } else if ["range", "retrieve", "delete", "append", "replace"]
            .iter()
            .any(|k| lower.starts_with(k))
        {
            // QUEL goes straight at the database. Statements that change
            // base data invalidate learned rules; `range of`, plain
            // `retrieve`, and `retrieve into` (scratch relations) do not.
            let mutating = ["delete", "append", "replace"]
                .iter()
                .any(|k| lower.starts_with(k));
            let db = if mutating {
                self.iqp.db_mut()
            } else {
                self.iqp.db_mut_preserving_rules()
            };
            self.quel
                .execute(db, line)
                .map(|out| match out {
                    intensio::quel::Output::Relation(r) => r.to_table(),
                    intensio::quel::Output::Stored(name) => format!("stored into {name}"),
                    intensio::quel::Output::Affected(n) => format!("{n} tuples affected"),
                    intensio::quel::Output::None => "ok".to_string(),
                })
                .map_err(|e| e.to_string())
        } else {
            Err(format!("unrecognized input (try .help): {line}"))
        };
        match result {
            Ok(s) => println!("{s}"),
            Err(e) => println!("error: {e}"),
        }
        true
    }

    /// `.check`: run the static analyzer against the live state — the
    /// ship schema plus the current rule set, or (with an argument) a
    /// query against the current catalog and rules.
    fn run_check(&self, arg: &str) -> String {
        use intensio::check;
        let mut report = if arg.is_empty() {
            let mut r = check::check_schema_text(intensio::shipdb::SHIP_SCHEMA_KER);
            r.merge(check::check_rules(
                self.iqp.dictionary().rules(),
                Some(self.iqp.db()),
                &check::RuleCheckConfig::default(),
            ));
            r
        } else if arg.to_ascii_lowercase().starts_with("select") {
            check::check_sql(arg, self.iqp.db(), self.iqp.dictionary().rules())
        } else {
            check::check_quel(arg, self.iqp.db(), self.iqp.dictionary().rules())
        };
        report.sort();
        report.render_text().trim_end().to_string()
    }
}

/// Render an answer's provenance for the shell's `\explain` command:
/// one line per rule application, then the headline.
fn render_provenance(a: &intensio::inference::IntensionalAnswer) -> String {
    if a.provenance.is_empty() {
        return "no induced rules fired for this query".to_string();
    }
    let mut out = String::from("Provenance (rules behind the intensional answer):\n");
    for u in &a.provenance {
        out.push_str(&format!("  {u}\n"));
    }
    if let Some(h) = a.headline() {
        out.push_str(&format!("In short: {h}"));
    } else {
        out.pop();
    }
    out
}

trait LearnWithNc {
    fn learn_with_nc(
        &mut self,
        nc: usize,
    ) -> std::result::Result<intensio::induction::IlsStats, IqpError>;
}

impl LearnWithNc for IntensionalQueryProcessor {
    fn learn_with_nc(
        &mut self,
        nc: usize,
    ) -> std::result::Result<intensio::induction::IlsStats, IqpError> {
        // Rebuild with the requested threshold, preserving the database.
        let db = self.db().clone();
        let model = self.dictionary().model().clone();
        *self = IntensionalQueryProcessor::new(db, model)
            .with_induction_config(InductionConfig::with_min_support(nc));
        self.learn()
    }
}

/// The remote mode: translate shell input lines into wire-protocol
/// requests and render the JSON replies.
struct RemoteShell {
    client: intensio::serve::Client,
    /// The address currently connected to; changes when a failover
    /// redirect points the shell at the new primary.
    addr: String,
    /// The node's role ("primary" / "follower" / "candidate"), fetched
    /// at connect so the prompt shows where writes will and won't be
    /// accepted.
    role: String,
}

impl RemoteShell {
    fn connect(addr: &str) -> std::io::Result<RemoteShell> {
        let mut client = intensio::serve::Client::connect(addr)?;
        let role = client
            .roundtrip("STATS")
            .ok()
            .and_then(|line| {
                use intensio::serve::json;
                let v = json::parse(&line).ok()?;
                Some(v.get("role")?.as_str()?.to_string())
            })
            .unwrap_or_else(|| "primary".to_string());
        Ok(RemoteShell {
            client,
            addr: addr.to_string(),
            role,
        })
    }

    /// When a reply is a failover redirect — `REDIRECT <host:port>
    /// term=<t>: ...` from a lagging follower, or a `READONLY: this
    /// node is a follower of <host:port>; ...` write refusal — return
    /// the primary's address so the request can be retried there.
    fn failover_target(json_line: &str) -> Option<String> {
        use intensio::serve::json::{self, Json};
        let v = json::parse(json_line).ok()?;
        if v.get("ok").and_then(Json::as_bool) == Some(true) {
            return None;
        }
        let msg = v.get("error").and_then(Json::as_str)?;
        let addr = if let Some(rest) = msg.strip_prefix("REDIRECT ") {
            rest.split_whitespace().next()?.to_string()
        } else if let Some(rest) = msg.strip_prefix("READONLY: this node is a follower of ") {
            rest.split([';', ' ']).next()?.to_string()
        } else {
            return None;
        };
        addr.contains(':').then_some(addr)
    }

    /// Follow a failover redirect: reconnect to the named primary and
    /// retry the request once. The refusing node never applied the
    /// request, so the retry cannot double-apply a write.
    fn retry_at(&mut self, target: &str, request: &str) -> std::io::Result<String> {
        let mut next = RemoteShell::connect(target)?;
        let reply = next.client.roundtrip(request)?;
        let note = format!("(redirected to {target} [{}])", next.role);
        *self = next;
        Ok(format!("{note}\n{}", Self::render(&reply)))
    }

    /// Map a shell line to a request line, or `None` to quit.
    fn to_request(line: &str) -> std::result::Result<Option<String>, String> {
        let lower = line.to_ascii_lowercase();
        if line == ".quit" || line == ".exit" {
            return Ok(None);
        }
        if line == ".stats" {
            return Ok(Some("STATS".to_string()));
        }
        if line == ".fault" {
            return Ok(Some("FAULT LIST".to_string()));
        }
        if let Some(rest) = line.strip_prefix(".fault ") {
            return Ok(Some(format!("FAULT {}", rest.trim())));
        }
        if line == ".check" {
            return Ok(Some("CHECK".to_string()));
        }
        if let Some(rest) = line.strip_prefix(".check ") {
            return Ok(Some(format!(
                "CHECK {}",
                intensio::serve::escape_script(rest.trim())
            )));
        }
        if let Some(rest) = line.strip_prefix(".profile ") {
            return Ok(Some(format!("PROFILE {}", rest.trim())));
        }
        if line == ".help" {
            return Err(
                "remote commands: SELECT ..., QUEL statements, \\explain SELECT ..., \
                 .profile <query>, .stats, .check [query], \
                 .fault [list | set name=spec[;...] | clear], .quit"
                    .to_string(),
            );
        }
        if let Some(sql) = line.strip_prefix("\\explain ") {
            return Ok(Some(format!("EXPLAIN {}", sql.trim())));
        }
        if lower.starts_with("select") {
            return Ok(Some(format!("SQL {line}")));
        }
        if ["range", "retrieve", "delete", "append", "replace"]
            .iter()
            .any(|k| lower.starts_with(k))
        {
            return Ok(Some(format!(
                "QUEL {}",
                intensio::serve::escape_script(line)
            )));
        }
        Err(format!("unrecognized input for remote mode: {line}"))
    }

    fn render(json_line: &str) -> String {
        use intensio::serve::json::{self, Json};
        let v = match json::parse(json_line) {
            Ok(v) => v,
            Err(e) => return format!("error: undecodable response ({e}): {json_line}"),
        };
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            if v.get("kind").and_then(Json::as_str) == Some("busy") {
                return "busy: server shed the request (queue full); retry".to_string();
            }
            let msg = v.get("error").and_then(Json::as_str).unwrap_or("unknown");
            return format!("error: {msg}");
        }
        let strs = |key: &str| -> Vec<String> {
            v.get(key)
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .filter_map(|c| c.as_str().map(str::to_string))
                .collect()
        };
        match v.get("kind").and_then(Json::as_str) {
            Some("stats") => {
                let n = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
                format!(
                    "epoch {} (data v{}, rules {}) — {} queries, {} writes, \
                     cache {}/{} hit/miss ({} live), {} inductions, {} errors",
                    n("epoch"),
                    n("data_version"),
                    if v.get("rules_fresh").and_then(Json::as_bool) == Some(true) {
                        "fresh"
                    } else {
                        "stale"
                    },
                    n("queries"),
                    n("writes"),
                    n("cache_hits"),
                    n("cache_misses"),
                    n("cache_len"),
                    n("inductions"),
                    n("errors"),
                ) + &format!(
                    "\nresilience: {} shed, {} worker restarts, {} induction retries, \
                     {} rule sets rejected, {} rules pruned, {} degraded answers",
                    n("requests_shed"),
                    n("worker_restarts"),
                    n("induction_retries"),
                    n("rulesets_rejected"),
                    n("rules_pruned"),
                    n("degraded_answers"),
                ) + &match v.get("repl") {
                    Some(r) if r.get("primary").is_some() => {
                        let rn = |key: &str| r.get(key).and_then(Json::as_u64).unwrap_or(0);
                        format!(
                            "\nreplication: {} of {} ({}), primary epoch {}, lag {}, \
                             {} records applied, {} reconnects",
                            v.get("role").and_then(Json::as_str).unwrap_or("follower"),
                            r.get("primary").and_then(Json::as_str).unwrap_or("?"),
                            if r.get("connected").and_then(Json::as_bool) == Some(true) {
                                "connected"
                            } else {
                                "disconnected"
                            },
                            rn("primary_epoch"),
                            rn("lag_epochs"),
                            rn("records_applied"),
                            rn("reconnects"),
                        )
                    }
                    _ => String::new(),
                } + &match v.get("durability") {
                    Some(d) if d.get("fsync").is_some() => {
                        let dn = |key: &str| d.get(key).and_then(Json::as_u64).unwrap_or(0);
                        format!(
                            "\ndurability: fsync {}, {} appends ({} bytes, {} fsyncs), \
                             {} checkpoints; recovered epoch {} ({} replayed, \
                             {} discarded, {} ms)",
                            d.get("fsync").and_then(Json::as_str).unwrap_or("?"),
                            dn("wal_appends"),
                            dn("wal_append_bytes"),
                            dn("wal_fsyncs"),
                            dn("wal_checkpoints"),
                            dn("recovered_epoch"),
                            dn("replayed_records"),
                            dn("discarded_records"),
                            dn("recovery_ms"),
                        )
                    }
                    _ => String::new(),
                } + &match v.get("metrics").and_then(|m| m.get("histograms")) {
                    Some(Json::Obj(stages)) if !stages.is_empty() => {
                        // Every pipeline stage, including repl_apply and
                        // wal_append on durable/replicated nodes.
                        let mut out = String::from("\nlatency us (p50/p95/p99):");
                        for (stage, h) in stages {
                            let q = |key: &str| h.get(key).and_then(Json::as_u64).unwrap_or(0);
                            out.push_str(&format!(
                                "\n  {stage}: {}/{}/{} over {} samples",
                                q("p50_us"),
                                q("p95_us"),
                                q("p99_us"),
                                q("count"),
                            ));
                        }
                        out
                    }
                    _ => String::new(),
                } + &match v.get("cluster").and_then(Json::as_array) {
                    Some(peers) if !peers.is_empty() => {
                        let mut out = String::from("\ncluster:");
                        for p in peers {
                            let s = |key: &str| p.get(key).and_then(Json::as_str).unwrap_or("?");
                            let pn = |key: &str| p.get(key).and_then(Json::as_u64).unwrap_or(0);
                            if p.get("ok").and_then(Json::as_bool) == Some(true) {
                                out.push_str(&format!(
                                    "\n  {} {} epoch {} (lag {}), {} applied ({}/s), \
                                     {} reconnects",
                                    s("addr"),
                                    s("role"),
                                    pn("epoch"),
                                    pn("lag_epochs"),
                                    pn("records_applied"),
                                    pn("apply_rate"),
                                    pn("reconnects"),
                                ));
                            } else {
                                out.push_str(&format!("\n  {} DOWN", s("addr")));
                            }
                        }
                        out
                    }
                    _ => String::new(),
                }
            }
            Some("profile") => {
                fn walk(out: &mut String, node: &Json, indent: usize) {
                    let name = node.get("name").and_then(Json::as_str).unwrap_or("?");
                    let us = node.get("us").and_then(Json::as_u64).unwrap_or(0);
                    out.push_str(&format!("{:indent$}{name}  {us} us", ""));
                    if let Some(Json::Obj(fields)) = node.get("fields") {
                        for (k, fv) in fields {
                            out.push_str(&format!("  {k}={}", fv.as_str().unwrap_or("?")));
                        }
                    }
                    out.push('\n');
                    for child in node.get("children").and_then(Json::as_array).unwrap_or(&[]) {
                        walk(out, child, indent + 2);
                    }
                }
                let flag = |key: &str| v.get(key).and_then(Json::as_bool) == Some(true);
                let mut out = format!(
                    "PROFILE: {} row(s) in {} us [epoch {}, {}, rules {}{}]\n",
                    v.get("rows").and_then(Json::as_u64).unwrap_or(0),
                    v.get("total_us").and_then(Json::as_u64).unwrap_or(0),
                    v.get("epoch").and_then(Json::as_u64).unwrap_or(0),
                    if flag("cached") {
                        "cache hit"
                    } else {
                        "cache miss"
                    },
                    if flag("rules_fresh") {
                        "fresh"
                    } else {
                        "stale"
                    },
                    if flag("degraded") { ", DEGRADED" } else { "" },
                );
                for node in v.get("tree").and_then(Json::as_array).unwrap_or(&[]) {
                    walk(&mut out, node, 0);
                }
                out.pop();
                out
            }
            Some("check") => {
                let n = |key: &str| v.get(key).and_then(Json::as_u64).unwrap_or(0);
                let mut out = String::new();
                let diags = v.get("diagnostics").and_then(Json::as_array).unwrap_or(&[]);
                for d in diags {
                    let s = |key: &str| d.get(key).and_then(Json::as_str).unwrap_or("?");
                    out.push_str(&format!(
                        "{} {} [{}]: {}\n",
                        s("code"),
                        s("severity"),
                        s("origin"),
                        s("message"),
                    ));
                    for note in d
                        .get("notes")
                        .and_then(Json::as_array)
                        .unwrap_or(&[])
                        .iter()
                        .filter_map(Json::as_str)
                    {
                        out.push_str(&format!("  note: {note}\n"));
                    }
                }
                out.push_str(&format!(
                    "check: {} error(s), {} warning(s), {} info [epoch {}{}]",
                    n("errors"),
                    n("warnings"),
                    n("infos"),
                    n("epoch"),
                    if v.get("rejected").and_then(Json::as_bool) == Some(true) {
                        ", RULE SET REJECTED"
                    } else {
                        ""
                    },
                ));
                out
            }
            Some("fault") => {
                let points = v.get("failpoints").and_then(Json::as_array).unwrap_or(&[]);
                if points.is_empty() {
                    return "no failpoints armed".to_string();
                }
                let mut out = String::from("armed failpoints:\n");
                for p in points {
                    let s = |key: &str| p.get(key).and_then(Json::as_str).unwrap_or("?");
                    let n = |key: &str| p.get(key).and_then(Json::as_u64).unwrap_or(0);
                    out.push_str(&format!(
                        "  {} = {} ({} hits, {} triggered)\n",
                        s("name"),
                        s("spec"),
                        n("hits"),
                        n("triggered"),
                    ));
                }
                out.pop();
                out
            }
            Some("explain") => {
                let mut out = String::new();
                let prov = v.get("provenance").and_then(Json::as_array).unwrap_or(&[]);
                if prov.is_empty() {
                    out.push_str("no induced rules fired for this query\n");
                } else {
                    out.push_str("Provenance (rules behind the intensional answer):\n");
                    for u in prov {
                        let n = |key: &str| u.get(key).and_then(Json::as_u64).unwrap_or(0);
                        let s = |key: &str| u.get(key).and_then(Json::as_str).unwrap_or("?");
                        out.push_str(&format!(
                            "  R{} ({}, support {}): {}\n",
                            n("rule_id"),
                            s("direction"),
                            n("support"),
                            s("conclusion"),
                        ));
                    }
                }
                if let Some(h) = v.get("headline").and_then(Json::as_str) {
                    out.push_str(&format!("In short: {h}\n"));
                }
                let flag = |key: &str| v.get(key).and_then(Json::as_bool) == Some(true);
                out.push_str(&format!(
                    "[epoch {}, {}, rules {}, soundness: {}{}]",
                    v.get("epoch").and_then(Json::as_u64).unwrap_or(0),
                    if flag("cached") {
                        "cache hit"
                    } else {
                        "cache miss"
                    },
                    if flag("rules_fresh") {
                        "fresh"
                    } else {
                        "stale"
                    },
                    v.get("soundness").and_then(Json::as_str).unwrap_or("none"),
                    if flag("degraded") { ", DEGRADED" } else { "" },
                ));
                out
            }
            _ => {
                let mut out = String::new();
                let columns = strs("columns");
                let rows = v.get("rows").and_then(Json::as_array).unwrap_or(&[]);
                if !columns.is_empty() {
                    out.push_str(&format!(
                        "Extensional answer ({} tuples): {}\n",
                        rows.len(),
                        columns.join(" | ")
                    ));
                    for row in rows {
                        let cells: Vec<&str> = row
                            .as_array()
                            .unwrap_or(&[])
                            .iter()
                            .filter_map(Json::as_str)
                            .collect();
                        out.push_str(&format!("  {}\n", cells.join(" | ")));
                    }
                }
                let intensional = strs("intensional");
                if !intensional.is_empty() {
                    out.push_str("Intensional answer:\n");
                    for line in &intensional {
                        out.push_str(&format!("  {line}\n"));
                    }
                }
                if let Some(h) = v.get("headline").and_then(Json::as_str) {
                    out.push_str(&format!("In short: {h}\n"));
                }
                if let Some(s) = v.get("summary").and_then(Json::as_str) {
                    out.push_str(&format!("Aggregate response:\n{s}\n"));
                }
                if let Some(n) = v.get("affected").and_then(Json::as_u64) {
                    out.push_str(&format!("{n} tuples affected\n"));
                }
                let flag = |key: &str| v.get(key).and_then(Json::as_bool) == Some(true);
                out.push_str(&format!(
                    "[epoch {}, {}, rules {}, soundness: {}{}]",
                    v.get("epoch").and_then(Json::as_u64).unwrap_or(0),
                    if flag("cached") {
                        "cache hit"
                    } else {
                        "cache miss"
                    },
                    if flag("rules_fresh") {
                        "fresh"
                    } else {
                        "stale"
                    },
                    v.get("soundness").and_then(Json::as_str).unwrap_or("none"),
                    if flag("degraded") { ", DEGRADED" } else { "" },
                ));
                out
            }
        }
    }

    /// Returns `false` when the session should end.
    fn dispatch(&mut self, line: &str) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return true;
        }
        match Self::to_request(line) {
            Ok(None) => false,
            Ok(Some(request)) => {
                match self.client.roundtrip(&request) {
                    Ok(reply) => {
                        let out = match Self::failover_target(&reply) {
                            Some(target) => match self.retry_at(&target, &request) {
                                Ok(rendered) => rendered,
                                Err(e) => format!(
                                    "{}\n(redirect to {target} failed: {e})",
                                    Self::render(&reply)
                                ),
                            },
                            None => Self::render(&reply),
                        };
                        println!("{out}");
                    }
                    Err(e) => {
                        println!("error: connection lost: {e}");
                        return false;
                    }
                }
                true
            }
            Err(msg) => {
                println!("{msg}");
                true
            }
        }
    }
}

fn remote_main(addr: &str) {
    let mut shell = match RemoteShell::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "intensio shell — connected to {addr} ({}); SELECT/QUEL/\\explain/.stats/.quit",
        shell.role
    );
    let stdin = io::stdin();
    let interactive = atty_stdin();
    loop {
        if interactive {
            print!("intensio@{} [{}]> ", shell.addr, shell.role);
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !shell.dispatch(&line) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Logging level: INTENSIO_LOG sets the default, flags override.
    intensio::obs::init_from_env();
    if args.iter().any(|a| a == "--quiet") {
        intensio::obs::set_level(intensio::obs::Level::Silent);
    } else if args.iter().any(|a| a == "--verbose") {
        intensio::obs::set_level(intensio::obs::Level::Verbose);
    }
    if let Some(i) = args.iter().position(|a| a == "--connect") {
        match args.get(i + 1) {
            Some(addr) => return remote_main(addr),
            None => {
                eprintln!("usage: shell [--connect HOST:PORT] [--quiet] [--verbose]");
                std::process::exit(2);
            }
        }
    }
    println!("intensio shell — ship test bed loaded; .help for commands");
    let mut shell = Shell::new();
    let stdin = io::stdin();
    let interactive = atty_stdin();
    loop {
        if interactive {
            print!("intensio> ");
            let _ = io::stdout().flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !shell.dispatch(&line) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
}

/// Crude interactivity check without a dependency: honoring an env
/// override, default to non-interactive (no prompt noise when piped).
fn atty_stdin() -> bool {
    std::env::var("INTENSIO_INTERACTIVE").is_ok()
}
