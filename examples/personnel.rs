//! Intensional answering on a different domain: a personnel database.
//!
//! §5.2.2 illustrates rule clauses with `Employee.Age` and
//! `Employee.Position`; this example builds that database, declares a
//! KER hierarchy over job grades, induces rules, and asks salary-band
//! questions that get intensional answers ("everyone in the answer is
//! a SENIOR engineer") — demonstrating that nothing in the system is
//! ship-specific.
//!
//! ```sh
//! cargo run --example personnel
//! ```

use intensio::prelude::*;
use intensio_storage::tuple;

fn build_db() -> std::result::Result<Database, StorageError> {
    let schema = Schema::new(vec![
        Attribute::key("EmpId", Domain::char_n(5)),
        Attribute::new("Name", Domain::char_n(20)),
        Attribute::new("Position", Domain::char_n(10)),
        Attribute::new("Grade", Domain::char_n(8)),
        Attribute::new("Age", Domain::int_range("AGE", 18, 65)),
        Attribute::new("Salary", Domain::basic(ValueType::Int)),
    ])?;
    let mut emp = Relation::new("EMPLOYEE", schema);
    // Grades are salary-banded: JUNIOR < 60k <= MID < 90k <= SENIOR.
    let rows: &[(&str, &str, &str, &str, i64, i64)] = &[
        ("E0001", "Ada", "ENGINEER", "SENIOR", 44, 120_000),
        ("E0002", "Grace", "ENGINEER", "SENIOR", 51, 110_000),
        ("E0003", "Edsger", "ENGINEER", "SENIOR", 47, 95_000),
        ("E0004", "Alan", "ENGINEER", "MID", 33, 82_000),
        ("E0005", "Barbara", "ENGINEER", "MID", 36, 76_000),
        ("E0006", "Tony", "ENGINEER", "MID", 31, 64_000),
        ("E0007", "Donald", "ENGINEER", "JUNIOR", 24, 55_000),
        ("E0008", "John", "ENGINEER", "JUNIOR", 23, 48_000),
        ("E0009", "Leslie", "ANALYST", "JUNIOR", 26, 42_000),
        ("E0010", "Niklaus", "ANALYST", "MID", 39, 71_000),
        ("E0011", "Ole", "ANALYST", "SENIOR", 55, 98_000),
        ("E0012", "Kristen", "MANAGER", "SENIOR", 49, 130_000),
    ];
    for (id, name, pos, grade, age, salary) in rows {
        emp.insert(tuple![*id, *name, *pos, *grade, *age, *salary])?;
    }
    let mut db = Database::new();
    db.create(emp)?;
    Ok(db)
}

const PERSONNEL_KER: &str = r#"
object type EMPLOYEE
  has key: EmpId    domain: CHAR[5]
  has:     Name     domain: CHAR[20]
  has:     Position domain: CHAR[10]
  has:     Grade    domain: CHAR[8]
  has:     Age      domain: INTEGER
  has:     Salary   domain: INTEGER

EMPLOYEE contains JUNIOR, MID, SENIOR

JUNIOR isa EMPLOYEE with Grade = "JUNIOR"
MID    isa EMPLOYEE with Grade = "MID"
SENIOR isa EMPLOYEE with Grade = "SENIOR"
"#;

fn main() -> std::result::Result<(), IqpError> {
    let db = build_db()?;
    let model = KerModel::parse(PERSONNEL_KER).expect("schema parses");
    let mut iqp = IntensionalQueryProcessor::new(db, model)
        .with_induction_config(InductionConfig::with_min_support(2));
    let stats = iqp.learn()?;
    println!(
        "Induced {} rules from the personnel database:\n{}",
        stats.rules_kept,
        iqp.dictionary().rules()
    );

    // Who earns six figures? Intensionally: only SENIOR staff do.
    let a =
        iqp.query("SELECT Name, Grade, Salary FROM EMPLOYEE WHERE Salary > 100000 ORDER BY Name")?;
    println!("{}", a.render());
    assert!(a.intensional.subtypes().contains(&"SENIOR"));

    // Describe the SENIOR grade without enumerating it.
    let b = iqp.query_intensional("SELECT Name FROM EMPLOYEE WHERE Grade = 'SENIOR'")?;
    println!("Describe SENIOR:\n{}", b.render());

    Ok(())
}
