//! Scaling demo: intensional answering over a synthetic fleet two
//! orders of magnitude larger than the paper's 24-ship test bed, with a
//! look at how the pruning threshold `N_c` trades rule-set size against
//! answer completeness (§5.2.1 step 4).
//!
//! ```sh
//! cargo run --release --example fleet_analyst
//! ```

use intensio::prelude::*;
use intensio::shipdb::{generate, FleetConfig};
use std::time::Instant;

fn main() -> std::result::Result<(), IqpError> {
    let config = FleetConfig {
        seed: 0x1991,
        n_types: 4,
        classes_per_type: 12,
        ships_per_class: 40,
        sonars_per_family: 6,
        id_noise: 0.05,
        overlapping_bands: false,
    };
    let fleet = generate(config)?;
    println!(
        "Synthetic fleet: {} ships, {} classes, {} types",
        config.total_ships(),
        config.n_types * config.classes_per_type,
        config.n_types
    );

    let model = fleet.ker_model();
    for nc in [1usize, 2, 5, 20, 50] {
        let mut iqp = IntensionalQueryProcessor::new(fleet.db.clone(), model.clone())
            .with_induction_config(InductionConfig::with_min_support(nc));
        let t0 = Instant::now();
        let stats = iqp.learn()?;
        let learn_ms = t0.elapsed().as_secs_f64() * 1e3;

        // A band query inside type T02's displacement range.
        let (lo, hi) = fleet.type_band["T02"];
        let sql = format!(
            "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
             WHERE SUBMARINE.CLASS = CLASS.CLASS \
             AND CLASS.DISPLACEMENT > {lo} AND CLASS.DISPLACEMENT < {hi}"
        );
        let t1 = Instant::now();
        let a = iqp.query(&sql)?;
        let query_ms = t1.elapsed().as_secs_f64() * 1e3;

        println!(
            "N_c = {nc:>3}: {:>5} rules kept (of {:>5} constructed), learn {:>8.2} ms, \
             query {:>7.2} ms, {} certain / {} partial conclusions",
            stats.rules_kept,
            stats.rules_constructed,
            learn_ms,
            query_ms,
            a.intensional.certain.len(),
            a.intensional.partial.len(),
        );
        if nc == 1 {
            println!(
                "  sample: {}",
                a.intensional.render().lines().next().unwrap_or("")
            );
        }
    }
    Ok(())
}
