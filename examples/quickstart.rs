//! Quickstart: assemble the intensional query processing system over the
//! paper's ship test bed, learn rules, and run the paper's Example 1.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use intensio::prelude::*;

fn main() -> std::result::Result<(), IqpError> {
    // 1. The test bed: the Appendix C database and Appendix B KER schema.
    let db = intensio::shipdb::ship_database()?;
    let model = intensio::shipdb::ship_model().expect("schema parses");

    // 2. Assemble the system (Figure 6) and let the inductive learning
    //    subsystem analyze the database contents.
    let mut iqp = IntensionalQueryProcessor::new(db, model);
    let stats = iqp.learn()?;
    println!(
        "ILS examined {} attribute pairs and kept {} rules:\n",
        stats.pairs_examined, stats.rules_kept
    );
    println!("{}", iqp.dictionary().rules());

    // 3. Example 1: submarines displacing more than 8000 tons.
    let answer = iqp.query(
        "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
         FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS \
         AND CLASS.DISPLACEMENT > 8000",
    )?;
    println!("{}", answer.render());

    // The intensional answer is the paper's A_I: every answer is an SSBN.
    assert!(answer.intensional.subtypes().contains(&"SSBN"));
    Ok(())
}
