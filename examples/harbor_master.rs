//! The §3.1 scenario: ships visiting ports, with the inter-object
//! constraint "the draft of the ship must be less than the depth of the
//! port" *discovered* from the VISIT relationship rather than declared.
//!
//! ```sh
//! cargo run --example harbor_master
//! ```

use intensio::induction::{Ils, InductionConfig};
use intensio::shipdb::visit::{visit_database, visit_model};

fn main() {
    let db = visit_database().expect("scenario builds");
    let model = visit_model().expect("schema parses");

    println!("SHIP:\n{}", db.get("SHIP").expect("SHIP").to_table());
    println!("PORT:\n{}", db.get("PORT").expect("PORT").to_table());
    println!("VISIT:\n{}", db.get("VISIT").expect("VISIT").to_table());

    let ils = Ils::new(&model, InductionConfig::with_min_support(3));
    let constraints = ils
        .discover_relationship_constraints(&db)
        .expect("discovery succeeds");

    println!("\nDiscovered inter-object knowledge (§3.1):");
    for c in &constraints {
        println!("  {c}");
    }
    assert!(
        constraints.iter().any(|c| c.left.matches("SHIP", "Draft")
            && c.right.matches("PORT", "Depth")
            && c.op == intensio::prelude::CmpOp::Lt),
        "the paper's draft < depth constraint must be among them"
    );
    println!(
        "\nThe paper's motivating constraint — \"the draft of the ship must be\n\
         less than the depth of the port\" — was induced from the data."
    );
}
