//! The paper's three worked examples (§6), run end to end, with the
//! inference trace printed — the scenario the paper's introduction
//! motivates: a fleet analyst asking about submarines and getting
//! summarized answers instead of raw tuples.
//!
//! ```sh
//! cargo run --example ship_patrol
//! ```

use intensio::prelude::*;

fn run(
    iqp: &IntensionalQueryProcessor,
    title: &str,
    sql: &str,
) -> std::result::Result<(), IqpError> {
    println!("==============================================");
    println!("{title}");
    println!("----------------------------------------------");
    println!("{sql}\n");
    let answer = iqp.query(sql)?;
    println!("{}", answer.render());
    println!("Inference trace:");
    for step in &answer.intensional.steps {
        println!("  - {step}");
    }
    println!();
    Ok(())
}

fn main() -> std::result::Result<(), IqpError> {
    let mut iqp = IntensionalQueryProcessor::new(
        intensio::shipdb::ship_database()?,
        intensio::shipdb::ship_model().expect("schema parses"),
    );
    iqp.learn()?;

    run(
        &iqp,
        "Example 1 — forward inference (answer contains extension)",
        "SELECT SUBMARINE.ID, SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
         FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
    )?;

    run(
        &iqp,
        "Example 2 — backward inference (partial description, incompleteness noted)",
        "SELECT SUBMARINE.NAME, SUBMARINE.CLASS FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.TYPE = \"SSBN\"",
    )?;

    run(
        &iqp,
        "Example 3 — combined inference across SUBMARINE and SONAR via INSTALL",
        "SELECT SUBMARINE.NAME, SUBMARINE.CLASS, CLASS.TYPE \
         FROM SUBMARINE, CLASS, INSTALL \
         WHERE SUBMARINE.CLASS = CLASS.CLASS \
         AND SUBMARINE.ID = INSTALL.SHIP \
         AND INSTALL.SONAR = \"BQS-04\"",
    )?;

    // Bonus: the learned rules also optimize queries ([CHU90]-style
    // semantic query optimization) — forward conclusions become extra
    // restrictions, and impossible queries are detected without touching
    // the data.
    println!("==============================================");
    println!("Semantic query optimization with the same rules");
    println!("----------------------------------------------");
    match iqp.optimize(
        "SELECT SUBMARINE.ID FROM SUBMARINE, CLASS \
         WHERE SUBMARINE.CLASS = CLASS.CLASS AND CLASS.DISPLACEMENT > 8000",
    )? {
        Optimized::Rewritten { added, .. } => {
            println!("injected restrictions: {added:?}");
        }
        other => println!("{other:?}"),
    }
    match iqp.optimize("SELECT Class FROM CLASS WHERE Displacement > 50000")? {
        Optimized::ProvablyEmpty { reason } => {
            println!("provably empty without scanning: {reason}");
        }
        other => println!("{other:?}"),
    }
    println!();

    // Show the dictionary the analyst is working against.
    println!("{}", iqp.dictionary());
    Ok(())
}
